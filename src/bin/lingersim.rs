//! `lingersim` — command-line front door to the Linger-Longer simulators.
//! See `lingersim` with no arguments for usage.

use linger_repro::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args).and_then(|c| cli::run(&c)) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("lingersim: {e}");
            std::process::exit(2);
        }
    }
}
