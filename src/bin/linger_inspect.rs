//! `linger-inspect`: record, summarize, diff, and export telemetry
//! journals from the cluster simulator.
//!
//! Subcommands:
//!
//! * `record --out FILE [--seed N] [--nodes N] [--policy LL|LF|IE|PM]
//!   [--jobs N] [--crash-rate X] [--mig-prob X] [--horizon SECS]` —
//!   run one small cluster cell with journaling on and spill the
//!   journal as JSON lines. The journal depends only on the flags (no
//!   wall clock, no machine state), so two runs with the same flags
//!   produce byte-identical files.
//! * `summary FILE` — decision distributions, per-kind event counts,
//!   queue-depth gauge, and the mean per-job completion breakdown.
//! * `diff A B` — compare two journals event by event and report the
//!   first diverging decision (and the first diverging event of any
//!   kind), or confirm the journals are identical.
//! * `chrome FILE --out FILE` — export a Chrome trace-event file
//!   (open in Perfetto or `chrome://tracing` for a per-node timeline).

use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim, FaultConfig};
use linger_sim_core::{SimDuration, SimTime};
use linger_telemetry::{
    chrome_trace, diff, read_events_jsonl, render_diff, render_summary, summarize, Recorder,
};

fn usage() -> ! {
    eprintln!(
        "usage: linger-inspect <record|summary|diff|chrome> …\n\
         \n\
         linger-inspect record --out FILE [--seed N] [--nodes N]\n\
         \x20                  [--policy LL|LF|IE|PM] [--jobs N]\n\
         \x20                  [--crash-rate X] [--mig-prob X] [--horizon SECS]\n\
         linger-inspect summary FILE\n\
         linger-inspect diff A B\n\
         linger-inspect chrome FILE --out FILE"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("linger-inspect: {msg}");
    std::process::exit(2);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| fail(&format!("{name} needs a value")))
            .clone()
    })
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| fail(&format!("bad {what}: {s:?}")))
}

fn load(path: &str) -> Vec<linger_telemetry::Event> {
    read_events_jsonl(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

fn record(args: &[String]) {
    let out = flag_value(args, "--out").unwrap_or_else(|| fail("record needs --out FILE"));
    let seed: u64 = flag_value(args, "--seed").map_or(1998, |s| parse(&s, "--seed"));
    let nodes: usize = flag_value(args, "--nodes").map_or(12, |s| parse(&s, "--nodes"));
    let jobs: u32 = flag_value(args, "--jobs").map_or(24, |s| parse(&s, "--jobs"));
    let policy: Policy =
        flag_value(args, "--policy").map_or(Policy::LingerLonger, |s| parse(&s, "--policy"));
    let crash_rate: f64 = flag_value(args, "--crash-rate").map_or(0.0, |s| parse(&s, "--crash-rate"));
    let mig_prob: f64 = flag_value(args, "--mig-prob").map_or(0.0, |s| parse(&s, "--mig-prob"));
    let horizon: u64 = flag_value(args, "--horizon").map_or(4 * 3600, |s| parse(&s, "--horizon"));

    let family = JobFamily::uniform(jobs, SimDuration::from_secs(300), 8 * 1024);
    let mut cfg = ClusterConfig::paper(policy, family);
    cfg.nodes = nodes;
    cfg.seed = seed;
    cfg.max_time = SimTime::from_secs(horizon);
    if crash_rate > 0.0 || mig_prob > 0.0 {
        cfg.faults = FaultConfig {
            crash_rate_per_hour: crash_rate,
            mean_reboot_secs: 300.0,
            migration_failure_prob: mig_prob,
        };
    }

    let recorder = Recorder::with_capacity(linger_telemetry::DEFAULT_CAPACITY);
    let mut sim = ClusterSim::new(cfg).with_recorder(recorder.clone());
    let finished = sim.run();
    let journal = recorder.journal().expect("recorder is enabled");
    journal
        .write_jsonl(&out)
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!(
        "recorded {} events ({} dropped) to {out}; family finished: {finished}",
        journal.counts().events,
        journal.counts().dropped
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];
    match cmd.as_str() {
        "record" => record(rest),
        "summary" => {
            let path = rest.first().unwrap_or_else(|| fail("summary needs a journal FILE"));
            let events = load(path);
            print!("{}", render_summary(&summarize(&events)));
        }
        "diff" => {
            let (Some(a), Some(b)) = (rest.first(), rest.get(1)) else {
                fail("diff needs two journal files");
            };
            let report = diff(&load(a), &load(b));
            let identical = report.identical();
            print!("{}", render_diff(&report, a, b));
            std::process::exit(if identical { 0 } else { 1 });
        }
        "chrome" => {
            let path = rest.first().unwrap_or_else(|| fail("chrome needs a journal FILE"));
            let out =
                flag_value(rest, "--out").unwrap_or_else(|| fail("chrome needs --out FILE"));
            let events = load(path);
            let json = serde_json::to_string_pretty(&chrome_trace(&events))
                .unwrap_or_else(|e| fail(&format!("cannot serialize trace: {e}")));
            linger_sim_core::write_atomic(&out, json.as_bytes())
                .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
            println!("wrote {} trace events to {out}", events.len());
        }
        _ => usage(),
    }
}
