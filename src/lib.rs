//! # linger-repro
//!
//! Workspace root of the reproduction of *Linger Longer: Fine-Grain
//! Cycle Stealing for Networks of Workstations* (Ryu & Hollingsworth,
//! SC 1998). This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the library surface simply
//! re-exports the member crates.
//!
//! See `README.md` for the guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-versus-measured record.

pub mod cli;

pub use linger;
pub use linger_cluster as cluster;
pub use linger_node as node;
pub use linger_parallel as parallel;
pub use linger_sim_core as sim_core;
pub use linger_stats as stats;
pub use linger_workload as workload;
