//! The `lingersim` command-line tool: quick access to the simulators
//! without writing Rust.
//!
//! ```console
//! $ lingersim linger-time --busy 0.5 --dest 0.0 --size-kb 8192
//! $ lingersim node --util 0.3 --cs-us 100 --secs 300
//! $ lingersim cluster --nodes 64 --jobs 128 --job-secs 600 --policy LL
//! $ lingersim parallel --procs 8 --grain-ms 100 --busy 2 --util 0.2
//! $ lingersim traces --machines 4 --hours 2 --out traces.json
//! ```
//!
//! Argument handling is hand-rolled (`--key value` pairs after a
//! subcommand) so the workspace stays within its dependency budget.

use linger::cost::linger_duration;
use linger::{JobFamily, MigrationCostModel, Policy};
use linger_node::{simulate_single_node, SingleNodeConfig};
use linger_parallel::{run_bsp, BspConfig};
use linger_sim_core::{RngFactory, SimDuration};
use linger_workload::{analysis::CoarseAggregates, CoarseTraceConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed command line: subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// The subcommand name.
    pub command: String,
    /// The options, keyed without the `--` prefix.
    pub options: BTreeMap<String, String>,
}

/// Errors from parsing or running a CLI invocation.
#[derive(Debug, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand was given.
    MissingCommand,
    /// The subcommand is not recognized.
    UnknownCommand(String),
    /// An option was malformed or missing its value.
    BadOption(String),
    /// An option value failed to parse.
    BadValue(String, String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "no subcommand given\n\n{USAGE}"),
            CliError::UnknownCommand(c) => write!(f, "unknown subcommand '{c}'\n\n{USAGE}"),
            CliError::BadOption(o) => write!(f, "malformed option '{o}' (expected --key value)"),
            CliError::BadValue(k, v) => write!(f, "could not parse --{k} value '{v}'"),
        }
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "usage: lingersim <command> [--key value]...

commands:
  linger-time  --busy <util> [--dest <util>] [--size-kb <kb>]
               how long should a foreign job linger before migrating?
  node         [--util <u>] [--cs-us <us>] [--secs <s>] [--seed <n>]
               single-workstation LDR / FCSR study
  cluster      [--nodes <n>] [--jobs <n>] [--job-secs <s>] [--seed <n>]
               [--policy <LL|LF|IE|PM|all>]
               sequential jobs on a shared cluster
  parallel     [--procs <n>] [--grain-ms <ms>] [--busy <count>]
               [--util <u>] [--phases <n>] [--seed <n>]
               BSP job slowdown with some hosts busy
  traces       [--machines <n>] [--hours <h>] [--seed <n>] [--out <file>]
               synthesize and characterize coarse traces

every command also accepts --threads <n>: worker threads for sweeps
that fan out internally (0 = one per core; results are identical either
way) — named --threads, not --jobs, because cluster's --jobs already
counts batch jobs";

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Cli, CliError> {
    let mut it = args.iter();
    let command = it.next().ok_or(CliError::MissingCommand)?.clone();
    let mut options = BTreeMap::new();
    while let Some(k) = it.next() {
        let key = k
            .strip_prefix("--")
            .ok_or_else(|| CliError::BadOption(k.clone()))?;
        let v = it.next().ok_or_else(|| CliError::BadOption(k.clone()))?;
        options.insert(key.to_string(), v.clone());
    }
    Ok(Cli { command, options })
}

fn opt<T: std::str::FromStr>(cli: &Cli, key: &str, default: T) -> Result<T, CliError> {
    match cli.options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::BadValue(key.to_string(), v.clone())),
    }
}

fn req<T: std::str::FromStr>(cli: &Cli, key: &str) -> Result<T, CliError> {
    let v = cli
        .options
        .get(key)
        .ok_or_else(|| CliError::BadOption(format!("--{key} (required)")))?;
    v.parse()
        .map_err(|_| CliError::BadValue(key.to_string(), v.clone()))
}

/// Execute a parsed invocation, returning the report text.
pub fn run(cli: &Cli) -> Result<String, CliError> {
    if let Some(v) = cli.options.get("threads") {
        let threads: usize = v
            .parse()
            .map_err(|_| CliError::BadValue("threads".into(), v.clone()))?;
        linger_sim_core::set_default_jobs(threads);
    }
    match cli.command.as_str() {
        "linger-time" => cmd_linger_time(cli),
        "node" => cmd_node(cli),
        "cluster" => cmd_cluster(cli),
        "parallel" => cmd_parallel(cli),
        "traces" => cmd_traces(cli),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn cmd_linger_time(cli: &Cli) -> Result<String, CliError> {
    let h: f64 = req(cli, "busy")?;
    let l: f64 = opt(cli, "dest", 0.0)?;
    let size_kb: u32 = opt(cli, "size-kb", 8 * 1024)?;
    let t_migr = MigrationCostModel::paper_default().cost(size_kb);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "migration of a {size_kb} KB process: {:.1} s",
        t_migr.as_secs_f64()
    );
    match linger_duration(h, l, t_migr) {
        Some(t) => {
            let _ = writeln!(
                out,
                "linger duration at h={h:.2}, l={l:.2}: {:.1} s \
                 (migrate once the busy episode outlives it)",
                t.as_secs_f64()
            );
        }
        None => {
            let _ = writeln!(
                out,
                "no beneficial migration exists (destination at {l:.2} is not \
                 better than staying at {h:.2}): linger forever"
            );
        }
    }
    Ok(out)
}

fn cmd_node(cli: &Cli) -> Result<String, CliError> {
    let util: f64 = opt(cli, "util", 0.3)?;
    let cs_us: u64 = opt(cli, "cs-us", 100)?;
    let secs: u64 = opt(cli, "secs", 300)?;
    let seed: u64 = opt(cli, "seed", 0)?;
    let r = simulate_single_node(&SingleNodeConfig {
        utilization: util,
        context_switch: SimDuration::from_micros(cs_us),
        duration: SimDuration::from_secs(secs),
        seed,
    });
    let mut out = String::new();
    let _ = writeln!(out, "workstation at {:.0}% local load, {cs_us} µs switches, {secs} s:", util * 100.0);
    let _ = writeln!(out, "  foreign job harvested {:.1} cpu-s ({:.1}% of idle cycles)", r.foreign_cpu.as_secs_f64(), r.fcsr * 100.0);
    let _ = writeln!(out, "  owner delay ratio {:.3}% over {} preemptions", r.ldr * 100.0, r.preemptions);
    Ok(out)
}

fn cmd_cluster(cli: &Cli) -> Result<String, CliError> {
    let nodes: usize = opt(cli, "nodes", 16)?;
    let jobs: u32 = opt(cli, "jobs", 32)?;
    let job_secs: u64 = opt(cli, "job-secs", 300)?;
    let seed: u64 = opt(cli, "seed", 0)?;
    let policy_s: String = opt(cli, "policy", "all".to_string())?;
    let family = JobFamily::uniform(jobs, SimDuration::from_secs(job_secs), 8 * 1024);
    let policies: Vec<Policy> = if policy_s.eq_ignore_ascii_case("all") {
        Policy::ALL.to_vec()
    } else {
        vec![policy_s
            .parse()
            .map_err(|_| CliError::BadValue("policy".into(), policy_s.clone()))?]
    };
    let mut out = String::new();
    let _ = writeln!(out, "{nodes}-node cluster, {jobs} jobs x {job_secs} cpu-s (seed {seed}):");
    for p in policies {
        let m = linger_cluster::evaluate_policy(p, family.clone(), nodes, seed);
        let _ = writeln!(
            out,
            "  {:<4} avg {:>6.0} s | family {:>6.0} s | tput {:>5.1} cpu-s/s | delay {:.2}%",
            m.policy.abbrev(),
            m.avg_completion_secs,
            m.family_time_secs,
            m.throughput,
            m.foreground_delay * 100.0
        );
    }
    Ok(out)
}

fn cmd_parallel(cli: &Cli) -> Result<String, CliError> {
    let procs: usize = opt(cli, "procs", 8)?;
    let grain_ms: u64 = opt(cli, "grain-ms", 100)?;
    let busy: usize = opt(cli, "busy", 1)?;
    let util: f64 = opt(cli, "util", 0.2)?;
    let phases: usize = opt(cli, "phases", 200)?;
    let seed: u64 = opt(cli, "seed", 0)?;
    let cfg = BspConfig {
        processes: procs,
        compute_per_phase: SimDuration::from_millis(grain_ms),
        phases,
        ..BspConfig::fig9()
    };
    let mut utils = vec![0.0; procs];
    for u in utils.iter_mut().take(busy.min(procs)) {
        *u = util;
    }
    let loaded = run_bsp(&cfg, &utils, seed, 1);
    let ideal = run_bsp(&cfg, &vec![0.0; procs], seed, 2);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{procs}-process BSP job, {grain_ms} ms phases x {phases}, {busy} host(s) at {:.0}%:",
        util * 100.0
    );
    let _ = writeln!(
        out,
        "  completion {:.2} s vs {:.2} s dedicated -> slowdown {:.2}x \
         (barrier wait {:.0}% of phase time)",
        loaded.completion.as_secs_f64(),
        ideal.completion.as_secs_f64(),
        loaded.completion.as_secs_f64() / ideal.completion.as_secs_f64(),
        loaded.barrier_wait_fraction * 100.0
    );
    Ok(out)
}

fn cmd_traces(cli: &Cli) -> Result<String, CliError> {
    let machines: usize = opt(cli, "machines", 4)?;
    let hours: u64 = opt(cli, "hours", 2)?;
    let seed: u64 = opt(cli, "seed", 0)?;
    let cfg = CoarseTraceConfig {
        duration: SimDuration::from_secs(hours * 3600),
        ..Default::default()
    };
    let traces = cfg.synthesize_library(&RngFactory::new(seed), machines);
    let agg = CoarseAggregates::analyze(&traces);
    let mut out = String::new();
    let _ = writeln!(out, "{machines} machines x {hours} h (seed {seed}):");
    let _ = writeln!(out, "  non-idle fraction: {:.1}%", agg.non_idle_fraction * 100.0);
    let _ = writeln!(
        out,
        "  non-idle time below 10% cpu: {:.1}%",
        agg.non_idle_low_cpu_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "  free memory: >= {:.1} MB at P90, >= {:.1} MB at P95",
        agg.mem_available_at_least(0.90) / 1024.0,
        agg.mem_available_at_least(0.95) / 1024.0
    );
    if let Some(path) = cli.options.get("out") {
        linger_workload::io::save_traces(path, &traces)
            .map_err(|e| CliError::BadValue("out".into(), format!("{path}: {e}")))?;
        let _ = writeln!(out, "  wrote {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_subcommand_and_options() {
        let cli = parse(&args("cluster --nodes 8 --policy LL")).unwrap();
        assert_eq!(cli.command, "cluster");
        assert_eq!(cli.options["nodes"], "8");
        assert_eq!(cli.options["policy"], "LL");
    }

    #[test]
    fn parse_errors() {
        assert_eq!(parse(&[]).unwrap_err(), CliError::MissingCommand);
        assert!(matches!(
            parse(&args("node util 0.3")).unwrap_err(),
            CliError::BadOption(_)
        ));
        assert!(matches!(
            parse(&args("node --util")).unwrap_err(),
            CliError::BadOption(_)
        ));
    }

    #[test]
    fn unknown_command_is_reported() {
        let cli = parse(&args("frobnicate")).unwrap();
        assert!(matches!(run(&cli).unwrap_err(), CliError::UnknownCommand(_)));
    }

    #[test]
    fn linger_time_command() {
        let cli = parse(&args("linger-time --busy 0.5")).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("linger duration"), "{out}");
        // Destination worse than source → linger forever.
        let cli = parse(&args("linger-time --busy 0.2 --dest 0.6")).unwrap();
        assert!(run(&cli).unwrap().contains("linger forever"));
    }

    #[test]
    fn node_command_runs() {
        let cli = parse(&args("node --util 0.4 --secs 30")).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("owner delay ratio"), "{out}");
    }

    #[test]
    fn parallel_command_runs() {
        let cli = parse(&args("parallel --procs 4 --phases 20 --busy 1")).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("slowdown"), "{out}");
    }

    #[test]
    fn cluster_command_single_policy() {
        let cli = parse(&args("cluster --nodes 6 --jobs 6 --job-secs 60 --policy IE")).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("IE"), "{out}");
        assert!(!out.contains("LL "), "{out}");
    }

    #[test]
    fn traces_command_runs() {
        let cli = parse(&args("traces --machines 2 --hours 1")).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("non-idle fraction"), "{out}");
    }

    #[test]
    fn threads_option_is_accepted_and_validated() {
        let cli = parse(&args("node --util 0.4 --secs 30 --threads 2")).unwrap();
        assert!(run(&cli).unwrap().contains("owner delay ratio"));
        let cli = parse(&args("node --threads nope")).unwrap();
        assert!(matches!(run(&cli).unwrap_err(), CliError::BadValue(k, _) if k == "threads"));
        // `cluster --jobs <n>` keeps its original meaning (batch-job
        // count) and must not be read as a worker-thread setting.
        let cli = parse(&args("cluster --nodes 4 --jobs 4 --job-secs 60 --policy IE")).unwrap();
        assert!(run(&cli).unwrap().contains("4 jobs"));
    }

    #[test]
    fn bad_values_are_reported_with_key() {
        let cli = parse(&args("node --util abc")).unwrap();
        match run(&cli).unwrap_err() {
            CliError::BadValue(k, v) => {
                assert_eq!(k, "util");
                assert_eq!(v, "abc");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
