//! End-to-end reproduction checks: the paper's headline claims, exercised
//! through the same drivers the figure binaries use (in fast mode so the
//! whole file runs in seconds).

use linger_bench as bench;

const SEED: u64 = 1998;

#[test]
fn fig2_fits_track_empirical_cdfs() {
    for bucket in bench::fig02(SEED, true) {
        assert!(
            bucket.ks_run < 0.1 && bucket.ks_idle < 0.1,
            "{}%: KS run {} idle {}",
            bucket.level_pct,
            bucket.ks_run,
            bucket.ks_idle
        );
        // CDFs are proper and the fitted curve tracks the empirical one
        // pointwise within the KS bound.
        for (x, emp, fit) in &bucket.run_points {
            assert!(*x > 0.0);
            assert!((0.0..=1.0).contains(emp) && (0.0..=1.0).contains(fit));
            assert!((emp - fit).abs() < 0.15, "{}%: gap at {x}", bucket.level_pct);
        }
    }
}

#[test]
fn fig3_run_bursts_grow_with_utilization() {
    let rows = bench::fig03(SEED, true);
    let populated: Vec<_> = rows.iter().filter(|r| r.windows > 40).collect();
    assert!(populated.len() >= 10, "too few populated buckets");
    // Measured run-burst means grow (allowing neighbour noise) across the
    // populated range — the Fig 3 top-left shape.
    let first = populated.first().unwrap();
    let last = populated.last().unwrap();
    assert!(last.run_mean > 3.0 * first.run_mean);
}

#[test]
fn fig4_memory_and_idleness_anchors() {
    let r = bench::fig04(SEED, true);
    assert!((r.non_idle_fraction - 0.46).abs() < 0.10, "{}", r.non_idle_fraction);
    assert!((r.non_idle_low_cpu_fraction - 0.76).abs() < 0.10);
    assert!(r.p90_free_kb >= 12_000.0, "P90 {}", r.p90_free_kb);
    // "there is no significant difference in the available memory between
    // idle and non-idle states": survival curves stay close.
    for (i, (kb, all)) in r.cdf_all.iter().enumerate() {
        let idle = r.cdf_idle[i].1;
        let non_idle = r.cdf_non_idle[i].1;
        assert!(
            (idle - non_idle).abs() < 0.25,
            "idle/non-idle memory curves diverge at {kb} KB: {idle} vs {non_idle}"
        );
        let _ = all;
    }
}

#[test]
fn fig5_headline_bands() {
    let grid = bench::fig05(SEED, true);
    let peak_100 = grid[..9].iter().map(|r| r.ldr).fold(0.0f64, f64::max);
    let peak_300 = grid[9..18].iter().map(|r| r.ldr).fold(0.0f64, f64::max);
    let peak_500 = grid[18..].iter().map(|r| r.ldr).fold(0.0f64, f64::max);
    // "about 1%", "remains under 5%", "the overhead is 8%".
    assert!(peak_100 < 0.02, "LDR@100us {peak_100}");
    assert!(peak_300 < 0.05, "LDR@300us {peak_300}");
    assert!((0.04..0.10).contains(&peak_500), "LDR@500us {peak_500}");
    assert!(grid.iter().all(|r| r.fcsr > 0.90), "FCSR fell below 90%");
}

#[test]
fn fig7_headlines_hold_at_reduced_scale() {
    let r = bench::fig07(SEED, true);
    let (ll, lf, ie, pm) = (&r.workload1[0], &r.workload1[1], &r.workload1[2], &r.workload1[3]);
    // Throughput: "can improve the throughput of background jobs … by 60%".
    assert!(
        lf.throughput > 1.4 * pm.throughput,
        "LF {} vs PM {}",
        lf.throughput,
        pm.throughput
    );
    // Completion: "47% faster with Linger-Longer" (we require ≥ 20%).
    assert!(ll.avg_completion_secs < 0.8 * ie.avg_completion_secs);
    // Foreground: "only a 0.5% slowdown of foreground jobs" (≤ 0.6%).
    assert!(ll.foreground_delay < 0.006, "delay {}", ll.foreground_delay);
    // Light load: all policies near-equal.
    let avgs: Vec<f64> = r.workload2.iter().map(|m| m.avg_completion_secs).collect();
    let lo = avgs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = avgs.iter().cloned().fold(0.0f64, f64::max);
    assert!((hi - lo) / lo < 0.10, "workload-2 spread {avgs:?}");
}

#[test]
fn fig8_queue_time_explains_the_gap() {
    let r = bench::fig07(SEED, true);
    let (ll, ie) = (&r.workload1[0], &r.workload1[2]);
    assert!(ie.avg_breakdown.queued > 1.5 * ll.avg_breakdown.queued);
    assert!(ll.avg_breakdown.lingering > 0.0);
    assert_eq!(ie.avg_breakdown.lingering, 0.0);
    assert_eq!(ie.avg_breakdown.paused, 0.0);
}

#[test]
fn fig9_parallel_slowdown_curve() {
    let pts = bench::fig09(SEED, true);
    // "slowdown of only 1.1 to 1.5 when the load is less than 40%".
    for p in &pts[1..4] {
        assert!(
            (1.0..2.0).contains(&p.slowdown),
            "{}%: {}",
            p.utilization_pct,
            p.slowdown
        );
    }
    // Large at 90% (paper ~9).
    assert!(pts[9].slowdown > 4.0);
}

#[test]
fn fig11_reconfiguration_tradeoff() {
    let pts = bench::fig11(SEED);
    let get = |s: &str, idle: usize| {
        pts.iter()
            .find(|p| p.strategy == s && p.idle == idle)
            .unwrap()
            .completion_secs
    };
    // All idle: the wider the job the faster.
    assert!(get("32 nodes", 32) < get("16 nodes", 32));
    assert!(get("16 nodes", 32) < get("8 nodes", 32));
    // LL-32 beats reconfiguration when few nodes are busy…
    assert!(get("32 nodes", 30) < get("reconfig", 30));
    // …and a crossover exists somewhere (reconfiguration eventually wins
    // as busy nodes accumulate — the paper puts it at ~6 busy).
    let crossover = (1..32usize).rev().any(|i| get("reconfig", i) < get("32 nodes", i));
    assert!(crossover, "no LL-32/reconfiguration crossover found");
    // LL-16 never loses to reconfiguration while ≥ 16 idle remain.
    for idle in 16..=31 {
        assert!(
            get("16 nodes", idle) <= get("reconfig", idle) * 1.05,
            "idle={idle}"
        );
    }
}

#[test]
fn fig12_fig13_application_results() {
    let f12 = bench::fig12(SEED);
    let pick = |app: &str, k: usize, u: f64| {
        f12.iter()
            .find(|p| p.app == app && p.non_idle == k && (p.local_util - u).abs() < 1e-9)
            .unwrap()
            .slowdown
    };
    // Sensitivity ordering at the stress corner.
    assert!(pick("sor", 8, 0.4) > pick("water", 8, 0.4));
    assert!(pick("water", 8, 0.4) > pick("fft", 8, 0.4));
    // "with 4 non-idle nodes and 20% local utilization causes only 1.5 to
    // 1.6 slowdown" — band widened to 1.3–1.9.
    for app in ["sor", "water", "fft"] {
        let s = pick(app, 4, 0.2);
        assert!((1.2..2.0).contains(&s), "{app}: {s}");
    }

    let f13 = bench::fig13(SEED);
    for app in ["sor", "water", "fft"] {
        for idle in [14usize, 12] {
            let ll16 = f13
                .iter()
                .find(|p| p.app == app && p.idle == idle && p.strategy == "16 node linger")
                .unwrap()
                .slowdown;
            let rc = f13
                .iter()
                .find(|p| p.app == app && p.idle == idle && p.strategy == "reconfiguration")
                .unwrap()
                .slowdown;
            assert!(ll16 < rc, "{app} idle={idle}: {ll16} vs {rc}");
        }
    }
}
