//! Cross-crate integration: the pieces assembled the way the simulators
//! assemble them, checked for conservation, determinism, and coherent
//! semantics across crate boundaries.

use linger::cost::{linger_duration, should_migrate};
use linger::{JobFamily, MigrationCostModel, Policy};
use linger_cluster::{ClusterConfig, ClusterSim, JobState};
use linger_node::{steal_rate, FineGrainCpu};
use linger_sim_core::{domains, RngFactory, SimDuration, SimTime};
use linger_workload::{BurstFitTable, BurstKind, BurstParamTable, CoarseTraceConfig, LocalWorkload};
use std::sync::Arc;

fn small_cfg(policy: Policy, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        policy,
        JobFamily::uniform(10, SimDuration::from_secs(150), 8 * 1024),
    );
    cfg.nodes = 10;
    cfg.trace.duration = SimDuration::from_secs(3600);
    cfg.seed = seed;
    cfg
}

#[test]
fn common_random_numbers_across_policies() {
    // Every policy must see the *same* workload realization for a given
    // master seed: node trace offsets and coarse samples must agree. We
    // verify indirectly: with migration made free and jobs placed on an
    // otherwise idle cluster, LL and IE should behave identically when no
    // non-idle transitions occur — and more directly, the trace library
    // reproduced from the same seed is bitwise identical.
    let f = RngFactory::new(5);
    let cfg = CoarseTraceConfig::default();
    let a = cfg.synthesize_library(&f, 4);
    let b = cfg.synthesize_library(&f, 4);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.samples(), y.samples());
    }
}

#[test]
fn cluster_conserves_cpu_under_every_policy() {
    for policy in Policy::ALL {
        let mut sim = ClusterSim::new(small_cfg(policy, 21));
        assert!(sim.run(), "{policy} hit the safety horizon");
        let demand = 10.0 * 150.0;
        let delivered = sim.foreign_cpu_delivered().as_secs_f64();
        assert!(
            (delivered - demand).abs() < 1e-6,
            "{policy}: delivered {delivered} vs demand {demand}"
        );
        assert!(sim.jobs().iter().all(|j| j.state == JobState::Done));
    }
}

#[test]
fn cluster_runs_are_bit_reproducible() {
    let fingerprint = |seed: u64| {
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerLonger, seed));
        sim.run();
        sim.jobs()
            .iter()
            .map(|j| (j.completed_at.unwrap().as_nanos(), j.migrations))
            .collect::<Vec<_>>()
    };
    assert_eq!(fingerprint(77), fingerprint(77));
    assert_ne!(fingerprint(77), fingerprint(78), "seed must matter");
}

#[test]
fn linger_policy_obeys_its_own_cost_model() {
    // A lingering job must not migrate before the cost model's linger
    // duration has elapsed: with zero migrations the test is vacuous, so
    // use a busy trace (short away periods) to force episodes.
    let mut cfg = small_cfg(Policy::LingerLonger, 33);
    cfg.trace.away_episode_mean_secs = 300.0;
    let t_migr = cfg.params.migration.cost(8 * 1024);
    // The minimum possible linger duration is against an l=0 destination
    // from an h=1 source: exactly t_migr.
    let min_lingr = linger_duration(1.0, 0.0, t_migr).unwrap();
    assert_eq!(min_lingr, t_migr);
    let mut sim = ClusterSim::new(cfg);
    sim.run();
    // Sanity: the model ran and someone lingered.
    let lingered: f64 = sim.jobs().iter().map(|j| j.breakdown.lingering.as_secs_f64()).sum();
    assert!(lingered > 0.0);
}

#[test]
fn cost_model_consistency_with_node_rates() {
    // The break-even structure must agree with what the node executor
    // actually delivers: a job on an h-busy node earns steal_rate(h);
    // after migrating it earns steal_rate(l). The cost model's "linger
    // forever" answer for h <= l must coincide with the rate ordering.
    let table = BurstParamTable::paper_calibrated();
    let cs = SimDuration::from_micros(100);
    let t_migr = MigrationCostModel::paper_default().cost(8 * 1024);
    for (h, l) in [(0.6, 0.1), (0.3, 0.0), (0.2, 0.5)] {
        let rate_h = steal_rate(&table, h, cs);
        let rate_l = steal_rate(&table, l, cs);
        let migration_possible = linger_duration(h, l, t_migr).is_some();
        assert_eq!(
            migration_possible,
            rate_l > rate_h,
            "cost model and rates disagree at h={h}, l={l}"
        );
        if migration_possible {
            assert!(should_migrate(SimDuration::from_secs(10_000), h, l, t_migr));
        }
    }
}

#[test]
fn trace_driven_executor_matches_trace_utilization() {
    // LocalWorkload (workload crate) driving FineGrainCpu (node crate):
    // the foreign job's earned fraction over a long window must equal
    // 1 − utilization within tolerance.
    let f = RngFactory::new(8);
    let cfg = CoarseTraceConfig {
        duration: SimDuration::from_secs(1800),
        ..Default::default()
    };
    let trace = Arc::new(cfg.synthesize(&f, 2));
    let wl = LocalWorkload::new(
        trace.clone(),
        0,
        BurstFitTable::paper_shared(),
        f.stream_for(domains::FINE_BURSTS, 2),
    );
    let mut cpu = FineGrainCpu::new(wl, SimDuration::from_micros(100));
    let mut wall = SimDuration::ZERO;
    let horizon = SimDuration::from_secs(1200);
    while wall < horizon {
        wall += cpu.consume(SimDuration::from_millis(500));
    }
    let earned = cpu.foreign_cpu().as_secs_f64() / wall.as_secs_f64();
    // Average trace utilization over the same span.
    let windows = (wall.as_secs_f64() / 2.0) as usize;
    let avg_u: f64 =
        (0..windows).map(|w| trace.sample(w).cpu).sum::<f64>() / windows as f64;
    assert!(
        (earned - (1.0 - avg_u)).abs() < 0.05,
        "earned {earned} vs available {}",
        1.0 - avg_u
    );
}

#[test]
fn memory_gating_blocks_oversized_jobs() {
    // A job bigger than any node's free memory must stay queued forever;
    // the family run then aborts at the safety horizon rather than
    // deadlocking.
    let mut cfg = small_cfg(Policy::LingerLonger, 3);
    cfg.family = JobFamily::uniform(1, SimDuration::from_secs(60), 60 * 1024);
    cfg.max_time = SimTime::from_secs(600);
    let mut sim = ClusterSim::new(cfg);
    let finished = sim.run();
    assert!(!finished, "oversized job should never be placed");
    assert_eq!(sim.completed(), 0);
    assert!(sim.jobs().iter().all(|j| j.state == JobState::Queued));
}

#[test]
fn two_level_stream_is_deterministic_across_crates() {
    let build = || {
        let f = RngFactory::new(99);
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(600),
            ..Default::default()
        };
        let trace = Arc::new(cfg.synthesize(&f, 0));
        let mut wl = LocalWorkload::with_random_offset(
            trace,
            &f,
            0,
            BurstFitTable::paper_shared(),
        );
        (0..500)
            .map(|_| {
                let b = wl.next_burst();
                (b.kind == BurstKind::Run, b.duration.as_nanos())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(build(), build());
}
