//! Golden regression values: the seed-1998 headline numbers recorded in
//! EXPERIMENTS.md, pinned with tolerant bands.
//!
//! These tests exist to catch *unintentional* drift: a change to the
//! burst tables, the RNG derivation, or a scheduler rule silently moves
//! every recorded experiment. If a change is intentional, re-run
//! `cargo run --release -p linger-bench --bin run_all`, update
//! EXPERIMENTS.md, and refresh the constants here in the same commit
//! (see CONTRIBUTING.md).

use linger_bench as bench;

const SEED: u64 = 1998;

/// Relative tolerance for pinned values — wide enough to survive
/// platform-level float noise (there should be none; runs are integer-
/// deterministic), tight enough to catch any real model change.
const TOL: f64 = 0.02;

fn near(actual: f64, golden: f64, what: &str) {
    assert!(
        (actual - golden).abs() <= TOL * golden.abs().max(1e-9),
        "{what}: measured {actual}, golden {golden} (±{:.0}%)",
        TOL * 100.0
    );
}

#[test]
fn golden_fig07_headline_row() {
    // EXPERIMENTS.md Fig 7 workload-1: LL 976 / LF 973 / IE 1708 / PM 1716,
    // throughput 59.2 / 59.2 / 32.0 / 32.0. Full 64-node run (~300 ms).
    let r = bench::fig07(SEED, false);
    let avg: Vec<f64> = r.workload1.iter().map(|m| m.avg_completion_secs).collect();
    near(avg[0], 976.0, "w1 LL avg");
    near(avg[1], 973.0, "w1 LF avg");
    near(avg[2], 1708.0, "w1 IE avg");
    near(avg[3], 1716.0, "w1 PM avg");
    let tput: Vec<f64> = r.workload1.iter().map(|m| m.throughput).collect();
    near(tput[0], 59.2, "w1 LL throughput");
    near(tput[2], 32.0, "w1 IE throughput");
    near(r.workload1[0].foreground_delay, 0.0045, "LL foreground delay");
    // Workload-2: 1892 / 1934 / 1928 / 1957.
    let avg2: Vec<f64> = r.workload2.iter().map(|m| m.avg_completion_secs).collect();
    near(avg2[0], 1892.0, "w2 LL avg");
    near(avg2[3], 1957.0, "w2 PM avg");
}

#[test]
fn golden_fig05_peaks() {
    // EXPERIMENTS.md Fig 5: peaks 1.22% / 3.67% / 6.11%, min FCSR 95.7%.
    let grid = bench::fig05(SEED, false);
    let peak = |range: std::ops::Range<usize>| {
        grid[range].iter().map(|r| r.ldr).fold(0.0f64, f64::max)
    };
    near(peak(0..9), 0.0122, "LDR peak @100us");
    near(peak(9..18), 0.0367, "LDR peak @300us");
    near(peak(18..27), 0.0611, "LDR peak @500us");
    let min_fcsr = grid.iter().map(|r| r.fcsr).fold(1.0f64, f64::min);
    near(min_fcsr, 0.957, "min FCSR");
}

#[test]
fn golden_fig09_curve() {
    // EXPERIMENTS.md Fig 9: 1.26 @20%, 1.97 @50%, 9.67 @90%.
    let pts = bench::fig09(SEED, false);
    near(pts[2].slowdown, 1.26, "slowdown @20%");
    near(pts[5].slowdown, 1.97, "slowdown @50%");
    near(pts[9].slowdown, 9.67, "slowdown @90%");
}

#[test]
fn golden_fig04_aggregates() {
    // EXPERIMENTS.md Fig 4: 45% non-idle, 76% low-cpu, P90 free 22.2 MB.
    let r = bench::fig04(SEED, false);
    near(r.non_idle_fraction, 0.45, "non-idle fraction");
    near(r.non_idle_low_cpu_fraction, 0.76, "low-cpu fraction");
    near(r.p90_free_kb, 22.2 * 1024.0, "P90 free KB");
}

#[test]
fn golden_rng_stream_values() {
    // The seed-derivation path underneath every experiment. If this
    // breaks, every other golden value moves with it.
    use linger_sim_core::{domains, RngFactory};
    use rand::Rng;
    let mut r = RngFactory::new(SEED).stream_for(domains::FINE_BURSTS, 0);
    let v: u64 = r.random();
    // Recorded from the current implementation; any change to the
    // SplitMix64 / ChaCha8 derivation shows up here first.
    let recorded = v; // self-recording on first failure is not possible —
                      // assert stability within the run instead:
    let mut r2 = RngFactory::new(SEED).stream_for(domains::FINE_BURSTS, 0);
    assert_eq!(recorded, r2.random::<u64>());
    // And pin the table the streams feed.
    let table = linger_workload::BurstParamTable::paper_calibrated();
    near(table.buckets()[4].run_mean, 0.010176, "bucket 20% run mean");
    near(table.buckets()[18].run_mean, 0.206288, "bucket 90% run mean");
}
