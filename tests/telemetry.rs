//! The telemetry no-interference contract, enforced end to end: figure
//! results are byte-identical with telemetry off or on, at any worker
//! count; journals stay within their ring cap at figure scale; and the
//! decision-level diff pinpoints where two runs part ways.

use linger::{JobFamily, Policy};
use linger_bench as bench;
use linger_cluster::{ClusterConfig, ClusterSim};
use linger_sim_core::{set_default_jobs, SimDuration};
use linger_telemetry::{diff, EventKind, Recorder};
use std::sync::Mutex;

const SEED: u64 = 1998;

/// Serializes the tests that touch process-wide state (`LINGER_TELEMETRY`
/// and the default job count).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn fig07_json(fast: bool) -> String {
    serde_json::to_string(&bench::fig07(SEED, fast)).expect("serialize fig07")
}

#[test]
fn fig07_json_is_byte_identical_with_telemetry_on() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("LINGER_TELEMETRY");
    let off = fig07_json(true);
    std::env::set_var("LINGER_TELEMETRY", "1");
    let on = fig07_json(true);
    std::env::remove_var("LINGER_TELEMETRY");
    assert_eq!(off, on, "telemetry must not perturb figure results");
}

#[test]
fn fig07_json_is_byte_identical_across_worker_counts_with_telemetry_on() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("LINGER_TELEMETRY", "1");
    set_default_jobs(1);
    let serial = fig07_json(true);
    set_default_jobs(4);
    let parallel = fig07_json(true);
    set_default_jobs(0);
    std::env::remove_var("LINGER_TELEMETRY");
    assert_eq!(serial, parallel, "telemetry must not break --jobs determinism");
}

fn cell(seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        Policy::LingerLonger,
        JobFamily::uniform(128, SimDuration::from_secs(300), 8 * 1024),
    );
    cfg.nodes = 64;
    cfg.seed = seed;
    cfg
}

#[test]
fn journal_stays_within_its_ring_cap_at_figure_scale() {
    let recorder = Recorder::with_capacity(256);
    let mut sim = ClusterSim::new(cell(SEED)).with_recorder(recorder.clone());
    sim.run();
    let journal = recorder.journal().expect("enabled");
    let counts = journal.counts();
    assert!(journal.len() <= 256, "ring holds {} > cap 256", journal.len());
    assert!(counts.events > 256, "the run should overflow a 256-event ring");
    assert_eq!(counts.dropped, counts.events - journal.len() as u64);
    // Exact counters survive the wraparound: every window recorded one
    // WindowStart even though most were dropped from the ring.
    let windows = counts.by_kind[linger_telemetry::journal::kind_slot(&EventKind::WindowStart {
        queue_depth: 0,
    })];
    assert!(windows > 256, "window counter lost to ring wraparound: {windows}");
}

#[test]
fn identical_seeds_produce_identical_journals() {
    let (a, b) = (Recorder::with_capacity(1 << 16), Recorder::with_capacity(1 << 16));
    ClusterSim::new(cell(SEED)).with_recorder(a.clone()).run();
    ClusterSim::new(cell(SEED)).with_recorder(b.clone()).run();
    let report = diff(
        &a.journal().unwrap().snapshot(),
        &b.journal().unwrap().snapshot(),
    );
    assert!(report.identical(), "same seed diverged: {:?}", report.first_divergence);
}

#[test]
fn different_seeds_diverge_at_a_specific_decision() {
    let (a, b) = (Recorder::with_capacity(1 << 16), Recorder::with_capacity(1 << 16));
    ClusterSim::new(cell(SEED)).with_recorder(a.clone()).run();
    ClusterSim::new(cell(SEED + 1)).with_recorder(b.clone()).run();
    let report = diff(
        &a.journal().unwrap().snapshot(),
        &b.journal().unwrap().snapshot(),
    );
    assert!(!report.identical(), "different seeds cannot journal identically");
    let dec = report
        .first_decision_divergence
        .as_ref()
        .expect("seed change must surface in a decision, not only in counts");
    assert!(
        dec.a.is_some() || dec.b.is_some(),
        "divergence must carry at least one side's event"
    );
}
