//! Fault-injection determinism and crash-safety, end to end.
//!
//! The contracts under test:
//!
//! - A fault schedule is a pure function of `(fault config, seed, node
//!   id)` — building it inside a parallel sweep yields identical events
//!   at any worker count.
//! - A zero-rate fault config is inert: the figure JSON a faulted build
//!   emits at rate 0 is byte-for-byte what the fault-free simulator
//!   produces, regardless of the other (unused) fault parameters.
//! - A cell that panics mid-sweep becomes a structured error; the
//!   surviving cells complete and their results still land on disk as
//!   valid, atomically renamed JSON.

use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim, FaultConfig, FaultModel, RunMode};
use linger_sim_core::{par_map_indexed, try_par_map_indexed, SimDuration, SimTime};
use linger_workload::{CoarseTraceConfig, TraceLibrary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same `(fault config, seed)` → identical per-node failure
    /// schedules whether the sweep runs on 1 worker or 4.
    #[test]
    fn fault_schedule_identical_at_jobs_1_and_4(
        seed in 0u64..1_000_000,
        rate in 0.1f64..24.0,
        reboot in 30.0f64..1200.0,
        prob in 0.0f64..0.5,
        nodes in 1usize..24,
    ) {
        let cfg = FaultConfig {
            crash_rate_per_hour: rate,
            mean_reboot_secs: reboot,
            migration_failure_prob: prob,
        };
        let sweep = |jobs: usize| {
            par_map_indexed(6, Some(jobs), |cell| {
                let m = FaultModel::new(cfg, seed.wrapping_add(cell as u64), nodes, 2_000);
                m.events().to_vec()
            })
        };
        prop_assert_eq!(sweep(1), sweep(4));
    }

    /// Migration-failure draws are keyed by `(job, transfer)` alone —
    /// the same draws come out of every worker layout.
    #[test]
    fn migration_failure_draws_identical_at_jobs_1_and_4(
        seed in 0u64..1_000_000,
        prob in 0.05f64..0.95,
    ) {
        let cfg = FaultConfig {
            crash_rate_per_hour: 0.0,
            mean_reboot_secs: 300.0,
            migration_failure_prob: prob,
        };
        let sweep = |jobs: usize| {
            par_map_indexed(32, Some(jobs), |i| {
                let m = FaultModel::new(cfg, seed, 4, 100);
                m.migration_fails(i as u32, (i * 7) as u32)
            })
        };
        prop_assert_eq!(sweep(1), sweep(4));
    }
}

/// The cluster configuration `ext_faults` sweeps in fast mode, with the
/// given fault parameters.
fn faulted_cfg(seed: u64, faults: FaultConfig) -> ClusterConfig {
    let nodes = 16;
    let trace = CoarseTraceConfig {
        duration: SimDuration::from_secs(3600),
        ..Default::default()
    };
    let family = JobFamily::uniform(2 * nodes as u32, SimDuration::from_secs(300), 8 * 1024);
    let mut cfg = ClusterConfig::paper(Policy::LingerLonger, family);
    cfg.nodes = nodes;
    cfg.seed = seed;
    cfg.trace = trace;
    cfg.mode = RunMode::Throughput { horizon: SimTime::from_secs(600) };
    cfg.faults = faults;
    cfg
}

/// Serialize the figure-level observables of one run as pretty JSON —
/// the same fields `ext_faults` writes per grid point.
fn figure_json(cfg: ClusterConfig) -> String {
    let real = TraceLibrary::global().realize(&cfg.trace, cfg.seed, cfg.nodes);
    let mut sim = ClusterSim::with_realization(cfg, &real);
    sim.run();
    let summary = (
        sim.completed(),
        sim.foreign_cpu_delivered().as_nanos(),
        sim.foreground_delay_ratio(),
        sim.fault_stats(),
    );
    serde_json::to_string_pretty(&summary).expect("summary serializes")
}

#[test]
fn rate_zero_figure_json_is_byte_identical_to_fault_free() {
    let golden = figure_json(faulted_cfg(1998, FaultConfig::disabled()));
    // Zero rates with wildly different inert parameters must not move a
    // single byte — no RNG draw may depend on them.
    let zeroed = figure_json(faulted_cfg(
        1998,
        FaultConfig {
            crash_rate_per_hour: 0.0,
            mean_reboot_secs: 31_557.0,
            migration_failure_prob: 0.0,
        },
    ));
    assert_eq!(golden, zeroed, "rate-0 fault config perturbed the run");
    // And the machinery is genuinely live at nonzero rates (the golden
    // comparison above would pass vacuously if faults never fired).
    let faulted = figure_json(faulted_cfg(
        1998,
        FaultConfig {
            crash_rate_per_hour: 12.0,
            mean_reboot_secs: 300.0,
            migration_failure_prob: 0.10,
        },
    ));
    assert_ne!(golden, faulted, "nonzero fault rate produced no faults");
}

#[test]
fn ext_faults_rate_zero_rows_match_the_direct_simulation() {
    let points = linger_bench::ext_faults(1998, true);
    let ll0 = points
        .iter()
        .find(|p| p.policy == "LL" && p.crash_rate_per_hour == 0.0)
        .expect("grid has a rate-0 LL row");
    assert_eq!(
        (ll0.crashes, ll0.migration_failures, ll0.migrations_abandoned),
        (0, 0, 0),
        "rate-0 row recorded fault activity"
    );
    // The rate-0 grid point is the plain fault-free simulation.
    let real = TraceLibrary::global().realize(
        &CoarseTraceConfig {
            duration: SimDuration::from_secs(3600),
            ..Default::default()
        },
        1998,
        16,
    );
    let mut sim =
        ClusterSim::with_realization(faulted_cfg(1998, FaultConfig::disabled()), &real);
    sim.run();
    assert_eq!(ll0.completed, sim.completed());
    assert_eq!(
        ll0.foreign_cpu_secs,
        sim.foreign_cpu_delivered().as_secs_f64()
    );
}

#[test]
fn panicking_cell_yields_structured_error_and_survivors_reach_disk() {
    let res = try_par_map_indexed(8, Some(4), |i| {
        if i == 3 {
            panic!("deliberate failure in cell {i}");
        }
        i * 10
    });
    let err = res[3].as_ref().expect_err("cell 3 panicked");
    assert_eq!(err.index, 3);
    assert!(err.payload.contains("deliberate failure"), "{}", err.payload);
    let survivors: Vec<usize> = res.iter().filter_map(|r| r.as_ref().ok().copied()).collect();
    assert_eq!(survivors, vec![0, 10, 20, 40, 50, 60, 70]);

    // The partial results still persist atomically and parse back.
    let dir = std::env::temp_dir().join("linger-fault-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("partial.json");
    let json = serde_json::to_string_pretty(&survivors).unwrap();
    linger_sim_core::write_atomic(&path, json.as_bytes()).unwrap();
    let back: Vec<usize> =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(back, survivors);
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(names, vec!["partial.json".to_string()], "temp file leaked");
    std::fs::remove_dir_all(&dir).ok();
}
