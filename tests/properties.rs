//! Property-based tests (proptest) of the core invariants: the cost
//! model, two-moment fitting, the memory contract, simulated-time
//! arithmetic, and the event queue.

use linger::cost::{break_even_factor, linger_duration, migration_beneficial, should_migrate};
use linger::MigrationCostModel;
use linger_sim_core::{EventQueue, SimDuration, SimTime};
use linger_stats::{fit_two_moments, Distribution};
use linger_workload::TwoPoolMemory;
use proptest::prelude::*;

proptest! {
    // ---------------------------------------------------------- cost model

    #[test]
    fn break_even_factor_is_at_least_one(
        h in 0.0f64..=1.0,
        l in 0.0f64..=1.0,
    ) {
        if let Some(k) = break_even_factor(h, l) {
            // (1-l)/(h-l) ≥ 1 because h ≤ 1.
            prop_assert!(k >= 1.0 - 1e-12, "factor {k}");
        } else {
            prop_assert!(h <= l);
        }
    }

    #[test]
    fn linger_duration_bounds(
        h in 0.01f64..=1.0,
        l in 0.0f64..=1.0,
        migr_ms in 1u64..=200_000,
    ) {
        let t_migr = SimDuration::from_millis(migr_ms);
        match linger_duration(h, l, t_migr) {
            Some(t) => {
                prop_assert!(h > l);
                // Lingering never shorter than the migration itself.
                prop_assert!(t >= t_migr, "t {t} < t_migr {t_migr}");
            }
            None => prop_assert!(h <= l),
        }
    }

    #[test]
    fn should_migrate_is_monotone_in_age(
        h in 0.05f64..=1.0,
        l in 0.0f64..=1.0,
        migr_ms in 1u64..=100_000,
        age_a_ms in 0u64..=1_000_000,
        age_b_ms in 0u64..=1_000_000,
    ) {
        let t_migr = SimDuration::from_millis(migr_ms);
        let (lo, hi) = if age_a_ms <= age_b_ms { (age_a_ms, age_b_ms) } else { (age_b_ms, age_a_ms) };
        let at_lo = should_migrate(SimDuration::from_millis(lo), h, l, t_migr);
        let at_hi = should_migrate(SimDuration::from_millis(hi), h, l, t_migr);
        // Once migration is due it stays due.
        prop_assert!(!at_lo || at_hi);
    }

    #[test]
    fn beneficial_episodes_are_upward_closed(
        h in 0.05f64..=1.0,
        l in 0.0f64..=1.0,
        migr_ms in 1u64..=100_000,
        lingr_ms in 0u64..=100_000,
        nidle_ms in 0u64..=10_000_000,
    ) {
        let t_migr = SimDuration::from_millis(migr_ms);
        let t_lingr = SimDuration::from_millis(lingr_ms);
        let t_nidle = SimDuration::from_millis(nidle_ms);
        if migration_beneficial(t_nidle, t_lingr, h, l, t_migr) {
            let longer = t_nidle + SimDuration::from_secs(100);
            prop_assert!(migration_beneficial(longer, t_lingr, h, l, t_migr));
        }
    }

    #[test]
    fn migration_cost_is_monotone_in_size(
        a_kb in 0u32..=1_000_000,
        b_kb in 0u32..=1_000_000,
    ) {
        let m = MigrationCostModel::paper_default();
        let (lo, hi) = if a_kb <= b_kb { (a_kb, b_kb) } else { (b_kb, a_kb) };
        prop_assert!(m.cost(lo) <= m.cost(hi));
    }

    // ------------------------------------------------------------- fitting

    #[test]
    fn two_moment_fit_is_exact(
        mean in 1e-5f64..10.0,
        cv2 in 0.05f64..30.0,
    ) {
        let var = cv2 * mean * mean;
        let f = fit_two_moments(mean, var);
        prop_assert!((f.mean() - mean).abs() / mean < 1e-6, "{} mean", f.family());
        prop_assert!((f.variance() - var).abs() / var < 1e-5, "{} var", f.family());
    }

    #[test]
    fn fitted_cdf_is_monotone(
        mean in 1e-4f64..1.0,
        cv2 in 0.1f64..20.0,
        x_a in 0.0f64..5.0,
        x_b in 0.0f64..5.0,
    ) {
        let f = fit_two_moments(mean, cv2 * mean * mean);
        let (lo, hi) = if x_a <= x_b { (x_a, x_b) } else { (x_b, x_a) };
        prop_assert!(f.cdf(lo) <= f.cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f.cdf(hi)));
    }

    // ------------------------------------------------------ memory contract

    #[test]
    fn two_pool_memory_invariants(
        total_mb in 16u32..=128,
        job_mb in 1u32..=32,
        demands in prop::collection::vec(0u32..=140_000, 1..60),
    ) {
        let total_kb = total_mb * 1024;
        let mut m = TwoPoolMemory::new(total_kb, 20 * 1024.min(total_kb / 2));
        m.attach_foreign(job_mb * 1024);
        for kb in demands {
            m.set_local_kb(kb);
            // Pools never exceed physical memory.
            prop_assert!(m.local_kb() + m.foreign_resident_kb() <= m.total_kb());
            // The foreign job never grows beyond its demand.
            prop_assert!(m.foreign_resident_kb() <= job_mb * 1024 + 4096);
            // Local demand (clamped to physical memory) is always met.
            prop_assert!(m.local_kb() == kb.min(m.total_kb()) / 4 * 4);
        }
    }

    // ------------------------------------------------------------ sim time

    #[test]
    fn sim_time_arithmetic_roundtrips(
        a_ns in 0u64..=(1u64 << 61),
        d_ns in 0u64..=(1u64 << 60),
    ) {
        let t = SimTime::from_nanos(a_ns);
        let d = SimDuration::from_nanos(d_ns);
        let later = t + d;
        prop_assert_eq!(later - t, d);
        prop_assert_eq!(later.saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(later), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling_is_monotone(
        ns in 1u64..=(1u64 << 40),
        k_a in 0.0f64..10.0,
        k_b in 0.0f64..10.0,
    ) {
        let d = SimDuration::from_nanos(ns);
        let (lo, hi) = if k_a <= k_b { (k_a, k_b) } else { (k_b, k_a) };
        prop_assert!(d.mul_f64(lo) <= d.mul_f64(hi));
    }

    // ---------------------------------------------------------- event queue

    #[test]
    fn event_queue_pops_sorted(
        times in prop::collection::vec(0u64..=1_000_000u64, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn event_queue_cancellation_is_exact(
        times in prop::collection::vec(0u64..=100_000u64, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, h) in handles.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*h);
            } else {
                expected.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, e)) = q.pop() {
            popped.push(e);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }
}
