//! Parallel-job scenario: should a data-parallel solver linger on busy
//! workstations or shrink to the idle ones?
//!
//! Walks through the paper's Sec 5 machinery: synthetic BSP slowdown,
//! the reconfiguration trade-off, and the application models.
//!
//! Run with: `cargo run --release --example parallel_jobs`

use linger_parallel::{run_bsp, slowdown, App, BspConfig, MalleableJob, Strategy};
use linger_sim_core::SimDuration;

fn main() {
    // -- How much does one busy workstation hurt a tight BSP job? ------
    let cfg = BspConfig { phases: 120, ..BspConfig::fig9() };
    println!("8-process BSP job, 100 ms phases, one workstation busy:");
    for u in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut utils = vec![0.0; cfg.processes];
        utils[0] = u;
        println!(
            "  owner at {:>2.0}% -> job slowdown {:>5.2}x",
            u * 100.0,
            slowdown(&cfg, &utils, 11)
        );
    }

    // -- Coarser synchronization tolerates sharing better --------------
    println!("\nsame job, 4 busy nodes at 20%, varying phase granularity:");
    for g_ms in [10u64, 100, 1000] {
        let cfg = BspConfig {
            compute_per_phase: SimDuration::from_millis(g_ms),
            phases: (12_000 / g_ms).max(4) as usize,
            ..BspConfig::fig9()
        };
        let mut utils = vec![0.0; 8];
        for u in utils.iter_mut().take(4) {
            *u = 0.2;
        }
        println!("  {:>5} ms phases -> slowdown {:>4.2}x", g_ms, slowdown(&cfg, &utils, 13));
    }

    // -- Linger or reconfigure? ----------------------------------------
    let job = MalleableJob::fig11();
    println!("\n32-node cluster, 500 ms sync, busy nodes at 20% — completion times:");
    println!("  idle |  LL-32 |  LL-16 | reconfig");
    for idle in [32usize, 28, 24, 16, 8] {
        let t32 = job.completion(Strategy::LingerK(32), idle, 17).as_secs_f64();
        let t16 = job.completion(Strategy::LingerK(16), idle, 17).as_secs_f64();
        let trc = job.completion(Strategy::Reconfiguration, idle, 17).as_secs_f64();
        println!("  {idle:>4} | {t32:>5.2}s | {t16:>5.2}s | {trc:>7.2}s");
    }
    println!("(reconfiguration throws away idle nodes above a power of two;");
    println!(" lingering rides them and only loses when many hosts are busy)");

    // -- The three applications ------------------------------------------
    println!("\napplication models on 8 nodes, 4 busy at 20%:");
    for app in App::ALL {
        let cfg = app.config(8, 8);
        let ideal = run_bsp(&cfg, &[0.0; 8], 19, 0).completion.as_secs_f64();
        let mut utils = vec![0.0; 8];
        for u in utils.iter_mut().take(4) {
            *u = 0.2;
        }
        let loaded = run_bsp(&cfg, &utils, 19, 1).completion.as_secs_f64();
        println!(
            "  {:<6} comm share {:>4.1}% -> slowdown {:.2}x",
            app.name(),
            app.comm_fraction(8) * 100.0,
            loaded / ideal
        );
    }
    println!("(the more an app waits on the network, the less the owner's CPU matters)");
}
