//! Adaptive strategies: the cost model's foundations and the hybrid
//! scheduler built on them.
//!
//! 1. How good is the median-remaining-life prediction the linger
//!    duration rests on? (It is exactly right for the heavy-tailed
//!    episode lengths real workstations exhibit.)
//! 2. The hybrid width selector the paper proposes as future work:
//!    predict the best power-of-two process count from the model, and
//!    compare with a simulation oracle.
//!
//! Run with: `cargo run --release --example adaptive_strategies`

use linger::predictor::{evaluate, EpisodeModel, LingerRule, Scenario};
use linger::MigrationCostModel;
use linger_parallel::hybrid::{oracle_best_k, predict_best_k};
use linger_parallel::MalleableJob;

fn main() {
    // -- 1. Predictor quality --------------------------------------------
    let t_migr = MigrationCostModel::paper_default().cost(8 * 1024);
    println!("episode predictor study (40%-busy host, idle destination):");
    let rules = [
        LingerRule::MedianRemainingLife,
        LingerRule::Immediate,
        LingerRule::Never,
    ];
    for model in [
        EpisodeModel::Pareto { xm: 15.0, alpha: 1.0 },
        EpisodeModel::Exponential { mean: 120.0 },
    ] {
        println!("  episodes ~ {}:", model.label());
        let scenario = Scenario { h: 0.4, l: 0.02, t_migr, work: 600.0 };
        for row in evaluate(model, &rules, scenario, 20_000, 11) {
            println!(
                "    {:<22} regret {:>4.1}%  (migrated {:>3.0}% of the time)",
                row.rule,
                row.mean_regret * 100.0,
                row.migration_fraction * 100.0
            );
        }
    }
    println!(
        "  -> the 2T heuristic is the best rule exactly on Pareto lifetimes,\n\
         the distribution Harchol-Balter & Downey measured.\n"
    );

    // -- 2. Hybrid width selection ---------------------------------------
    println!("hybrid width selection on a 32-node cluster (20% busy hosts):");
    let job = MalleableJob::fig11();
    println!("  idle | predicted k | oracle k");
    for idle in [32usize, 24, 16, 8, 2] {
        let k_pred = predict_best_k(&job, idle);
        let k_oracle = oracle_best_k(&job, idle, 21);
        println!("  {idle:>4} | {k_pred:>11} | {k_oracle:>8}");
    }
    let busy_job = MalleableJob { local_util: 0.7, ..job };
    println!("  with 70%-busy hosts instead:");
    for idle in [16usize, 8] {
        let k_pred = predict_best_k(&busy_job, idle);
        println!("  {idle:>4} | {k_pred:>11} | (narrows away from lingering)");
    }
}
