//! Telemetry tour: journal a 64-node cluster run and inspect what the
//! scheduler actually decided.
//!
//! Demonstrates the `linger-telemetry` crate end to end: an explicit
//! [`Recorder`] (no environment variables needed), the event journal a
//! `ClusterSim` fills while it runs, the decision summary, and the two
//! export paths — JSON lines for `linger-inspect` and a Chrome trace
//! for Perfetto. The recorder never touches the RNG streams, so the
//! simulation results here are byte-identical to a run without it.
//!
//! Run with: `cargo run --release --example telemetry_tour`

use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim};
use linger_sim_core::SimDuration;
use linger_telemetry::{chrome_trace, render_summary, summarize, EventKind, Recorder};

fn main() {
    // A 64-node pool under the paper's workload-1 shape, scaled down:
    // twice as many jobs as nodes, so placement, lingering, and
    // migration decisions all fire.
    let family = JobFamily::uniform(128, SimDuration::from_secs(300), 8 * 1024);
    let mut cfg = ClusterConfig::paper(Policy::LingerLonger, family);
    cfg.nodes = 64;
    cfg.seed = 1998;

    let recorder = Recorder::with_capacity(linger_telemetry::DEFAULT_CAPACITY);
    let mut sim = ClusterSim::new(cfg).with_recorder(recorder.clone());
    let finished = sim.run();
    println!("== 128 jobs x 5 CPU-min on 64 nodes (LL), journaling on ==");
    println!("family finished: {finished}\n");

    let journal = recorder.journal().expect("recorder is enabled");
    print!("{}", render_summary(&summarize(&journal.snapshot())));

    // The journal is a typed event stream, not just counters: pull the
    // migration decisions back out with their cost-model inputs.
    println!("\nmigration decisions (cost-model inputs the policy saw):");
    let mut shown = 0;
    for ev in journal.snapshot() {
        if let EventKind::Decision {
            action: linger_telemetry::DecisionAction::Migrate,
            host_cpu,
            dest_cpu,
            age_secs,
            migration_secs,
            dest,
        } = ev.kind
        {
            println!(
                "  w{:>4} job {:?}: host cpu {:.2} -> node {:?} (cpu {:.2}), \
                 age {:.0}s, est. transfer {:.1}s",
                ev.window,
                ev.job,
                host_cpu.unwrap_or(f64::NAN),
                dest,
                dest_cpu.unwrap_or(f64::NAN),
                age_secs.unwrap_or(f64::NAN),
                migration_secs.unwrap_or(f64::NAN),
            );
            shown += 1;
            if shown == 8 {
                println!("  … (rest suppressed — see the spilled journal)");
                break;
            }
        }
    }
    if shown == 0 {
        println!("  (none fired on this workload — try a busier trace)");
    }

    // Both export formats, written next to the target dir.
    let events = journal.snapshot();
    let dir = std::env::temp_dir().join("linger-telemetry-tour");
    std::fs::create_dir_all(&dir).expect("create output dir");
    let jsonl = dir.join("tour.jsonl");
    journal.write_jsonl(&jsonl).expect("write jsonl");
    let chrome = dir.join("tour-chrome.json");
    let json = serde_json::to_string_pretty(&chrome_trace(&events)).expect("serialize");
    linger_sim_core::write_atomic(&chrome, json.as_bytes()).expect("write chrome trace");
    println!("\nwrote {} (inspect with `linger-inspect summary`)", jsonl.display());
    println!("wrote {} (open in Perfetto / chrome://tracing)", chrome.display());
}
