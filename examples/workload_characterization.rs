//! Workload characterization walk-through (paper Sec 3): from dispatch
//! records to the two-level generator.
//!
//! Shows the full measurement pipeline a deployer would run on their own
//! machine room: record fine-grain bursts, fit per-bucket distributions,
//! check the fits, derive coarse-trace aggregates, and wire both levels
//! together.
//!
//! Run with: `cargo run --release --example workload_characterization`

use linger_sim_core::{domains, RngFactory, SimDuration, SimTime};
use linger_stats::Distribution;
use linger_workload::{
    analysis::{CoarseAggregates, FineGrainAnalysis},
    BurstFitTable, BurstKind, CoarseTraceConfig, DispatchTrace, LocalWorkload, TwoPoolMemory,
};
use std::sync::Arc;

fn main() {
    let factory = RngFactory::new(314);

    // -- 1. Fine-grain: dispatch traces -> bucket moments -> fits ------
    println!("== fine-grain characterization (Sec 3.1) ==");
    let mut analysis = FineGrainAnalysis::new(true);
    for (id, u) in [(0u64, 0.10), (1, 0.30), (2, 0.50), (3, 0.70)] {
        let trace = DispatchTrace::synthesize_fixed(&factory, id, u, SimDuration::from_secs(600));
        analysis.ingest(&trace);
    }
    for bucket in [2usize, 10] {
        let acc = &analysis.buckets()[bucket];
        let (run_fit, _) = analysis.fitted(bucket);
        let run_fit = run_fit.expect("populated bucket");
        let ks = analysis.ecdf(bucket, BurstKind::Run).ks_distance(|x| run_fit.cdf(x));
        println!(
            "bucket {:>3}%: {:>6} run bursts, mean {:>6.1} ms, fitted as {} (KS {:.3})",
            bucket * 5,
            acc.run.count(),
            acc.run.mean() * 1000.0,
            run_fit.family(),
            ks
        );
    }

    // -- 2. Coarse-grain: machine-room aggregates ----------------------
    println!("\n== coarse-grain characterization (Sec 3.2) ==");
    let cfg = CoarseTraceConfig {
        duration: SimDuration::from_secs(6 * 3600),
        ..Default::default()
    };
    let traces = cfg.synthesize_library(&factory, 16);
    let agg = CoarseAggregates::analyze(&traces);
    println!(
        "16 machines x 6 h: {:.0}% of time non-idle; {:.0}% of non-idle time under 10% CPU",
        agg.non_idle_fraction * 100.0,
        agg.non_idle_low_cpu_fraction * 100.0
    );
    println!(
        "free memory: >= {:.1} MB for 90% of the time, >= {:.1} MB for 95%",
        agg.mem_available_at_least(0.90) / 1024.0,
        agg.mem_available_at_least(0.95) / 1024.0
    );

    // -- 3. The two-pool memory contract -------------------------------
    println!("\n== two-pool priority memory (Sec 3.2) ==");
    let mut mem = TwoPoolMemory::new(64 * 1024, 30 * 1024);
    let resident = mem.attach_foreign(8 * 1024);
    println!("foreign job attached: {} KB resident, {} KB still free", resident, mem.free_kb());
    mem.set_local_kb(58 * 1024); // the owner opens a big build
    println!(
        "owner grows to 58 MB: foreign shrinks to {} KB resident ({} pages reclaimed), \
         zero local page-outs: {}",
        mem.foreign_resident_kb(),
        mem.reclaimed_pages(),
        mem.local_pageouts() == 0
    );

    // -- 4. The two-level generator (Fig 6) -----------------------------
    println!("\n== two-level workload generation (Fig 6) ==");
    let trace = Arc::new(traces[0].clone());
    let mut wl = LocalWorkload::new(
        trace,
        0,
        BurstFitTable::paper_shared(),
        factory.stream_for(domains::FINE_BURSTS, 99),
    );
    let mut bursts = 0u64;
    let mut run_time = SimDuration::ZERO;
    let horizon = SimTime::from_secs(120);
    while wl.position() < horizon {
        let b = wl.next_burst();
        bursts += 1;
        if b.kind == BurstKind::Run {
            run_time += b.duration;
        }
    }
    println!(
        "replayed 120 s of trace into {bursts} fine-grain bursts \
         ({:.1}% CPU demand realized)",
        run_time.as_secs_f64() / 120.0 * 100.0
    );
}
