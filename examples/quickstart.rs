//! Quickstart: the Linger-Longer policy in three steps.
//!
//! 1. Ask the cost model how long an 8 MB foreign job should linger on a
//!    node that just turned busy.
//! 2. Watch a lingering job steal fine-grain idle cycles on a single
//!    workstation (and how little it delays the owner).
//! 3. Compare all four policies on a small shared cluster.
//!
//! Run with: `cargo run --release --example quickstart`

use linger::cost::linger_duration;
use linger::{JobFamily, MigrationCostModel, Policy};
use linger_cluster::policy_comparison;
use linger_node::{simulate_single_node, SingleNodeConfig};
use linger_sim_core::SimDuration;

fn main() {
    // -- 1. The linger-duration cost model (paper Sec 2, Fig 1) --------
    let migration = MigrationCostModel::paper_default();
    let t_migr = migration.cost(8 * 1024); // 8 MB over 3 Mbps effective
    println!("migrating an 8 MB job costs {:.1} s", t_migr.as_secs_f64());
    for h in [0.3, 0.5, 0.8] {
        // Destination: a recruited idle workstation (l = 0.05).
        let t = linger_duration(h, 0.05, t_migr).expect("busier source than destination");
        println!(
            "  node at {:>3.0}% local load -> linger {:.0} s before migrating",
            h * 100.0,
            t.as_secs_f64()
        );
    }

    // -- 2. Fine-grain cycle stealing on one workstation (Sec 4.1) -----
    let report = simulate_single_node(&SingleNodeConfig {
        utilization: 0.3,
        context_switch: SimDuration::from_micros(100),
        duration: SimDuration::from_secs(300),
        seed: 42,
    });
    println!(
        "\non a 30%-busy workstation, a lingering job harvested {:.1}% of idle \
         cycles\nwhile delaying the owner's processes by only {:.2}%",
        report.fcsr * 100.0,
        report.ldr * 100.0
    );

    // -- 3. Policies on a shared cluster (Sec 4.2) ---------------------
    println!("\n16-node cluster, 32 jobs x 5 CPU-minutes:");
    let family = JobFamily::uniform(32, SimDuration::from_secs(300), 8 * 1024);
    for m in policy_comparison(family, 16, 7) {
        println!(
            "  {:<18} avg completion {:>5.0} s, throughput {:>4.1} cpu-s/s",
            m.policy.to_string(),
            m.avg_completion_secs,
            m.throughput
        );
    }
    println!(
        "\n(Linger-Longer and Linger-Forever finish far ahead of {} and {} — \
         the paper's headline result.)",
        Policy::ImmediateEviction,
        Policy::PauseAndMigrate
    );
}
