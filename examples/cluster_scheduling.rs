//! Cluster scheduling scenario: a research group submits a parameter
//! sweep to a department's workstation pool overnight.
//!
//! Demonstrates the cluster simulator's full API surface: custom job
//! families, trace synthesis knobs, run modes, per-job inspection, and
//! the foreground-impact accounting that justifies the "social contract"
//! refinement.
//!
//! Run with: `cargo run --release --example cluster_scheduling`

use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim, JobState, RunMode};
use linger_sim_core::{SimDuration, SimTime};

fn main() {
    // A 24-node pool; 60 simulation runs of 8 CPU-minutes each, 8 MB
    // resident — a typical overnight sweep.
    let family = JobFamily::uniform(60, SimDuration::from_secs(480), 8 * 1024);

    println!("== overnight sweep: 60 jobs x 8 CPU-min on a 24-node pool ==\n");
    for policy in Policy::ALL {
        let mut cfg = ClusterConfig::paper(policy, family.clone());
        cfg.nodes = 24;
        cfg.seed = 2026;
        // Busier-than-default offices: shorter away periods.
        cfg.trace.away_episode_mean_secs = 600.0;
        cfg.trace.duration = SimDuration::from_secs(6 * 3600);

        let mut sim = ClusterSim::new(cfg);
        let finished = sim.run();
        assert!(finished, "sweep did not finish under {policy}");

        let last_done = sim
            .jobs()
            .iter()
            .filter_map(|j| j.completed_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        let avg_migrations: f64 = sim.jobs().iter().map(|j| j.migrations as f64).sum::<f64>()
            / sim.jobs().len() as f64;
        let total_linger: f64 = sim
            .jobs()
            .iter()
            .map(|j| j.breakdown.lingering.as_secs_f64())
            .sum();
        println!(
            "{:<20} sweep done in {:>5.0} s | {:.2} migrations/job | {:>6.0} s lingered | owner delay {:.2}%",
            policy.to_string(),
            last_done.as_secs_f64(),
            avg_migrations,
            total_linger,
            sim.foreground_delay_ratio() * 100.0
        );
    }

    // Steady-state view: keep the pool saturated for an hour and measure
    // deliverable cycles under the best and worst policy.
    println!("\n== steady-state throughput (constant 60-job backlog, 1 h) ==\n");
    for policy in [Policy::LingerForever, Policy::ImmediateEviction] {
        let mut cfg = ClusterConfig::paper(policy, family.clone());
        cfg.nodes = 24;
        cfg.seed = 2026;
        cfg.mode = RunMode::Throughput { horizon: SimTime::from_secs(3600) };
        let mut sim = ClusterSim::new(cfg);
        sim.run();
        let live = sim.jobs().iter().filter(|j| j.state != JobState::Done).count();
        println!(
            "{:<20} delivered {:>5.0} cpu-s ({:.1} cpu-s/s across 24 nodes); {live} jobs in flight",
            policy.to_string(),
            sim.foreign_cpu_delivered().as_secs_f64(),
            sim.foreign_cpu_delivered().as_secs_f64() / 3600.0
        );
    }
}
