//! Offline vendored stand-in for `rand` (the API subset this workspace
//! uses).
//!
//! Provides [`Rng::random`] over the `StandardUniform`-equivalent
//! value distribution, bit-compatible with upstream `rand` 0.9:
//! `f64` draws use the 53-bit `next_u64 >> 11` construction, integer
//! draws pass the generator words through unchanged.

#![warn(missing_docs)]

pub use rand_core::{RngCore, SeedableRng};

/// Types that can be drawn uniformly from an RNG (the subset of
/// upstream's `StandardUniform` distribution this workspace needs).
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Low word first, matching upstream.
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        lo | (hi << 64)
    }
}

impl Standard for i64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for u16 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream uses the sign bit of a 32-bit draw.
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform on [0, 1) — upstream's
        // `StandardUniform` construction.
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * SCALE
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniform value of type `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0
        }
        fn fill_bytes(&mut self, dst: &mut [u8]) {
            for b in dst {
                *b = 0;
            }
        }
    }

    #[test]
    fn f64_is_unit_interval_53_bit() {
        let mut lo = Fixed(0);
        assert_eq!(lo.random::<f64>(), 0.0);
        let mut hi = Fixed(u64::MAX);
        let x: f64 = hi.random();
        assert!(x < 1.0 && x > 0.9999999999999);
    }

    #[test]
    fn u64_passes_through() {
        let mut r = Fixed(0xDEAD_BEEF);
        assert_eq!(r.random::<u64>(), 0xDEAD_BEEF);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw(r: &mut (dyn RngCore + '_)) -> f64 {
            r.random()
        }
        let mut r = Fixed(0);
        assert_eq!(draw(&mut r), 0.0);
    }
}
