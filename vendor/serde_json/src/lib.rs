//! Offline vendored stand-in for `serde_json`, rendering and parsing
//! the vendored `serde` [`Value`] tree.
//!
//! Output conventions match upstream where the workspace depends on
//! them: compact `to_writer`, 2-space-indent `to_writer_pretty`,
//! integral floats written with a trailing `.0`, non-finite floats
//! written as `null`. Formatting is deterministic — identical value
//! trees always produce identical bytes, which is what the
//! determinism tests compare.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------- writing

/// Serialize `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Serialize `value` as pretty-printed JSON (2-space indent) into
/// `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        // Upstream writes non-finite floats as null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        // Integral value: keep the ".0" marker so the round trip stays
        // a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        // Rust's Display for f64 is the shortest representation that
        // round-trips, like upstream's ryu output.
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped_str(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                write_escaped_str(k, out);
                out.push_str(": ");
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

// ------------------------------------------------------------- reading

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a `T` from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<()> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::msg(format!(
            "expected `{}` at byte {}",
            c as char, *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::msg("unexpected end of input")),
        Some(b'n') => parse_literal(b, pos, "null", Value::Null),
        Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::msg(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect `\uXXXX` low half.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32
                            } else {
                                return Err(Error::msg("unpaired surrogate"));
                            }
                        } else {
                            hi as u32
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::msg(format!("invalid escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input came from &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u16> {
    let chunk = b
        .get(at..at + 4)
        .ok_or_else(|| Error::msg("truncated \\u escape"))?;
    let s = std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid \\u escape"))?;
    u16::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(Error::msg(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Some(rest) = text.strip_prefix('-') {
            if let Ok(n) = rest.parse::<u64>() {
                if n <= i64::MAX as u64 + 1 {
                    return Ok(Value::Int((n as i128).wrapping_neg() as i64));
                }
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::msg(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Float(1.5), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Int(-7)),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"a\":1,\"b\":[1.5,null],\"c\":\"x\\\"y\\n\",\"d\":-7}");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_uses_two_space_indent() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::UInt(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        let mut out = String::new();
        write_compact(&Value::Float(3.0), &mut out);
        assert_eq!(out, "3.0");
        let back: Value = from_str("3.0").unwrap();
        assert_eq!(back, Value::Float(3.0));
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn float_shortest_repr_roundtrips() {
        for &f in &[0.1, 1.0 / 3.0, 6.02e23, 1e-300, -2.5e-5] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![(1u64, 0.25f64), (2, 0.5)];
        let s = to_string(&xs).unwrap();
        let back: Vec<(u64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Seq(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Map(vec![])).unwrap(), "{}");
        let v: Value = from_str("  { }  ").unwrap();
        assert_eq!(v, Value::Map(vec![]));
    }

    #[test]
    fn reader_writer_paths() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u32, 2, 3]).unwrap();
        let back: Vec<u32> = from_reader(&buf[..]).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn negative_int_boundaries() {
        let v: Value = from_str("-9223372036854775808").unwrap();
        assert_eq!(v, Value::Int(i64::MIN));
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
    }
}
