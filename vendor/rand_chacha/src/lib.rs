//! Offline vendored stand-in for `rand_chacha`: the ChaCha stream
//! cipher family used as counter-based deterministic RNGs.
//!
//! The keystream is bit-compatible with upstream `rand_chacha` (djb
//! variant: 64-bit block counter in state words 12–13, 64-bit stream id
//! in words 14–15, both zero on `from_seed`; output words delivered in
//! block order). The zero-key keystreams are pinned against the ECRYPT
//! test vectors below, so every simulation seeded through
//! `linger_sim_core::RngFactory` reproduces the recorded golden values.

#![warn(missing_docs)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even. Returns the 16 output words
/// (working state + input state).
#[inline]
fn chacha_block(input: &[u32; 16], rounds: u32) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input.iter()) {
        *o = o.wrapping_add(*i);
    }
    x
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:expr) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name {
            /// Input state for the *next* block (counter included).
            state: [u32; 16],
            /// Buffered output of the current block.
            buf: [u32; 16],
            /// Next unread word in `buf`; 16 means "refill needed".
            idx: usize,
        }

        impl $name {
            /// Refill the output buffer from the current counter and
            /// advance the 64-bit counter (words 12–13).
            fn refill(&mut self) {
                self.buf = chacha_block(&self.state, $rounds);
                let (lo, carry) = self.state[12].overflowing_add(1);
                self.state[12] = lo;
                if carry {
                    self.state[13] = self.state[13].wrapping_add(1);
                }
                self.idx = 0;
            }

            /// Select the 64-bit stream id (state words 14–15), matching
            /// upstream `set_stream`. Resets buffered output.
            pub fn set_stream(&mut self, stream: u64) {
                self.state[14] = stream as u32;
                self.state[15] = (stream >> 32) as u32;
                self.idx = 16;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CONSTANTS);
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                // Words 12..16 (counter, stream) start at zero.
                $name { state, buf: [0; 16], idx: 16 }
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }

            fn fill_bytes(&mut self, dst: &mut [u8]) {
                let mut chunks = dst.chunks_exact_mut(4);
                for chunk in &mut chunks {
                    chunk.copy_from_slice(&self.next_u32().to_le_bytes());
                }
                let rem = chunks.into_remainder();
                if !rem.is_empty() {
                    let w = self.next_u32().to_le_bytes();
                    rem.copy_from_slice(&w[..rem.len()]);
                }
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds — the workspace's simulation RNG.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds.
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;

    fn keystream<R: RngCore + SeedableRng<Seed = [u8; 32]>>(n: usize) -> Vec<u8> {
        let mut rng = R::from_seed([0u8; 32]);
        let mut out = vec![0u8; n];
        rng.fill_bytes(&mut out);
        out
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn chacha20_zero_key_matches_published_vector() {
        // ECRYPT/djb ChaCha20, 256-bit zero key, zero IV, block 0.
        let ks = keystream::<ChaCha20Rng>(32);
        assert_eq!(
            hex(&ks),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
        );
    }

    #[test]
    fn chacha8_zero_key_matches_published_vector() {
        // ECRYPT/djb ChaCha8, 256-bit zero key, zero IV, block 0.
        let ks = keystream::<ChaCha8Rng>(32);
        assert_eq!(
            hex(&ks),
            "3e00ef2f895f40d67f5bb8e81f09a5a12c840ec3ce9a7f3b181be188ef711a1e"
        );
    }

    #[test]
    fn counter_carries_across_blocks() {
        let mut a = ChaCha8Rng::from_seed([7u8; 32]);
        let mut b = ChaCha8Rng::from_seed([7u8; 32]);
        // Drain three blocks worth through different call shapes.
        let mut bytes = vec![0u8; 192];
        a.fill_bytes(&mut bytes);
        let mut words = Vec::new();
        for _ in 0..48 {
            words.extend_from_slice(&b.next_u32().to_le_bytes());
        }
        assert_eq!(bytes, words);
    }

    #[test]
    fn streams_differ() {
        let mut a = ChaCha8Rng::from_seed([1u8; 32]);
        let mut b = ChaCha8Rng::from_seed([1u8; 32]);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn seed_from_u64_is_stable() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
