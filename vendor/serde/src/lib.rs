//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate
//! replaces upstream serde with a deliberately small design: types
//! serialize into a self-describing [`Value`] tree and deserialize back
//! out of one. `serde_json` (also vendored) renders and parses that
//! tree. The `#[derive(Serialize, Deserialize)]` macros are provided by
//! the companion `serde_derive` proc-macro crate and follow upstream's
//! data model where it matters to this workspace:
//!
//! * structs → objects with fields in declaration order;
//! * newtype structs → the inner value, transparently;
//! * tuple structs → arrays;
//! * unit enum variants → the variant name as a string;
//! * data-carrying enum variants → externally tagged
//!   `{ "Variant": ... }` objects.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing serialized value (the JSON data model, with
/// integers kept exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved (struct field order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// An error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------ primitives

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) if n <= i64::MAX as u64 => n as i64,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::UInt(n) => Ok(n as f64),
            Value::Int(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN), // serde_json writes non-finite floats as null
            ref other => Err(Error::msg(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Upstream borrows from the input; this value-tree model cannot,
        // so leak instead. Only small label strings in figure records use
        // `&'static str` fields, and they are rarely (if ever) read back.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected single-char string, found {}", other.kind()))),
        }
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {n}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, found {}", other.kind()))),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Seq(items) => Err(Error::msg(format!(
                        "expected array of length {LEN}, found {}",
                        items.len()
                    ))),
                    other => Err(Error::msg(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )+};
}
ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::msg(format!("expected null, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrips_through_null() {
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn negative_ints_and_floats_cross_decode() {
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(7i64.to_value(), Value::UInt(7));
        assert_eq!(f64::from_value(&Value::UInt(4)).unwrap(), 4.0);
        assert_eq!(u32::from_value(&Value::Float(9.0)).unwrap(), 9);
        assert!(u32::from_value(&Value::Float(9.5)).is_err());
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u32, 2.5f64, "x".to_string()).to_value();
        assert_eq!(
            v,
            Value::Seq(vec![
                Value::UInt(1),
                Value::Float(2.5),
                Value::Str("x".into())
            ])
        );
        let back: (u32, f64, String) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1, 2.5, "x".to_string()));
    }

    #[test]
    fn arrays_enforce_length() {
        let v = [1u8, 2, 3].to_value();
        let ok: [u8; 3] = Deserialize::from_value(&v).unwrap();
        assert_eq!(ok, [1, 2, 3]);
        assert!(<[u8; 2] as Deserialize>::from_value(&v).is_err());
    }
}
