//! Offline vendored stand-in for `rand_core` (the API subset this
//! workspace uses).
//!
//! The build environment has no access to crates.io, so the external
//! RNG crates are replaced by small in-repo implementations. Only the
//! surface actually exercised by the simulators is provided: the
//! [`RngCore`] source trait and [`SeedableRng`] construction, including
//! the standard `seed_from_u64` SplitMix64 expansion (bit-compatible
//! with upstream `rand_core`).

#![warn(missing_docs)]

/// A source of random `u32`/`u64` values and byte fills.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        (**self).fill_bytes(dst)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly as
    /// upstream `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dst: &mut [u8]) {
            for b in dst {
                *b = self.next_u64() as u8;
            }
        }
    }
    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_matches_upstream_splitmix() {
        // SplitMix64(0) first output is the well-known constant.
        let c = Counter::seed_from_u64(0);
        assert_eq!(c.0, 0xe220a8397b1dcdaf);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Counter(0);
        let r = &mut c;
        fn take<R: RngCore>(mut r: R) -> u64 {
            r.next_u64()
        }
        assert_eq!(take(&mut *r), 1);
    }
}
