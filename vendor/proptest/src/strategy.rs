//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of `Self::Value` from the test
/// RNG. Unlike upstream there is no value tree / shrinking: a strategy
/// is just a deterministic sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------ integer ranges

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = (rng.next_u64() as u128 % span) as $wide;
                ((self.start as $wide) + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                // Full-width inclusive ranges (span == 2^64) pass the
                // word through unchanged.
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.next_u64() as u128 % span
                };
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

int_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

// -------------------------------------------------------- float ranges

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (rng.unit_f64() as f32) * (hi - lo)
    }
}

// -------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

// ----------------------------------------------------------- any::<T>

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw a value from the whole domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy over a type's whole domain; created by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
