//! Case execution: deterministic per-case RNG and the failure type the
//! `prop_assert*` macros return.

use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Runner configuration (the subset of upstream this workspace sets).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick on small
        // machines while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A failed case, carrying the formatted assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Upstream-compatible alias for [`TestCaseError::fail`].
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias for `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The per-case RNG: a ChaCha8 stream keyed by the test's fully
/// qualified name and the case index, so every run of the suite — any
/// machine, any thread count — generates identical inputs.
#[derive(Clone, Debug)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, then mix in the case index; feeds
        // ChaCha8's 64-bit seed expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng(ChaCha8Rng::seed_from_u64(h))
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw on `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (self.0.next_u64() >> 11) as f64 * SCALE
    }
}

/// Run `f` against `config.cases` deterministic cases; panics (failing
/// the enclosing `#[test]`) on the first case whose body returns `Err`.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        if let Err(e) = f(&mut rng) {
            panic!(
                "proptest: {test_name} failed at case {case}/{} \
                 (deterministic; re-run reproduces it)\n{e}",
                config.cases
            );
        }
    }
}
