//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header), range / tuple / `any` /
//! `prop::collection::vec` strategies, and the `prop_assert*` macros.
//!
//! Differences from upstream, on purpose:
//! * no shrinking — a failing case reports its inputs' RNG seed and
//!   case index instead of a minimized counterexample;
//! * cases are generated from a ChaCha8 stream seeded by the fully
//!   qualified test name and case index, so runs are deterministic
//!   across processes and thread counts;
//! * the default case count is 64 (upstream: 256) to keep the suite
//!   fast on small machines. Tests that need more set
//!   `ProptestConfig::with_cases` explicitly.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_incl - self.lo) as u64 + 1;
            self.lo + (rng.next_u64() % span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_incl: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_incl: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0u64..100, ys in prop::collection::vec(0.0f64..1.0, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                $crate::test_runner::run_cases(config, test_name, |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)*
                    let __proptest_body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __proptest_body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body; failure rejects the
/// case with the condition (or formatted message) instead of panicking
/// immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, with both values in the failure report.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), lhs, rhs
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), lhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), lhs
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in 3u64..10,
            y in 5i32..=7,
            f in 0.25f64..0.5,
            g in -1.0f64..=1.0,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=7).contains(&y));
            prop_assert!((0.25..0.5).contains(&f));
            prop_assert!((-1.0..=1.0).contains(&g));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            pairs in prop::collection::vec((0u64..4, 0usize..3), 2..6),
            flag in any::<bool>(),
        ) {
            prop_assert!(pairs.len() >= 2 && pairs.len() < 6);
            for (a, b) in &pairs {
                prop_assert!(*a < 4 && *b < 3);
            }
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_is_honoured(x in 0u64..1000) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..100, 3..8);
        let a: Vec<Vec<u64>> = (0..4)
            .map(|case| strat.sample(&mut TestRng::for_case("t", case)))
            .collect();
        let b: Vec<Vec<u64>> = (0..4)
            .map(|case| strat.sample(&mut TestRng::for_case("t", case)))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
