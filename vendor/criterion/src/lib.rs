//! Offline vendored stand-in for `criterion`.
//!
//! A functional micro-benchmark harness with the same API shape the
//! workspace's benches use (`criterion_group!` / `criterion_main!`,
//! `bench_function`, `benchmark_group`, `Bencher::iter` /
//! `iter_batched`). Measurement is deliberately simple: a short warmup
//! to size the batch, then a fixed number of timed samples, reporting
//! median / mean / min per benchmark on stdout. No statistical
//! regression machinery, plots, or baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Per-sample batch sizing hint (accepted for API compatibility; all
/// variants measure the routine around a cloned/rebuilt input).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Input is cheap to construct.
    SmallInput,
    /// Input is expensive to construct.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

/// Collected timings for one benchmark.
struct Samples(Vec<Duration>);

impl Samples {
    fn report(&self, name: &str) {
        let mut per_iter: Vec<f64> = self.0.iter().map(|d| d.as_secs_f64()).collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = per_iter.len();
        let median = per_iter[n / 2];
        let mean = per_iter.iter().sum::<f64>() / n as f64;
        let min = per_iter[0];
        println!(
            "bench: {name:<44} median {} | mean {} | min {} ({n} samples)",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(min)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>9.4} s ")
    } else if secs >= 1e-3 {
        format!("{:>9.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>9.4} µs", secs * 1e6)
    } else {
        format!("{:>9.1} ns", secs * 1e9)
    }
}

/// Passed to the closure given to `bench_function`; runs and times the
/// routine.
pub struct Bencher {
    /// Timed samples of one routine invocation, filled by `iter*`.
    samples: Vec<Duration>,
    /// How many invocations each sample aggregates (set during warmup).
    iters_per_sample: u64,
    /// Number of samples to record.
    sample_count: usize,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: 30,
        }
    }

    /// Benchmark `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: find an iteration count that takes ≥ ~5 ms, capped so
        // total time stays bounded for slow routines.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(5) || iters >= 1 << 20 {
                // Slow routines get fewer samples.
                if el >= Duration::from_millis(200) {
                    self.sample_count = 10;
                }
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }

    /// Benchmark `routine` on a fresh input from `setup` each call,
    /// timing only the routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup to size the sample (setup excluded from timing).
        let mut iters = 1u64;
        loop {
            let mut timed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                timed += t.elapsed();
            }
            if timed >= Duration::from_millis(5) || iters >= 1 << 20 {
                if timed >= Duration::from_millis(200) {
                    self.sample_count = 10;
                }
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let mut timed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                timed += t.elapsed();
            }
            self.samples.push(timed / iters as u32);
        }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        Samples(b.samples).report(name);
        self
    }

    /// Open a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        Samples(b.samples).report(&format!("{}/{}", self.name, name));
        self
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. --bench); accept
            // an optional substring filter as the first free argument.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}
