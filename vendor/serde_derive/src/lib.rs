//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, with no `syn`/`quote`
//! dependency: the input token stream is walked by hand and the impl is
//! generated as a string parsed back into a `TokenStream`.
//!
//! Supported shapes (matching upstream serde's data model):
//! * named structs → objects with fields in declaration order;
//! * one-field tuple structs (newtypes) → the inner value;
//! * multi-field tuple structs → arrays;
//! * unit structs → null;
//! * enums: unit variants → the variant name as a string; newtype /
//!   tuple / struct variants → externally tagged `{ "Variant": ... }`.
//!
//! Not supported (and not present in the workspace): generics, `where`
//! clauses, `#[serde(...)]` attributes, untagged/adjacent enum
//! representations.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// --------------------------------------------------------------- model

enum Fields {
    Unit,
    /// Tuple fields; the count.
    Unnamed(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// -------------------------------------------------------------- parsing

/// Skip leading `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility prefix, starting at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a token slice on top-level commas, treating `<...>` generic
/// arguments as nested (groups are already single trees, but angle
/// brackets are plain puncts).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extract field names from the token stream inside a brace-delimited
/// field list.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(group_tokens)
        .iter()
        .filter_map(|field| {
            let i = skip_attrs_and_vis(field, 0);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Count fields in a parenthesized tuple field list.
fn count_unnamed_fields(group_tokens: &[TokenTree]) -> usize {
    split_top_level_commas(group_tokens)
        .iter()
        .filter(|f| {
            let i = skip_attrs_and_vis(f, 0);
            i < f.len()
        })
        .count()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported (type `{name}`)");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                // `struct Foo;`
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                Some(TokenTree::Group(g)) => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    match g.delimiter() {
                        Delimiter::Brace => Fields::Named(parse_named_fields(&inner)),
                        Delimiter::Parenthesis => Fields::Unnamed(count_unnamed_fields(&inner)),
                        d => panic!("serde_derive: unexpected delimiter {d:?} on struct `{name}`"),
                    }
                }
                other => panic!("serde_derive: unexpected token {other:?} in struct `{name}`"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<_>>()
                }
                other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
            };
            let variants = split_top_level_commas(&body)
                .iter()
                .filter_map(|v| {
                    let mut j = skip_attrs_and_vis(v, 0);
                    let vname = match v.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        _ => return None,
                    };
                    j += 1;
                    let fields = match v.get(j) {
                        Some(TokenTree::Group(g)) => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            match g.delimiter() {
                                Delimiter::Brace => Fields::Named(parse_named_fields(&inner)),
                                Delimiter::Parenthesis => {
                                    Fields::Unnamed(count_unnamed_fields(&inner))
                                }
                                _ => Fields::Unit,
                            }
                        }
                        _ => Fields::Unit,
                    };
                    Some(Variant { name: vname, fields })
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

// ------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Unnamed(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Unnamed(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("serde::Value::Map(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Unnamed(1) => format!(
                            "{name}::{vn}(f0) => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Unnamed(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Map(vec![\
                                 (\"{vn}\".to_string(), serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match v {{ serde::Value::Null => Ok({name}), \
                     other => Err(serde::Error::msg(format!(\
                     \"{name}: expected null, found {{}}\", other.kind()))) }}"
                ),
                Fields::Unnamed(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Fields::Unnamed(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                        .collect();
                    format!(
                        "match v {{\n\
                             serde::Value::Seq(items) if items.len() == {n} => \
                                 Ok({name}({})),\n\
                             other => Err(serde::Error::msg(format!(\
                                 \"{name}: expected array of {n} elements, found {{}}\", \
                                 other.kind()))),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names.iter().map(|f| field_init(name, f)).collect();
                    format!(
                        "match v {{\n\
                             serde::Value::Map(_) => Ok({name} {{ {} }}),\n\
                             other => Err(serde::Error::msg(format!(\
                                 \"{name}: expected object, found {{}}\", other.kind()))),\n\
                         }}",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Unnamed(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Unnamed(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match inner {{\n\
                                     serde::Value::Seq(items) if items.len() == {n} => \
                                         Ok({name}::{vn}({})),\n\
                                     other => Err(serde::Error::msg(format!(\
                                         \"{name}::{vn}: expected array of {n} elements, \
                                         found {{}}\", other.kind()))),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| field_init_from(&format!("{name}::{vn}"), "inner", f))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match inner {{\n\
                                     serde::Value::Map(_) => Ok({name}::{vn} {{ {} }}),\n\
                                     other => Err(serde::Error::msg(format!(\
                                         \"{name}::{vn}: expected object, found {{}}\", \
                                         other.kind()))),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit}\n\
                                 other => Err(serde::Error::msg(format!(\
                                     \"{name}: unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {data}\n\
                                     other => Err(serde::Error::msg(format!(\
                                         \"{name}: unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(serde::Error::msg(format!(\
                                 \"{name}: expected string or single-key object, found {{}}\", \
                                 other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n")
            )
        }
    }
}

/// `field: Deserialize::from_value(v.get("field").ok_or(...)?)?` for a
/// top-level struct (`v` is the value in scope).
fn field_init(ty: &str, field: &str) -> String {
    field_init_from(ty, "v", field)
}

fn field_init_from(ty: &str, source: &str, field: &str) -> String {
    format!(
        "{field}: serde::Deserialize::from_value({source}.get(\"{field}\")\
         .ok_or_else(|| serde::Error::msg(\"{ty}: missing field `{field}`\"))?)?"
    )
}
