//! Property tests of the parallel-job simulator.

use linger_parallel::{run_bsp, BspConfig, CommPattern};
use linger_sim_core::SimDuration;
use proptest::prelude::*;

fn cfg(procs: usize, grain_ms: u64, phases: usize, pattern: CommPattern) -> BspConfig {
    BspConfig {
        processes: procs,
        compute_per_phase: SimDuration::from_millis(grain_ms),
        phases,
        pattern,
        round_latency: SimDuration::from_millis(1),
        per_message_cpu: SimDuration::from_micros(200),
        context_switch: SimDuration::from_micros(100),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn completion_bounded_below_by_dedicated_work(
        procs_log in 1u32..=4,       // 2..16 processes
        grain_ms in 10u64..=500,
        phases in 2usize..=30,
        busy in 0usize..=16,
        util in 0.0f64..=0.9,
        seed in 0u64..200,
    ) {
        let procs = 1usize << procs_log;
        let pattern = CommPattern::News;
        let c = cfg(procs, grain_ms, phases, pattern);
        let mut utils = vec![0.0; procs];
        for u in utils.iter_mut().take(busy.min(procs)) {
            *u = util;
        }
        let r = run_bsp(&c, &utils, seed, 1);
        // Never faster than the pure compute demand.
        let floor = SimDuration::from_millis(grain_ms * phases as u64);
        prop_assert!(r.completion >= floor, "{} < {}", r.completion, floor);
        prop_assert!((0.0..=1.0).contains(&r.barrier_wait_fraction));
    }

    #[test]
    fn adding_load_never_speeds_the_job_up(
        grain_ms in 20u64..=300,
        seed in 0u64..100,
    ) {
        let c = cfg(8, grain_ms, 12, CommPattern::News);
        let idle = run_bsp(&c, &[0.0; 8], seed, 1).completion;
        let mut utils = [0.0; 8];
        utils[0] = 0.4;
        let loaded = run_bsp(&c, &utils, seed, 1).completion;
        prop_assert!(loaded >= idle, "loaded {loaded} < idle {idle}");
    }

    #[test]
    fn butterfly_requires_and_respects_power_of_two(
        procs_log in 0u32..=5,
        seed in 0u64..50,
    ) {
        let procs = 1usize << procs_log;
        let c = cfg(procs, 50, 4, CommPattern::Butterfly);
        let r = run_bsp(&c, &vec![0.0; procs], seed, 1);
        // log2(procs) dependency rounds of latency each phase.
        let min_comm = if procs > 1 {
            SimDuration::from_millis(procs_log as u64 * 4)
        } else {
            SimDuration::ZERO
        };
        prop_assert!(r.completion >= SimDuration::from_millis(200) + min_comm);
    }

    #[test]
    fn runs_are_deterministic(
        busy in 0usize..=8,
        util in 0.05f64..=0.8,
        seed in 0u64..100,
    ) {
        let c = cfg(8, 100, 10, CommPattern::News);
        let mut utils = [0.0; 8];
        for u in utils.iter_mut().take(busy) {
            *u = util;
        }
        let a = run_bsp(&c, &utils, seed, 3).completion;
        let b = run_bsp(&c, &utils, seed, 3).completion;
        prop_assert_eq!(a, b);
    }
}
