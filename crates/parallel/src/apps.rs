//! Application models: `sor`, `water`, `fft` (paper Sec 5.2).
//!
//! The paper ran three real shared-memory programs through the CVM
//! simulator with ATOM-derived traces. Neither tool is available, so each
//! application is modeled by its phase structure — per-iteration compute
//! grain plus communication pattern — chosen to preserve the property the
//! paper's results hinge on: the compute-to-communication ratio.
//! "water and fft have much more communication than sor and the time
//! spent waiting on communication won't be affected as much by local CPU
//! activity", making `sor` the most load-sensitive and `fft` the least
//! (DESIGN.md, substitution 3).

use crate::bsp::{run_bsp, BspConfig};
use crate::comm::CommPattern;
use crate::reconfig::largest_pow2_at_most;
use linger_sim_core::{par_map_indexed, SimDuration};
use serde::{Deserialize, Serialize};

/// Which application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum App {
    /// Red/black successive over-relaxation (Jacobi-style stencil):
    /// compute-dominated NEWS ghost-cell exchange.
    Sor,
    /// Molecular dynamics (SPLASH-2): all-neighbor force exchange, a
    /// moderate communication share.
    Water,
    /// Fast Fourier transform: butterfly all-to-all, the highest
    /// communication share.
    Fft,
}

impl App {
    /// All three, in the paper's order.
    pub const ALL: [App; 3] = [App::Sor, App::Water, App::Fft];

    /// Lower-case name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            App::Sor => "sor",
            App::Water => "water",
            App::Fft => "fft",
        }
    }

    /// Phase model for a run on `procs` processes of a problem sized for
    /// `cluster` nodes (per-process compute scales with `cluster/procs`).
    ///
    /// Message costs set the dedicated-cluster communication fractions at
    /// roughly 4% (sor), 15% (water) and 30% (fft) for 8 processes.
    pub fn config(self, procs: usize, cluster: usize) -> BspConfig {
        let scale = cluster as f64 / procs as f64;
        // Communication cost is dominated by wire/protocol latency, which
        // local CPU load does not slow — that is exactly why the paper
        // finds the communication-heavy applications less sensitive to
        // lingering. Handler CPU per message is small.
        // All three apps iterate at the same compute grain (problem sizes
        // in the paper's runs were chosen per-app; what distinguishes the
        // apps for scheduling purposes is the communication share).
        let (compute_ms, pattern, msg_cpu_us, latency_ms) = match self {
            App::Sor => (450.0, CommPattern::News, 200.0, 16.0),
            App::Water => (450.0, CommPattern::AllToAll, 500.0, 75.0),
            App::Fft => (450.0, CommPattern::Butterfly, 500.0, 63.0),
        };
        BspConfig {
            processes: procs,
            compute_per_phase: SimDuration::from_secs_f64(compute_ms * 1e-3 * scale),
            phases: 30,
            pattern,
            round_latency: SimDuration::from_secs_f64(latency_ms * 1e-3),
            per_message_cpu: SimDuration::from_secs_f64(msg_cpu_us * 1e-6),
            context_switch: SimDuration::from_micros(100),
        }
    }

    /// Fraction of a dedicated-cluster iteration spent communicating.
    pub fn comm_fraction(self, procs: usize) -> f64 {
        let cfg = self.config(procs, procs);
        let msgs = cfg.pattern.messages_per_phase(procs) as f64;
        let rounds = cfg.pattern.rounds(procs) as f64;
        let comm =
            cfg.per_message_cpu.as_secs_f64() * msgs + cfg.round_latency.as_secs_f64() * rounds;
        comm / (comm + cfg.compute_per_phase.as_secs_f64())
    }
}

/// One point of the Fig 12 grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Point {
    /// Application.
    pub app: &'static str,
    /// Number of non-idle nodes (0–8).
    pub non_idle: usize,
    /// Local utilization of the non-idle nodes (0.1–0.4).
    pub local_util: f64,
    /// Slowdown vs. 8 idle nodes.
    pub slowdown: f64,
}

/// Fig 12: slowdown of each application on an 8-node cluster as the
/// number of non-idle nodes (0–8) and their local utilization (10–40%)
/// vary, under lingering.
pub fn fig12(seed: u64) -> Vec<Fig12Point> {
    const UTILS: [f64; 4] = [0.1, 0.2, 0.3, 0.4];
    const NON_IDLE: usize = 9; // 0..=8
    // Per-app dedicated-cluster baselines, then the 3×4×9 grid; every
    // point is an independent run, flattened in (app, util, non_idle)
    // order so the output matches the serial loop nest exactly.
    let ideals = par_map_indexed(App::ALL.len(), None, |a| {
        let cfg = App::ALL[a].config(8, 8);
        run_bsp(&cfg, &[0.0; 8], seed, 0).completion.as_secs_f64()
    });
    par_map_indexed(App::ALL.len() * UTILS.len() * NON_IDLE, None, |idx| {
        let app = App::ALL[idx / (UTILS.len() * NON_IDLE)];
        let lusg = UTILS[(idx / NON_IDLE) % UTILS.len()];
        let non_idle = idx % NON_IDLE;
        let cfg = app.config(8, 8);
        let mut utils = vec![0.0; 8];
        for u in utils.iter_mut().take(non_idle) {
            *u = lusg;
        }
        let t = run_bsp(&cfg, &utils, seed, (non_idle as u64) << 8 | (lusg * 100.0) as u64)
            .completion
            .as_secs_f64();
        Fig12Point {
            app: app.name(),
            non_idle,
            local_util: lusg,
            slowdown: t / ideals[idx / (UTILS.len() * NON_IDLE)],
        }
    })
}

/// One point of the Fig 13 plot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13Point {
    /// Application.
    pub app: &'static str,
    /// Idle nodes available (16 → 0).
    pub idle: usize,
    /// Strategy label ("reconfiguration", "16 node linger", "8 node linger").
    pub strategy: &'static str,
    /// Slowdown vs. the app on 16 idle nodes.
    pub slowdown: f64,
}

/// Fig 13: lingering (16 or 8 processes) vs. power-of-two
/// reconfiguration on a 16-node cluster with 20% local utilization on
/// non-idle nodes, for each application.
pub fn fig13(seed: u64) -> Vec<Fig13Point> {
    const CLUSTER: usize = 16;
    const STRATEGIES: usize = 3; // reconfiguration, 16-node linger, 8-node linger
    const IDLES: usize = CLUSTER + 1; // 16 down to 0
    let ideals = par_map_indexed(App::ALL.len(), None, |a| {
        let cfg = App::ALL[a].config(CLUSTER, CLUSTER);
        run_bsp(&cfg, &[0.0; CLUSTER], seed, 0).completion.as_secs_f64()
    });
    // Flattened in (app, idle descending, strategy) order, matching the
    // serial loop nest; every point is an independent run.
    par_map_indexed(App::ALL.len() * IDLES * STRATEGIES, None, |idx| {
        let app = App::ALL[idx / (IDLES * STRATEGIES)];
        let ideal = ideals[idx / (IDLES * STRATEGIES)];
        let idle = CLUSTER - (idx / STRATEGIES) % IDLES;
        match idx % STRATEGIES {
            0 => {
                // Reconfiguration: largest power of two ≤ idle (1 busy
                // node when none are idle).
                let (procs, busy) = if idle == 0 {
                    (1usize, 1usize)
                } else {
                    (largest_pow2_at_most(idle), 0)
                };
                let t_rc = timed(app, procs, busy, CLUSTER, seed, idle as u64);
                Fig13Point {
                    app: app.name(),
                    idle,
                    strategy: "reconfiguration",
                    slowdown: t_rc / ideal,
                }
            }
            s => {
                // Linger with 16 (s == 1) or 8 (s == 2) processes.
                let k = if s == 1 { 16usize } else { 8 };
                let busy = k.saturating_sub(idle);
                let t = timed(app, k, busy, CLUSTER, seed, (k as u64) << 16 | idle as u64);
                let strategy = if k == 16 { "16 node linger" } else { "8 node linger" };
                Fig13Point { app: app.name(), idle, strategy, slowdown: t / ideal }
            }
        }
    })
}

fn timed(app: App, procs: usize, busy: usize, cluster: usize, seed: u64, salt: u64) -> f64 {
    let cfg = app.config(procs, cluster);
    let mut utils = vec![0.0; procs];
    for u in utils.iter_mut().take(busy.min(procs)) {
        *u = 0.2;
    }
    run_bsp(&cfg, &utils, seed, salt).completion.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_fractions_are_ordered() {
        // sor compute-dominated, fft communication-heavy.
        let sor = App::Sor.comm_fraction(8);
        let water = App::Water.comm_fraction(8);
        let fft = App::Fft.comm_fraction(8);
        assert!(sor < water && water < fft, "{sor} {water} {fft}");
        assert!(sor < 0.10, "sor {sor}");
        assert!(fft > 0.20, "fft {fft}");
    }

    #[test]
    fn sensitivity_ordering_matches_paper() {
        // "Sor is the most sensitive to local utilization and the number
        // of non-idle nodes. Water is less sensitive … and fft is the
        // least."
        let pts = fig12(5);
        let pick = |app: &str| {
            pts.iter()
                .find(|p| p.app == app && p.non_idle == 8 && (p.local_util - 0.4).abs() < 1e-9)
                .unwrap()
                .slowdown
        };
        let (sor, water, fft) = (pick("sor"), pick("water"), pick("fft"));
        assert!(sor > water && water > fft, "sor {sor} water {water} fft {fft}");
    }

    #[test]
    fn single_non_idle_node_modest_slowdown() {
        // "when only one non-idle node is involved even with 40% local
        // utilization the slowdown … reaches only 1.7."
        let pts = fig12(5);
        for app in ["sor", "water", "fft"] {
            let s = pts
                .iter()
                .find(|p| p.app == app && p.non_idle == 1 && (p.local_util - 0.4).abs() < 1e-9)
                .unwrap()
                .slowdown;
            assert!((1.1..2.2).contains(&s), "{app}: {s}");
        }
    }

    #[test]
    fn all_nodes_non_idle_roughly_doubles() {
        // "Even when all 8 nodes are non-idle, the job is slowed down by
        // just above a factor of 2" (at 20%).
        let pts = fig12(5);
        for app in ["sor", "water", "fft"] {
            let s = pts
                .iter()
                .find(|p| p.app == app && p.non_idle == 8 && (p.local_util - 0.2).abs() < 1e-9)
                .unwrap()
                .slowdown;
            assert!((1.3..2.8).contains(&s), "{app}: {s}");
        }
    }

    #[test]
    fn slowdown_monotone_in_load_and_nodes() {
        let pts = fig12(6);
        let get = |app: &str, k: usize, u: f64| {
            pts.iter()
                .find(|p| p.app == app && p.non_idle == k && (p.local_util - u).abs() < 1e-9)
                .unwrap()
                .slowdown
        };
        for app in ["sor", "water", "fft"] {
            assert!(get(app, 8, 0.4) > get(app, 8, 0.1), "{app} load monotone");
            assert!(get(app, 8, 0.2) > get(app, 1, 0.2) - 0.05, "{app} node monotone");
            assert!((get(app, 0, 0.2) - 1.0).abs() < 0.02, "{app} zero non-idle");
        }
    }

    #[test]
    fn fig13_linger16_wins_with_many_idle_nodes() {
        // "For all cases, the Linger-Longer policy using 16 nodes
        // outperforms the reconfiguration when the number of idle nodes
        // is at least 12."
        let pts = fig13(7);
        for app in ["sor", "water", "fft"] {
            for idle in [15usize, 13, 12] {
                let ll = pts
                    .iter()
                    .find(|p| p.app == app && p.idle == idle && p.strategy == "16 node linger")
                    .unwrap()
                    .slowdown;
                let rc = pts
                    .iter()
                    .find(|p| p.app == app && p.idle == idle && p.strategy == "reconfiguration")
                    .unwrap()
                    .slowdown;
                assert!(ll < rc, "{app} idle={idle}: LL16 {ll} vs reconfig {rc}");
            }
        }
    }

    #[test]
    fn fig13_linger8_beats_reconfiguration_when_few_idle() {
        // Paper: "when less than 8 idle nodes are left, lingering with 8
        // nodes looks much better than … the reconfiguration policy."
        //
        // Noted divergence (see EXPERIMENTS.md): the paper also ranks
        // LL-8 above LL-16 in that regime. Under a barrier-max model
        // calibrated to the paper's own Fig 12 magnitudes (slowdown ≈ 2
        // with every node at 20%), halving the process count costs a
        // factor of two that lingering on extra busy nodes never does, so
        // LL-16 stays ahead here; we reproduce the reconfiguration
        // comparisons and record the LL-8/LL-16 ordering as divergent.
        let pts = fig13(7);
        for app in ["sor", "water", "fft"] {
            for idle in [7usize, 5, 3, 1] {
                let ll8 = pts
                    .iter()
                    .find(|p| p.app == app && p.idle == idle && p.strategy == "8 node linger")
                    .unwrap()
                    .slowdown;
                let rc = pts
                    .iter()
                    .find(|p| p.app == app && p.idle == idle && p.strategy == "reconfiguration")
                    .unwrap()
                    .slowdown;
                assert!(ll8 < rc, "{app} idle={idle}: LL8 {ll8} vs reconfig {rc}");
            }
        }
    }
}

