//! End-to-end cluster throughput for parallel jobs — the evaluation the
//! paper's conclusion lists as ongoing work: "The throughput improvement
//! that would be possible by making more nodes available to run parallel
//! jobs would likely offset some of this slowdown. An end-to-end
//! evaluation of cluster throughput for parallel jobs is currently being
//! investigated."
//!
//! A stream of fixed-width BSP jobs arrives at a cluster whose nodes'
//! idleness evolves with the coarse traces. Two admission/placement
//! policies are compared:
//!
//! * **RigidIdle** (the NOW-style social contract): a job may only occupy
//!   recruited idle nodes. When a member node turns non-idle, the process
//!   migrates to a spare idle node if one exists, otherwise the whole job
//!   stalls until one appears.
//! * **Linger**: a job claims any nodes (idle preferred) and its
//!   processes linger through non-idle episodes at the fine-grain
//!   stealing rate.
//!
//! Progress uses the fluid-phase approximation: within a 2-second window
//! a job completes phases at the rate implied by the slowest member's
//! stealing rate, including the extreme-value barrier amplification from
//! [`crate::hybrid::predict_completion`]'s estimator.

use linger_node::steal_rate;
use linger_sim_core::{NodeIndex, RngFactory, SimDuration, SimTime};
use linger_telemetry::{DecisionAction, Event, EventKind, Recorder};
use linger_workload::{BurstParamTable, CoarseTraceConfig, TraceLibrary, SAMPLE_PERIOD_SECS};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Placement/admission policy for parallel jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParallelPolicy {
    /// Jobs run on recruited idle nodes only.
    RigidIdle,
    /// Jobs linger through non-idle episodes.
    Linger,
}

/// Workload and cluster shape for the throughput experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelClusterConfig {
    /// Number of workstations.
    pub nodes: usize,
    /// Processes per job (fixed width).
    pub width: usize,
    /// Per-process compute per phase.
    pub grain: SimDuration,
    /// Phases per job.
    pub phases: u32,
    /// Per-phase communication wall time (latency + handlers).
    pub comm: SimDuration,
    /// Mean inter-arrival time of jobs (exponential).
    pub interarrival_mean: SimDuration,
    /// Simulated horizon.
    pub horizon: SimTime,
    /// Coarse-trace generator for the nodes.
    pub trace: CoarseTraceConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for ParallelClusterConfig {
    fn default() -> Self {
        ParallelClusterConfig {
            nodes: 32,
            width: 8,
            grain: SimDuration::from_millis(500),
            phases: 240,
            comm: SimDuration::from_millis(6),
            interarrival_mean: SimDuration::from_secs(90),
            horizon: SimTime::from_secs(4 * 3600),
            trace: CoarseTraceConfig {
                duration: SimDuration::from_secs(4 * 3600),
                ..Default::default()
            },
            seed: 0,
        }
    }
}

/// Outcome of one throughput run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelClusterReport {
    /// Jobs completed within the horizon.
    pub completed: u32,
    /// Jobs still queued or running at the horizon.
    pub backlog: u32,
    /// Completed jobs per hour.
    pub jobs_per_hour: f64,
    /// Mean response time (arrival → completion) of completed jobs, s.
    pub mean_response_secs: f64,
    /// Mean per-job slowdown versus a dedicated run.
    pub mean_slowdown: f64,
    /// Fraction of job-windows in which a RigidIdle job was stalled.
    pub stall_fraction: f64,
}

struct RunningJob {
    id: u32,
    arrived: SimTime,
    placed: SimTime,
    members: Vec<usize>,
    phases_left: f64,
    stalled_windows: u64,
    total_windows: u64,
    migrations: u32,
}

/// Run the experiment for one policy.
///
/// Telemetry is controlled by `LINGER_TELEMETRY` (see
/// [`Recorder::from_env`]); use [`simulate_parallel_cluster_with_recorder`]
/// to pass an explicit recorder instead.
pub fn simulate_parallel_cluster(
    cfg: &ParallelClusterConfig,
    policy: ParallelPolicy,
) -> ParallelClusterReport {
    simulate_parallel_cluster_with_recorder(cfg, policy, &Recorder::from_env())
}

/// [`simulate_parallel_cluster`] with an explicit telemetry [`Recorder`].
///
/// Records queue entries, placements, RigidIdle stalls, member
/// migrations, and completions. The recorder draws no random numbers and
/// reads no simulation state after the fact, so the report is identical
/// with telemetry on or off.
pub fn simulate_parallel_cluster_with_recorder(
    cfg: &ParallelClusterConfig,
    policy: ParallelPolicy,
    recorder: &Recorder,
) -> ParallelClusterReport {
    let factory = RngFactory::new(cfg.seed);
    let table = BurstParamTable::paper_calibrated();
    let cs = SimDuration::from_micros(100);
    // Traces, offsets, and the window-major table come from the shared
    // realization cache — the same streams this code used to draw by
    // hand, so the sweep's repeated calls reuse one synthesis.
    let real = TraceLibrary::global().realize(&cfg.trace, cfg.seed, cfg.nodes);

    // Pre-draw the arrival sequence.
    let mut arr_rng = factory.stream_for(linger_sim_core::domains::JOBS, 0);
    let arrivals: Vec<SimTime> = {
        use rand::Rng;
        let mut t = 0.0f64;
        let mut out = Vec::new();
        loop {
            let u: f64 = arr_rng.random();
            t += -(1.0 - u).ln() * cfg.interarrival_mean.as_secs_f64();
            if t >= cfg.horizon.as_secs_f64() {
                break;
            }
            out.push(SimTime::from_secs_f64(t));
        }
        out
    };

    let window = SimDuration::from_secs(SAMPLE_PERIOD_SECS);
    let n_windows = (cfg.horizon.as_nanos() / window.as_nanos()) as usize;
    let dedicated_phase = cfg.grain + cfg.comm;
    let dedicated_secs = dedicated_phase.as_secs_f64() * cfg.phases as f64;

    let mut queue: VecDeque<(u32, SimTime)> = VecDeque::new();
    let mut next_job_id = 0u32;
    let mut next_arrival = 0usize;
    let mut running: Vec<RunningJob> = Vec::new();
    // Unclaimed nodes and this window's idle set, as incremental indices:
    // ascending iteration matches the old `(0..nodes).filter(...)` scans,
    // so every placement decision below is unchanged.
    let mut free = NodeIndex::full(cfg.nodes);
    let mut idle = NodeIndex::new(cfg.nodes);
    // Per-window scratch, hoisted out of the loop.
    let mut cpu_w = vec![0.0f64; cfg.nodes];
    let mut members_scratch: Vec<usize> = Vec::with_capacity(cfg.nodes);
    let mut busy_scratch: Vec<usize> = Vec::with_capacity(cfg.width);
    let mut finished: Vec<usize> = Vec::new();
    let mut completed = 0u32;
    let mut response_sum = 0.0f64;
    let mut slowdown_sum = 0.0f64;
    let mut stalled_windows = 0u64;
    let mut job_windows = 0u64;

    for w in 0..n_windows {
        let now = SimTime::ZERO + window.mul_f64(w as f64);
        // Admit arrivals.
        while next_arrival < arrivals.len() && arrivals[next_arrival] <= now {
            let id = next_job_id;
            next_job_id += 1;
            queue.push_back((id, arrivals[next_arrival]));
            recorder.record(|| {
                Event::new(w as u32, now.as_nanos(), EventKind::QueueEnter).for_job(id)
            });
            next_arrival += 1;
        }

        // One window-table row (or trace lookup) per node per window.
        idle.clear();
        if let Some(tbl) = real.window_table() {
            cpu_w.copy_from_slice(tbl.cpu_row(w));
            let idle_row = tbl.idle_row(w);
            for n in 0..cfg.nodes {
                if idle_row[n / 64] & (1u64 << (n % 64)) != 0 {
                    idle.insert(n);
                }
            }
        } else {
            let (traces, offsets) = (real.traces(), real.offsets());
            for n in 0..cfg.nodes {
                if traces[n].is_idle(offsets[n] + w) {
                    idle.insert(n);
                }
                cpu_w[n] = traces[n].sample(offsets[n] + w).cpu;
            }
        }

        // Placement.
        while let Some(&(id, arrived)) = queue.front() {
            members_scratch.clear();
            let placeable = match policy {
                ParallelPolicy::RigidIdle => {
                    members_scratch.extend(free.iter_and(&idle).take(cfg.width));
                    members_scratch.len() == cfg.width
                }
                ParallelPolicy::Linger => {
                    // Idle nodes first, then least-loaded non-idle ones.
                    members_scratch.extend(free.iter());
                    // The comparator is a total order (id tiebreak), so the
                    // unstable sort is deterministic and identical to the
                    // stable sort the scan-based code used.
                    members_scratch.sort_unstable_by(|&a, &b| {
                        idle.contains(b)
                            .cmp(&idle.contains(a))
                            .then(cpu_w[a].partial_cmp(&cpu_w[b]).expect("finite"))
                            .then(a.cmp(&b))
                    });
                    members_scratch.len() >= cfg.width
                }
            };
            if !placeable {
                break;
            }
            queue.pop_front();
            let members = members_scratch[..cfg.width].to_vec();
            for &m in &members {
                free.remove(m);
            }
            recorder.record(|| {
                let lead = members[0];
                Event::new(
                    w as u32,
                    now.as_nanos(),
                    EventKind::Decision {
                        action: DecisionAction::Place,
                        host_cpu: Some(cpu_w[lead]),
                        dest_cpu: None,
                        age_secs: None,
                        migration_secs: None,
                        dest: Some(lead as u32),
                    },
                )
                .on_node(lead as u32)
                .for_job(id)
            });
            running.push(RunningJob {
                id,
                arrived,
                placed: now,
                members,
                phases_left: cfg.phases as f64,
                stalled_windows: 0,
                total_windows: 0,
                migrations: 0,
            });
        }

        // Progress.
        finished.clear();
        for (ji, job) in running.iter_mut().enumerate() {
            job.total_windows += 1;
            job_windows += 1;
            // RigidIdle: replace members on nodes that turned non-idle.
            if policy == ParallelPolicy::RigidIdle {
                busy_scratch.clear();
                busy_scratch.extend(job.members.iter().copied().filter(|&m| !idle.contains(m)));
                // Migrate to unclaimed idle nodes where possible. The old
                // code snapshotted the ascending free-idle list and popped
                // from its back; `last_and` returns the same node, and a
                // vacated member is non-idle so it can never re-qualify.
                for &b in &busy_scratch {
                    if let Some(spare) = free.last_and(&idle) {
                        let slot = job.members.iter().position(|&m| m == b).expect("member");
                        free.insert(b);
                        free.remove(spare);
                        job.members[slot] = spare;
                        job.migrations += 1;
                        recorder.record(|| {
                            Event::new(
                                w as u32,
                                now.as_nanos(),
                                EventKind::MigrationStart { dest: spare as u32, attempt: 1 },
                            )
                            .on_node(b as u32)
                            .for_job(job.id)
                        });
                    } else {
                        break;
                    }
                }
                if let Some(&busy) = job.members.iter().find(|&&m| !idle.contains(m)) {
                    // Still holding a non-idle node with no spare: stall.
                    job.stalled_windows += 1;
                    stalled_windows += 1;
                    recorder.record(|| {
                        Event::new(
                            w as u32,
                            now.as_nanos(),
                            EventKind::Decision {
                                action: DecisionAction::Stall,
                                host_cpu: Some(cpu_w[busy]),
                                dest_cpu: None,
                                age_secs: None,
                                migration_secs: None,
                                dest: None,
                            },
                        )
                        .on_node(busy as u32)
                        .for_job(job.id)
                    });
                    continue;
                }
            }
            // Fluid phase rate for this window.
            let mut worst_wall = cfg.grain.as_secs_f64();
            let mut lingering = 0usize;
            for &m in &job.members {
                let u = cpu_w[m];
                let rate = steal_rate(&table, u, cs).max(1e-6);
                let wall = cfg.grain.as_secs_f64() / rate;
                if !idle.contains(m) {
                    lingering += 1;
                }
                worst_wall = worst_wall.max(wall);
            }
            if lingering > 0 {
                // Extreme-value barrier amplification (same estimator as
                // the hybrid predictor).
                let u_typ: f64 = job
                    .members
                    .iter()
                    .map(|&m| cpu_w[m])
                    .fold(0.0f64, f64::max);
                let p = table.interpolate(u_typ);
                if p.run_mean > 0.0 {
                    let n_bursts = worst_wall * u_typ / p.run_mean;
                    let sigma = (n_bursts.max(0.0) * p.run_var).sqrt();
                    worst_wall += sigma * (2.0 * (1.0 + lingering as f64).ln()).sqrt();
                }
            }
            let phase_time = worst_wall + cfg.comm.as_secs_f64();
            job.phases_left -= window.as_secs_f64() / phase_time;
            if job.phases_left <= 0.0 {
                finished.push(ji);
            }
        }
        // Completions (iterate in reverse so swap_remove indices stay valid).
        for &ji in finished.iter().rev() {
            let job = running.swap_remove(ji);
            for &m in &job.members {
                free.insert(m);
            }
            completed += 1;
            let response = (now + window).saturating_since(job.arrived).as_secs_f64();
            response_sum += response;
            let exec_secs = job.total_windows as f64 * window.as_secs_f64();
            slowdown_sum += exec_secs / dedicated_secs;
            recorder.record(|| {
                let stalled = job.stalled_windows as f64 * window.as_secs_f64();
                Event::new(
                    w as u32,
                    (now + window).as_nanos(),
                    EventKind::Complete {
                        queued_secs: job.placed.saturating_since(job.arrived).as_secs_f64(),
                        running_secs: exec_secs - stalled,
                        lingering_secs: 0.0,
                        paused_secs: stalled,
                        migrating_secs: 0.0,
                        completion_secs: response,
                        migrations: job.migrations,
                    },
                )
                .on_node(job.members[0] as u32)
                .for_job(job.id)
            });
        }
    }

    let backlog = (queue.len() + running.len()) as u32;
    ParallelClusterReport {
        completed,
        backlog,
        jobs_per_hour: completed as f64 / (cfg.horizon.as_secs_f64() / 3600.0),
        mean_response_secs: if completed > 0 { response_sum / completed as f64 } else { 0.0 },
        mean_slowdown: if completed > 0 { slowdown_sum / completed as f64 } else { 0.0 },
        stall_fraction: if job_windows > 0 {
            stalled_windows as f64 / job_windows as f64
        } else {
            0.0
        },
    }
}

/// One comparison row: the same arrival stream under both policies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputComparison {
    /// Mean inter-arrival time used, s.
    pub interarrival_secs: f64,
    /// The RigidIdle report.
    pub rigid: ParallelClusterReport,
    /// The Linger report.
    pub linger: ParallelClusterReport,
}

/// Sweep offered load (via inter-arrival time) and compare the two
/// policies end-to-end — the extension experiment.
pub fn throughput_sweep(base: &ParallelClusterConfig, interarrivals_s: &[u64]) -> Vec<ThroughputComparison> {
    interarrivals_s
        .iter()
        .map(|&ia| {
            let cfg = ParallelClusterConfig {
                interarrival_mean: SimDuration::from_secs(ia),
                ..base.clone()
            };
            ThroughputComparison {
                interarrival_secs: ia as f64,
                rigid: simulate_parallel_cluster(&cfg, ParallelPolicy::RigidIdle),
                linger: simulate_parallel_cluster(&cfg, ParallelPolicy::Linger),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ParallelClusterConfig {
        ParallelClusterConfig {
            nodes: 16,
            width: 4,
            phases: 120,
            interarrival_mean: SimDuration::from_secs(120),
            horizon: SimTime::from_secs(2 * 3600),
            trace: CoarseTraceConfig {
                duration: SimDuration::from_secs(2 * 3600),
                ..Default::default()
            },
            seed: 17,
            ..Default::default()
        }
    }

    #[test]
    fn both_policies_complete_jobs() {
        for policy in [ParallelPolicy::RigidIdle, ParallelPolicy::Linger] {
            let r = simulate_parallel_cluster(&cfg(), policy);
            assert!(r.completed > 5, "{policy:?}: only {} completed", r.completed);
            assert!(r.mean_slowdown >= 1.0, "{policy:?}: slowdown {}", r.mean_slowdown);
        }
    }

    #[test]
    fn lingering_improves_throughput_under_load() {
        // The extension's headline: with the cluster half non-idle,
        // lingering admits jobs the rigid policy must queue.
        // Offered concurrency ≈ 2.7 dedicated jobs; the rigid policy has
        // ~2 idle-node slots (55% of 16 nodes / width 4) while lingering
        // has all 4 — the cluster saturates only the former.
        let mut c = cfg();
        c.phases = 160;
        c.interarrival_mean = SimDuration::from_secs(30);
        let rigid = simulate_parallel_cluster(&c, ParallelPolicy::RigidIdle);
        let linger = simulate_parallel_cluster(&c, ParallelPolicy::Linger);
        assert!(
            linger.completed as f64 >= 1.15 * rigid.completed as f64,
            "linger {} vs rigid {}",
            linger.completed,
            rigid.completed
        );
        assert!(linger.mean_response_secs < rigid.mean_response_secs);
    }

    #[test]
    fn lingering_pays_per_job_slowdown() {
        // Throughput comes at the cost of per-job execution speed — the
        // paper's predicted trade-off.
        let mut c = cfg();
        c.phases = 160;
        c.interarrival_mean = SimDuration::from_secs(30);
        let rigid = simulate_parallel_cluster(&c, ParallelPolicy::RigidIdle);
        let linger = simulate_parallel_cluster(&c, ParallelPolicy::Linger);
        // A rigid job runs on idle nodes only (slowdown from stalls);
        // lingering jobs run slower but start sooner. Both ≥ 1.
        assert!(rigid.mean_slowdown >= 1.0);
        assert!(linger.mean_slowdown >= 1.0);
    }

    #[test]
    fn rigid_jobs_stall_linger_jobs_do_not() {
        let r = simulate_parallel_cluster(&cfg(), ParallelPolicy::RigidIdle);
        let l = simulate_parallel_cluster(&cfg(), ParallelPolicy::Linger);
        assert_eq!(l.stall_fraction, 0.0);
        assert!(r.stall_fraction >= 0.0); // may be zero on a quiet trace
    }

    #[test]
    fn light_load_policies_converge() {
        let mut c = cfg();
        c.interarrival_mean = SimDuration::from_secs(600);
        let rigid = simulate_parallel_cluster(&c, ParallelPolicy::RigidIdle);
        let linger = simulate_parallel_cluster(&c, ParallelPolicy::Linger);
        let diff = (linger.completed as f64 - rigid.completed as f64).abs();
        assert!(
            diff <= 0.3 * rigid.completed as f64 + 2.0,
            "light load should converge: {} vs {}",
            linger.completed,
            rigid.completed
        );
    }

    #[test]
    fn sweep_produces_rows_and_is_deterministic() {
        let rows = throughput_sweep(&cfg(), &[120, 300]);
        assert_eq!(rows.len(), 2);
        let again = throughput_sweep(&cfg(), &[120, 300]);
        assert_eq!(rows[0].linger.completed, again[0].linger.completed);
        assert_eq!(rows[1].rigid.completed, again[1].rigid.completed);
    }
}
