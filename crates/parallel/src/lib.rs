//! # linger-parallel
//!
//! Parallel-job scheduling under Linger-Longer (paper Sec 5): synthetic
//! bulk-synchronous jobs, the sor/water/fft application models, and the
//! lingering-versus-reconfiguration comparison.
//!
//! * [`comm`] — NEWS / all-to-all / butterfly exchange patterns;
//! * [`bsp`] — the BSP job runner over burst-accurate lingering CPUs;
//! * [`experiments`] — Figs 9 and 10 (slowdown vs. load and granularity);
//! * [`reconfig`] — Fig 11 (LL-k vs. power-of-two reconfiguration);
//! * [`apps`] — Figs 12 and 13 (application slowdowns and strategies);
//! * [`hybrid`] — the hybrid linger/reconfigure strategy the paper
//!   proposes as future work (Sec 5.2), with a model-based width
//!   predictor and a simulation oracle;
//! * [`cluster`] — the end-to-end parallel-job cluster-throughput
//!   evaluation the paper's conclusion lists as ongoing work.

//! ## Example
//!
//! ```
//! use linger_parallel::{slowdown, BspConfig};
//!
//! // One 20%-busy workstation barely slows an 8-process BSP job …
//! let cfg = BspConfig { phases: 40, ..BspConfig::fig9() };
//! let mut utils = vec![0.0; 8];
//! utils[0] = 0.2;
//! let s = slowdown(&cfg, &utils, 1);
//! assert!(s < 2.0);
//! // … which is why lingering beats giving the node up.
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod bsp;
pub mod cluster;
pub mod comm;
pub mod experiments;
pub mod hybrid;
pub mod reconfig;

pub use apps::{fig12, fig13, App, Fig12Point, Fig13Point};
pub use bsp::{run_bsp, slowdown, BspConfig, BspRun};
pub use comm::CommPattern;
pub use experiments::{fig10, fig9, Fig10Point, Fig9Point};
pub use cluster::{
    simulate_parallel_cluster, simulate_parallel_cluster_with_recorder, throughput_sweep,
    ParallelClusterConfig, ParallelClusterReport, ParallelPolicy, ThroughputComparison,
};
pub use hybrid::{
    hybrid_experiment, hybrid_experiment_with_recorder, predict_best_k, HybridPoint,
};
pub use reconfig::{fig11, Fig11Point, MalleableJob, Strategy};
