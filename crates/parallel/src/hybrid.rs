//! The hybrid strategy the paper proposes as future work (Sec 5.2):
//! "This indicates that a hybrid strategy of lingering and
//! reconfiguration may be the best approach."
//!
//! Given `idle` recruited nodes out of a cluster, the hybrid picks the
//! power-of-two process count `k` — possibly *larger* than `idle`,
//! lingering on the difference, or *smaller*, leaving idle nodes unused —
//! that minimizes predicted completion time. The predictor uses the same
//! machinery as the Linger-Longer cost model: per-phase compute scales
//! with `1/k` (work conservation) and a lingering process's compute rate
//! is the closed-form stealing rate of its host.
//!
//! Two variants:
//! * *prediction* ([`predict_best_k`]) — the decision an online
//!   scheduler could make from the model alone;
//! * an *oracle* ([`oracle_best_k`]) that simulates every candidate and
//!   picks the true optimum, bounding how much the predictor leaves on
//!   the table.

use crate::bsp::{run_bsp, BspConfig};
use crate::reconfig::{largest_pow2_at_most, MalleableJob, Strategy};
use linger_node::steal_rate;
use linger_sim_core::{par_map_indexed, SimDuration};
use linger_telemetry::{DecisionAction, Event, EventKind, Recorder};
use linger_workload::BurstParamTable;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The paper-calibrated table, built once per process — the predictor
/// only reads interpolated moments from it.
fn paper_table() -> &'static BurstParamTable {
    static TABLE: OnceLock<BurstParamTable> = OnceLock::new();
    TABLE.get_or_init(BurstParamTable::paper_calibrated)
}

/// Candidate process counts for a cluster of `cluster` nodes: the powers
/// of two from 1 up to the cluster size.
pub fn candidate_widths(cluster: usize) -> Vec<usize> {
    let mut k = 1usize;
    let mut out = Vec::new();
    while k <= cluster {
        out.push(k);
        k <<= 1;
    }
    out
}

/// Predicted completion time of running the job `k`-wide with `idle` idle
/// nodes: the barrier waits for the slowest class of process. A lingering
/// process computes at the stealing rate of a `local_util` host, and the
/// per-phase barrier maximum over `m` lingering processes is estimated
/// with the Gaussian extreme-value approximation
/// `E[max] ≈ μ + σ·√(2 ln(1+m))`, where σ follows from the burst-table
/// variance — everything an online scheduler can know from the model.
pub fn predict_completion(job: &MalleableJob, k: usize, idle: usize) -> SimDuration {
    let grain = job.base_grain.mul_f64(job.cluster as f64 / k as f64);
    let lingering = k.saturating_sub(idle);
    let per_phase = if lingering == 0 {
        grain
    } else {
        let table = paper_table();
        let rate = steal_rate(table, job.local_util, SimDuration::from_micros(100));
        if rate <= 0.0 {
            return SimDuration::MAX;
        }
        let wall = grain.mul_f64(1.0 / rate);
        // Busy time inside the window is a sum of ~n run bursts; its
        // variance lifts the expected barrier maximum.
        let p = table.interpolate(job.local_util);
        let mean_wall = wall.as_secs_f64();
        let n_bursts = if p.run_mean > 0.0 {
            mean_wall * job.local_util / p.run_mean
        } else {
            0.0
        };
        let sigma = (n_bursts * p.run_var).sqrt();
        let amplification = sigma * (2.0 * (1.0 + lingering as f64).ln()).sqrt();
        SimDuration::from_secs_f64(mean_wall + amplification)
    };
    let comm = if k > 1 {
        (job.round_latency
            + job.per_message_cpu.mul_f64(job.pattern.messages_per_round(k) as f64))
        .mul_f64(job.pattern.rounds(k) as f64)
    } else {
        SimDuration::ZERO
    };
    (per_phase + comm).mul_f64(job.phases as f64)
}

/// The model-predicted best width for the given idle-node count.
pub fn predict_best_k(job: &MalleableJob, idle: usize) -> usize {
    candidate_widths(job.cluster)
        .into_iter()
        .min_by_key(|&k| predict_completion(job, k, idle))
        .expect("at least one candidate")
}

/// Simulate one candidate width and return its completion time.
pub fn simulate_width(job: &MalleableJob, k: usize, idle: usize, seed: u64) -> SimDuration {
    let grain = job.base_grain.mul_f64(job.cluster as f64 / k as f64);
    let cfg = BspConfig {
        processes: k,
        compute_per_phase: grain,
        phases: job.phases,
        pattern: job.pattern,
        round_latency: job.round_latency,
        per_message_cpu: job.per_message_cpu,
        context_switch: SimDuration::from_micros(100),
    };
    let mut utils = vec![0.0; k];
    for u in utils.iter_mut().take(k.saturating_sub(idle).min(k)) {
        *u = job.local_util;
    }
    run_bsp(&cfg, &utils, seed, (k as u64) << 40 | idle as u64).completion
}

/// The true best width found by simulating every candidate (an oracle an
/// online scheduler cannot be, used to bound the predictor's regret).
pub fn oracle_best_k(job: &MalleableJob, idle: usize, seed: u64) -> usize {
    candidate_widths(job.cluster)
        .into_iter()
        .min_by_key(|&k| simulate_width(job, k, idle, seed))
        .expect("at least one candidate")
}

/// One row of the hybrid-strategy experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridPoint {
    /// Idle nodes available.
    pub idle: usize,
    /// Completion time under pure reconfiguration (s).
    pub reconfig_secs: f64,
    /// Completion under full-width lingering (k = cluster) (s).
    pub linger_full_secs: f64,
    /// The width the predictor chose.
    pub hybrid_k: usize,
    /// Completion at the predicted width (s).
    pub hybrid_secs: f64,
    /// The oracle's width.
    pub oracle_k: usize,
    /// Completion at the oracle width (s).
    pub oracle_secs: f64,
}

/// The hybrid-strategy extension experiment: reconfiguration vs.
/// full-width lingering vs. the hybrid predictor vs. the oracle, across
/// idle-node counts.
///
/// Each candidate width is simulated once per idle point and the average
/// shared by the oracle argmin and every report column (the scan-based
/// version re-simulated inside each `min_by` comparison, roughly 2× the
/// sims for identical numbers). Idle points are independent, so they fan
/// out across worker threads deterministically — results land in idle
/// order and every simulation seed derives from `(k, idle, seed, rep)`
/// alone, making the output identical at any thread count.
pub fn hybrid_experiment(job: &MalleableJob, seed: u64, reps: u32) -> Vec<HybridPoint> {
    hybrid_experiment_with_recorder(job, seed, reps, &Recorder::from_env())
}

/// [`hybrid_experiment`] with an explicit telemetry [`Recorder`].
///
/// Records one [`DecisionAction::SelectWidth`] decision per idle point
/// (the predictor's chosen width, with the oracle's width as `dest_cpu`
/// context is omitted — `dest` carries the chosen `k`). Events are
/// recorded after the parallel fan-out returns, iterating points in idle
/// order, so the journal is identical at any thread count.
pub fn hybrid_experiment_with_recorder(
    job: &MalleableJob,
    seed: u64,
    reps: u32,
    recorder: &Recorder,
) -> Vec<HybridPoint> {
    let points = hybrid_points(job, seed, reps);
    recorder.record_all(|| {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Event::new(
                    i as u32,
                    0,
                    EventKind::Decision {
                        action: DecisionAction::SelectWidth,
                        host_cpu: Some(job.local_util),
                        dest_cpu: None,
                        age_secs: None,
                        migration_secs: None,
                        dest: Some(p.hybrid_k as u32),
                    },
                )
                .on_node(p.idle as u32)
            })
            .collect()
    });
    points
}

fn hybrid_points(job: &MalleableJob, seed: u64, reps: u32) -> Vec<HybridPoint> {
    let candidates = candidate_widths(job.cluster);
    let sim_avg = |k: usize, idle: usize| {
        let total: f64 = (0..reps)
            .map(|r| simulate_width(job, k, idle, seed.wrapping_add(r as u64 * 0x51D)).as_secs_f64())
            .sum();
        total / reps as f64
    };
    par_map_indexed(job.cluster + 1, None, |i| {
        let idle = job.cluster - i; // same (0..=cluster).rev() row order
        let avg_by_k: Vec<f64> = candidates.iter().map(|&k| sim_avg(k, idle)).collect();
        let avg = |k: usize| match candidates.iter().position(|&c| c == k) {
            Some(ci) => avg_by_k[ci],
            None => sim_avg(k, idle), // non-power-of-two cluster width
        };
        let rc_k = if idle == 0 { 1 } else { largest_pow2_at_most(idle) };
        // Reconfiguration never lingers: busy procs only when idle=0.
        // (`rc_k ≤ idle`, so the lingering count `rc_k - idle` is zero.)
        let reconfig_secs = if idle == 0 {
            job.completion_avg(Strategy::Reconfiguration, 0, seed, reps).as_secs_f64()
        } else {
            avg(rc_k)
        };
        let hybrid_k = predict_best_k(job, idle);
        let oracle_ci = (0..candidates.len())
            .min_by(|&a, &b| avg_by_k[a].partial_cmp(&avg_by_k[b]).unwrap())
            .expect("at least one candidate");
        HybridPoint {
            idle,
            reconfig_secs,
            linger_full_secs: avg(job.cluster),
            hybrid_k,
            hybrid_secs: avg(hybrid_k),
            oracle_k: candidates[oracle_ci],
            oracle_secs: avg_by_k[oracle_ci],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> MalleableJob {
        MalleableJob { phases: 3, ..MalleableJob::fig11() }
    }

    #[test]
    fn candidates_are_powers_of_two() {
        assert_eq!(candidate_widths(32), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(candidate_widths(1), vec![1]);
        assert_eq!(candidate_widths(20), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn predictor_uses_full_width_on_idle_cluster() {
        let j = job();
        assert_eq!(predict_best_k(&j, 32), 32);
    }

    #[test]
    fn predictor_narrows_when_hosts_are_heavily_loaded() {
        // At 20% local load, full-width lingering genuinely wins for most
        // idle counts (Fig 11); narrowing should kick in when the busy
        // hosts are heavily loaded instead.
        let j = MalleableJob { local_util: 0.7, ..job() };
        let k_busy = predict_best_k(&j, 16);
        assert!(
            k_busy <= 16,
            "with 16 idle nodes and 70%-busy hosts, lingering wide should lose: k={k_busy}"
        );
        assert!(k_busy >= 8, "should still use most idle nodes: k={k_busy}");
    }

    #[test]
    fn prediction_monotonicity_in_idle_nodes() {
        // The predicted best width never grows as idle nodes disappear.
        let j = job();
        let mut prev = usize::MAX;
        for idle in (0..=32).rev() {
            let k = predict_best_k(&j, idle);
            assert!(k <= prev.max(k), "width should not oscillate upward");
            prev = k;
        }
    }

    #[test]
    fn hybrid_never_loses_badly_to_either_pure_strategy() {
        let pts = hybrid_experiment(&job(), 3, 3);
        for p in pts.iter().filter(|p| p.idle % 4 == 0) {
            let best_pure = p.reconfig_secs.min(p.linger_full_secs);
            assert!(
                p.hybrid_secs <= best_pure * 1.15,
                "idle={}: hybrid {:.2}s vs best pure {:.2}s",
                p.idle,
                p.hybrid_secs,
                best_pure
            );
        }
    }

    #[test]
    fn hybrid_strictly_beats_reconfiguration_on_non_power_of_two() {
        // At 24 idle nodes reconfiguration wastes 8 of them; the hybrid
        // lingers (k=32) or uses them, and must win clearly.
        let pts = hybrid_experiment(&job(), 5, 3);
        let p = pts.iter().find(|p| p.idle == 24).unwrap();
        assert!(
            p.hybrid_secs < 0.97 * p.reconfig_secs,
            "idle=24: hybrid {:.2} vs reconfig {:.2}",
            p.hybrid_secs,
            p.reconfig_secs
        );
    }

    #[test]
    fn oracle_bounds_hybrid() {
        let pts = hybrid_experiment(&job(), 7, 3);
        for p in &pts {
            assert!(
                p.oracle_secs <= p.hybrid_secs + 1e-9,
                "idle={}: oracle {:.3} must not exceed hybrid {:.3}",
                p.idle,
                p.oracle_secs,
                p.hybrid_secs
            );
            // Predictor regret stays bounded.
            assert!(
                p.hybrid_secs <= p.oracle_secs * 1.5,
                "idle={}: regret too large ({:.2} vs {:.2})",
                p.idle,
                p.hybrid_secs,
                p.oracle_secs
            );
        }
    }
}
