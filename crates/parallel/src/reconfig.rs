//! Lingering versus reconfiguration (paper Sec 5.1, Fig 11).
//!
//! The alternative to lingering on a partly-busy node is Acharya et al.'s
//! *reconfiguration*: shrink the job to the available idle nodes — but
//! "many applications are restricted to running on a power of two number
//! of nodes", so reconfiguration wastes the idle nodes beyond the largest
//! such count. "Linger-Longer with k nodes means if k or more idle nodes
//! are available in the cluster, the parallel job runs k processes on k
//! idle nodes, otherwise it runs on all idle nodes available and some
//! non-idle nodes by lingering."
//!
//! Work conservation: the job has a fixed per-phase total; on `k`
//! processes each executes `total/k` per phase, so halving the node count
//! doubles the phase length. "We didn't consider the time required to
//! reconfigure the application" — neither do we.

use crate::bsp::{run_bsp, BspConfig};
use crate::comm::CommPattern;
use linger_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

/// A placement strategy for a malleable power-of-two parallel job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Run on the largest power-of-two set of idle nodes (≥ 1 node; with
    /// zero idle nodes the job is forced onto one non-idle node).
    Reconfiguration,
    /// Linger-Longer with a fixed process count `k`.
    LingerK(
        /// Number of processes.
        usize,
    ),
}

impl Strategy {
    /// Display label matching the paper's legend.
    pub fn label(&self) -> String {
        match self {
            Strategy::Reconfiguration => "reconfig".to_string(),
            Strategy::LingerK(k) => format!("{k} nodes"),
        }
    }
}

/// The Fig 11 job shape on a cluster of `cluster` nodes: per-phase total
/// work equal to `base_grain × cluster` (so a full-cluster run has
/// `base_grain` phases — the paper's 500 ms average synchronization
/// interval), NEWS exchange.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MalleableJob {
    /// Cluster size (paper: 32).
    pub cluster: usize,
    /// Per-process compute per phase at full width.
    pub base_grain: SimDuration,
    /// Iterations.
    pub phases: usize,
    /// Local utilization of non-idle nodes (paper: 20%).
    pub local_util: f64,
    /// Communication pattern.
    pub pattern: CommPattern,
    /// Wire latency per round.
    pub round_latency: SimDuration,
    /// Handler CPU per message.
    pub per_message_cpu: SimDuration,
}

impl MalleableJob {
    /// The paper's Fig 11 configuration: 32-node cluster, 500 ms
    /// synchronization, 20% local utilization on non-idle nodes.
    pub fn fig11() -> Self {
        MalleableJob {
            cluster: 32,
            base_grain: SimDuration::from_millis(500),
            phases: 4,
            local_util: 0.2,
            pattern: CommPattern::News,
            round_latency: SimDuration::from_millis(2),
            per_message_cpu: SimDuration::from_millis(1),
        }
    }

    /// Completion time under `strategy` when `idle` of the cluster's
    /// nodes are idle (the rest run local jobs at `local_util`).
    pub fn completion(&self, strategy: Strategy, idle: usize, seed: u64) -> SimDuration {
        assert!(idle <= self.cluster);
        let (procs, non_idle_procs) = match strategy {
            Strategy::Reconfiguration => {
                if idle == 0 {
                    (1, 1) // forced onto a busy node
                } else {
                    (largest_pow2_at_most(idle), 0)
                }
            }
            Strategy::LingerK(k) => {
                assert!(k.is_power_of_two() && k <= self.cluster);
                (k, k.saturating_sub(idle))
            }
        };
        // Work conservation: per-process grain scales with cluster/procs.
        let grain = self.base_grain.mul_f64(self.cluster as f64 / procs as f64);
        let cfg = BspConfig {
            processes: procs,
            compute_per_phase: grain,
            phases: self.phases,
            pattern: self.pattern,
            round_latency: self.round_latency,
            per_message_cpu: self.per_message_cpu,
            context_switch: SimDuration::from_micros(100),
        };
        let mut utils = vec![0.0; procs];
        for u in utils.iter_mut().take(non_idle_procs.min(procs)) {
            *u = self.local_util;
        }
        run_bsp(&cfg, &utils, seed, idle as u64).completion
    }

    /// Mean completion time over `reps` independent replications (the
    /// published curves are smooth; single runs of a max-over-processes
    /// statistic are noisy).
    pub fn completion_avg(
        &self,
        strategy: Strategy,
        idle: usize,
        seed: u64,
        reps: u32,
    ) -> SimDuration {
        assert!(reps >= 1);
        let total: f64 = (0..reps)
            .map(|r| {
                self.completion(strategy, idle, seed.wrapping_add(r as u64 * 0x9E37))
                    .as_secs_f64()
            })
            .sum();
        SimDuration::from_secs_f64(total / reps as f64)
    }
}

/// Largest power of two ≤ `n` (n ≥ 1).
pub fn largest_pow2_at_most(n: usize) -> usize {
    assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// One point of the Fig 11 plot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Point {
    /// Idle nodes available.
    pub idle: usize,
    /// Strategy label.
    pub strategy: String,
    /// Completion time, seconds.
    pub completion_secs: f64,
}

/// The Fig 11 sweep: completion time vs. number of idle nodes for
/// Linger-Longer with 8, 16, and 32 processes and for reconfiguration.
pub fn fig11(seed: u64) -> Vec<Fig11Point> {
    let job = MalleableJob::fig11();
    let strategies = [
        Strategy::LingerK(32),
        Strategy::LingerK(16),
        Strategy::LingerK(8),
        Strategy::Reconfiguration,
    ];
    let mut out = Vec::new();
    for s in strategies {
        for idle in (0..=job.cluster).rev() {
            out.push(Fig11Point {
                idle,
                strategy: s.label(),
                completion_secs: job.completion_avg(s, idle, seed, 5).as_secs_f64(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_helper() {
        assert_eq!(largest_pow2_at_most(1), 1);
        assert_eq!(largest_pow2_at_most(2), 2);
        assert_eq!(largest_pow2_at_most(3), 2);
        assert_eq!(largest_pow2_at_most(16), 16);
        assert_eq!(largest_pow2_at_most(31), 16);
        assert_eq!(largest_pow2_at_most(32), 32);
    }

    fn job() -> MalleableJob {
        MalleableJob { phases: 3, ..MalleableJob::fig11() }
    }

    #[test]
    fn full_cluster_linger_is_fastest_when_all_idle() {
        let j = job();
        let t32 = j.completion(Strategy::LingerK(32), 32, 1);
        let t16 = j.completion(Strategy::LingerK(16), 32, 1);
        let t8 = j.completion(Strategy::LingerK(8), 32, 1);
        assert!(t32 < t16 && t16 < t8, "{t32} {t16} {t8}");
    }

    #[test]
    fn reconfig_steps_at_powers_of_two() {
        let j = job();
        let t31 = j.completion(Strategy::Reconfiguration, 31, 1);
        let t16 = j.completion(Strategy::Reconfiguration, 16, 1);
        let t15 = j.completion(Strategy::Reconfiguration, 15, 1);
        // 31..16 idle nodes all reconfigure to 16 processes.
        assert!((t31.as_secs_f64() - t16.as_secs_f64()).abs() < 0.05 * t16.as_secs_f64());
        // 15 idle nodes drop to 8 processes: roughly double the time.
        let ratio = t15.as_secs_f64() / t16.as_secs_f64();
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn linger32_beats_reconfig_with_few_non_idle() {
        // Paper: "using 32 nodes and a Linger-Longer policy outperforms
        // reconfiguration when 5 or fewer non-idle nodes are used."
        let j = job();
        for idle in [30usize, 29, 28] {
            let ll = j.completion(Strategy::LingerK(32), idle, 2);
            let rc = j.completion(Strategy::Reconfiguration, idle, 2);
            assert!(
                ll < rc,
                "idle={idle}: LL-32 {:.2}s vs reconfig {:.2}s",
                ll.as_secs_f64(),
                rc.as_secs_f64()
            );
        }
    }

    #[test]
    fn linger16_beats_reconfig_in_mid_range() {
        // Paper: "The Linger-Longer policy outperforms the
        // reconfiguration, when either 8 or 16 nodes are used."
        let j = job();
        for idle in [20usize, 14, 10] {
            let ll = j.completion(Strategy::LingerK(16), idle, 3);
            let rc = j.completion(Strategy::Reconfiguration, idle, 3);
            assert!(
                ll.as_secs_f64() <= rc.as_secs_f64() * 1.05,
                "idle={idle}: LL-16 {:.2}s vs reconfig {:.2}s",
                ll.as_secs_f64(),
                rc.as_secs_f64()
            );
        }
    }

    #[test]
    fn completion_rises_as_idle_nodes_disappear() {
        // The barrier max saturates once many nodes are busy, so compare
        // the all-idle case against the loaded ones and allow the two
        // loaded points to tie within noise.
        let j = job();
        let t_allidle = j.completion(Strategy::LingerK(32), 32, 4).as_secs_f64();
        let t_half = j.completion(Strategy::LingerK(32), 16, 4).as_secs_f64();
        let t_none = j.completion(Strategy::LingerK(32), 0, 4).as_secs_f64();
        assert!(t_allidle * 1.3 < t_half, "{t_allidle} vs {t_half}");
        assert!(t_allidle * 1.3 < t_none, "{t_allidle} vs {t_none}");
        assert!(t_none > t_half * 0.85, "saturation band: {t_half} vs {t_none}");
    }

    #[test]
    fn fig11_produces_full_grid() {
        let pts = fig11(1);
        assert_eq!(pts.len(), 4 * 33);
    }
}
