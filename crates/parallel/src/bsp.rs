//! The synthetic bulk-synchronous parallel job (paper Sec 5.1).
//!
//! "Each process computes serially for some period of time, and then an
//! opening barrier is performed to start a communication phase. During
//! the communication phase, each process can exchange messages with other
//! processes. The communication phase ends with an optional barrier."
//!
//! Each process runs as the *foreign* job of its node: on an idle node it
//! computes at full speed; on a non-idle node it is a lingering
//! starvation-priority process, executed through the burst-accurate
//! [`FineGrainCpu`]. Communication is modeled as wall time (wire latency
//! plus kernel-priority handler processing): interrupt-level message
//! handling is not subject to foreign-priority starvation, which is why
//! the paper observes that "the time spent waiting on communication won't
//! be affected as much by local CPU activity".

use crate::comm::CommPattern;
use linger_node::{FineGrainCpu, FixedUtilization};
use linger_sim_core::{domains, RngFactory, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static description of a BSP job.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BspConfig {
    /// Number of processes (one per node).
    pub processes: usize,
    /// CPU demand of each process per compute phase (the synchronization
    /// granularity).
    pub compute_per_phase: SimDuration,
    /// Number of compute/communicate iterations.
    pub phases: usize,
    /// Message exchange pattern.
    pub pattern: CommPattern,
    /// Wire + protocol latency per communication round.
    pub round_latency: SimDuration,
    /// Handler CPU per message (runs at foreign priority).
    pub per_message_cpu: SimDuration,
    /// Effective context-switch cost on loaded nodes.
    pub context_switch: SimDuration,
}

impl BspConfig {
    /// The paper's Fig 9 job: 8 processes, 100 ms between synchronization
    /// phases, NEWS message passing.
    pub fn fig9() -> Self {
        BspConfig {
            processes: 8,
            compute_per_phase: SimDuration::from_millis(100),
            phases: 200,
            pattern: CommPattern::News,
            round_latency: SimDuration::from_millis(1),
            per_message_cpu: SimDuration::from_micros(500),
            context_switch: SimDuration::from_micros(100),
        }
    }

    /// Total CPU demand per process.
    pub fn work_per_process(&self) -> SimDuration {
        let comm = self
            .per_message_cpu
            .mul_f64(self.pattern.messages_per_phase(self.processes) as f64);
        (self.compute_per_phase + comm).mul_f64(self.phases as f64)
    }
}

/// Outcome of one BSP run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BspRun {
    /// Wall-clock completion time.
    pub completion: SimDuration,
    /// Mean fraction of each phase spent waiting at the opening barrier,
    /// averaged over processes and phases.
    pub barrier_wait_fraction: f64,
}

/// Run the job with the given per-node local utilizations
/// (`node_utils[p]` is the load of the node hosting process `p`; 0 =
/// recruited idle node). `salt` decorrelates repeated runs.
pub fn run_bsp(cfg: &BspConfig, node_utils: &[f64], seed: u64, salt: u64) -> BspRun {
    assert_eq!(node_utils.len(), cfg.processes, "one utilization per process");
    let factory = RngFactory::new(seed);
    let mut cpus: Vec<FineGrainCpu<FixedUtilization>> = node_utils
        .iter()
        .enumerate()
        .map(|(p, &u)| {
            let rng = factory.stream_for(domains::PARALLEL, salt.wrapping_mul(1009) + p as u64);
            FineGrainCpu::new(FixedUtilization::new(u, rng), cfg.context_switch)
        })
        .collect();

    let rounds = cfg.pattern.rounds(cfg.processes);
    let msgs = cfg.pattern.messages_per_round(cfg.processes);
    // Kernel-priority handler time plus wire latency, per dependency
    // round; a single-process run exchanges nothing.
    let comm_per_phase = if cfg.processes <= 1 || msgs == 0 {
        SimDuration::ZERO
    } else {
        (cfg.round_latency + cfg.per_message_cpu.mul_f64(msgs as f64)).mul_f64(rounds as f64)
    };

    let mut now = SimTime::ZERO; // all processes synchronized at phase start
    let mut wait_accum = 0.0f64;
    let mut wait_samples = 0u64;

    for _ in 0..cfg.phases {
        // Compute phase + opening barrier.
        now = sync_step(&mut cpus, now, cfg.compute_per_phase, &mut wait_accum, &mut wait_samples);
        // Communication: load-independent wall time; every process's
        // local stream keeps evolving underneath it.
        for c in cpus.iter_mut() {
            c.advance_wall(comm_per_phase);
        }
        now += comm_per_phase;
    }

    BspRun {
        completion: now.saturating_since(SimTime::ZERO),
        barrier_wait_fraction: if wait_samples == 0 {
            0.0
        } else {
            wait_accum / wait_samples as f64
        },
    }
}

/// All processes consume `demand`, then meet at a barrier: returns the
/// barrier time and advances stragglers' local streams through their wait.
fn sync_step(
    cpus: &mut [FineGrainCpu<FixedUtilization>],
    now: SimTime,
    demand: SimDuration,
    wait_accum: &mut f64,
    wait_samples: &mut u64,
) -> SimTime {
    let arrivals: Vec<SimTime> = cpus
        .iter_mut()
        .map(|c| now + c.consume(demand))
        .collect();
    let barrier = arrivals.iter().copied().max().expect("at least one process");
    let span = barrier.saturating_since(now).as_secs_f64();
    for (c, &a) in cpus.iter_mut().zip(&arrivals) {
        c.advance_wall(barrier.saturating_since(a));
        if span > 0.0 {
            *wait_accum += barrier.saturating_since(a).as_secs_f64() / span;
            *wait_samples += 1;
        }
    }
    barrier
}

/// Completion-time ratio against the same job on all-idle nodes.
pub fn slowdown(cfg: &BspConfig, node_utils: &[f64], seed: u64) -> f64 {
    let loaded = run_bsp(cfg, node_utils, seed, 1);
    let ideal = run_bsp(cfg, &vec![0.0; cfg.processes], seed, 2);
    loaded.completion.as_secs_f64() / ideal.completion.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> BspConfig {
        BspConfig { phases: 60, ..BspConfig::fig9() }
    }

    fn utils(loaded: usize, u: f64) -> Vec<f64> {
        let mut v = vec![0.0; 8];
        for x in v.iter_mut().take(loaded) {
            *x = u;
        }
        v
    }

    #[test]
    fn ideal_run_matches_work() {
        let cfg = quick_cfg();
        let r = run_bsp(&cfg, &utils(0, 0.0), 5, 0);
        let work = cfg.work_per_process().as_secs_f64()
            + cfg.phases as f64 * cfg.round_latency.as_secs_f64();
        let got = r.completion.as_secs_f64();
        assert!(
            (got - work).abs() / work < 0.02,
            "ideal completion {got} vs work {work}"
        );
    }

    #[test]
    fn slowdown_grows_with_utilization() {
        // The Fig 9 curve must be monotone (up to noise) and reach
        // roughly 1/(1-u) scale at high utilization.
        let cfg = quick_cfg();
        let s20 = slowdown(&cfg, &utils(1, 0.2), 5);
        let s50 = slowdown(&cfg, &utils(1, 0.5), 5);
        let s90 = slowdown(&cfg, &utils(1, 0.9), 5);
        assert!(s20 < s50 && s50 < s90, "{s20} {s50} {s90}");
        assert!(s20 > 1.05 && s20 < 1.8, "20%: {s20}");
        assert!(s90 > 5.0, "90%: {s90}");
    }

    #[test]
    fn slowdown_grows_with_loaded_nodes() {
        let cfg = quick_cfg();
        let s1 = slowdown(&cfg, &utils(1, 0.2), 7);
        let s4 = slowdown(&cfg, &utils(4, 0.2), 7);
        let s8 = slowdown(&cfg, &utils(8, 0.2), 7);
        assert!(s1 < s4 && s4 < s8, "{s1} {s4} {s8}");
        // Fig 10 / Fig 12 scale: 20% load keeps slowdown under ~2.5 even
        // fully loaded.
        assert!(s8 < 3.0, "8 loaded at 20%: {s8}");
        assert!(s8 > 1.2);
    }

    #[test]
    fn coarser_granularity_means_less_slowdown() {
        // Fig 10: "larger synchronization granularity produces less
        // slowdown" (per-phase barrier max amplifies fine-grain noise).
        let mk = |g_ms: u64, phases: usize| BspConfig {
            compute_per_phase: SimDuration::from_millis(g_ms),
            phases,
            ..BspConfig::fig9()
        };
        let fine = slowdown(&mk(10, 600), &utils(4, 0.2), 9);
        let coarse = slowdown(&mk(1000, 12), &utils(4, 0.2), 9);
        assert!(
            fine > coarse + 0.05,
            "fine {fine} should exceed coarse {coarse}"
        );
    }

    #[test]
    fn barrier_wait_fraction_reported() {
        let cfg = quick_cfg();
        let r = run_bsp(&cfg, &utils(2, 0.5), 11, 0);
        assert!(r.barrier_wait_fraction > 0.0 && r.barrier_wait_fraction < 1.0);
    }

    #[test]
    fn deterministic_given_seed_and_salt() {
        let cfg = quick_cfg();
        let a = run_bsp(&cfg, &utils(3, 0.3), 13, 4);
        let b = run_bsp(&cfg, &utils(3, 0.3), 13, 4);
        assert_eq!(a.completion, b.completion);
        let c = run_bsp(&cfg, &utils(3, 0.3), 13, 5);
        assert_ne!(a.completion, c.completion, "salt must decorrelate");
    }

    #[test]
    #[should_panic]
    fn utils_length_must_match() {
        let cfg = quick_cfg();
        let _ = run_bsp(&cfg, &[0.0; 4], 1, 0);
    }
}
