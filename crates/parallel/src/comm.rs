//! Communication patterns of the parallel job models.
//!
//! The synthetic BSP job uses a NEWS exchange ("a process exchange
//! messages only with its neighbors in terms of data partitioning",
//! paper Sec 5.1); the application models add an all-neighbor multicast
//! (water's molecular force exchange) and a butterfly (fft).

use serde::{Deserialize, Serialize};

/// Message exchange structure of one communication phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommPattern {
    /// 2-D torus neighbor exchange (North/East/West/South).
    News,
    /// Every process exchanges with every other (water-style).
    AllToAll,
    /// log₂(P) butterfly rounds (fft-style).
    Butterfly,
}

impl CommPattern {
    /// Number of dependent rounds in one communication phase.
    pub fn rounds(self, procs: usize) -> usize {
        match self {
            CommPattern::News => 1,
            CommPattern::AllToAll => 1,
            CommPattern::Butterfly => {
                debug_assert!(procs.is_power_of_two(), "butterfly needs a power of two");
                procs.trailing_zeros() as usize
            }
        }
    }

    /// Messages each process sends (and receives) per round.
    pub fn messages_per_round(self, procs: usize) -> usize {
        match self {
            CommPattern::News => grid_neighbors(procs),
            CommPattern::AllToAll => procs.saturating_sub(1),
            CommPattern::Butterfly => 1,
        }
    }

    /// Total messages per process per communication phase.
    pub fn messages_per_phase(self, procs: usize) -> usize {
        self.rounds(procs) * self.messages_per_round(procs)
    }
}

/// Neighbors in the most-square 2-D torus factorization of `procs`.
fn grid_neighbors(procs: usize) -> usize {
    if procs <= 1 {
        return 0;
    }
    let (rows, cols) = grid_shape(procs);
    // Torus wrap: up to 4 distinct neighbors, fewer on degenerate shapes.
    let vertical = match rows {
        1 => 0,
        2 => 1,
        _ => 2,
    };
    let horizontal = match cols {
        1 => 0,
        2 => 1,
        _ => 2,
    };
    vertical + horizontal
}

/// Most-square factorization `rows × cols = procs` with `rows ≤ cols`.
pub fn grid_shape(procs: usize) -> (usize, usize) {
    let mut best = (1, procs);
    let mut r = 1;
    while r * r <= procs {
        if procs.is_multiple_of(r) {
            best = (r, procs / r);
        }
        r += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes() {
        assert_eq!(grid_shape(8), (2, 4));
        assert_eq!(grid_shape(16), (4, 4));
        assert_eq!(grid_shape(32), (4, 8));
        assert_eq!(grid_shape(7), (1, 7));
        assert_eq!(grid_shape(1), (1, 1));
    }

    #[test]
    fn news_neighbor_counts() {
        // 2×4 torus: 1 vertical + 2 horizontal = 3 distinct neighbors.
        assert_eq!(CommPattern::News.messages_per_round(8), 3);
        // 4×4 torus: full NEWS.
        assert_eq!(CommPattern::News.messages_per_round(16), 4);
        assert_eq!(CommPattern::News.messages_per_round(1), 0);
        assert_eq!(CommPattern::News.rounds(8), 1);
    }

    #[test]
    fn all_to_all_counts() {
        assert_eq!(CommPattern::AllToAll.messages_per_round(8), 7);
        assert_eq!(CommPattern::AllToAll.messages_per_phase(8), 7);
    }

    #[test]
    fn butterfly_counts() {
        assert_eq!(CommPattern::Butterfly.rounds(8), 3);
        assert_eq!(CommPattern::Butterfly.rounds(32), 5);
        assert_eq!(CommPattern::Butterfly.messages_per_phase(8), 3);
    }
}
