//! The synthetic-BSP slowdown experiments (paper Figs 9 and 10).

use crate::bsp::{slowdown, BspConfig};
use linger_sim_core::{par_map_indexed, SimDuration};
use serde::{Deserialize, Serialize};

/// One point of the Fig 9 curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig9Point {
    /// Local CPU utilization of the single non-idle node (percent).
    pub utilization_pct: u32,
    /// Job slowdown vs. 8 idle nodes.
    pub slowdown: f64,
}

/// Fig 9: slowdown of the 8-process, 100 ms-granularity BSP job as the
/// one non-idle node's local utilization sweeps 0–90%.
pub fn fig9(seed: u64, phases: usize) -> Vec<Fig9Point> {
    let cfg = BspConfig { phases, ..BspConfig::fig9() };
    // Each utilization point is an independent simulation; fan out.
    par_map_indexed(10, None, |i| {
        let u = i as f64 / 10.0;
        let mut utils = vec![0.0; cfg.processes];
        utils[0] = u;
        Fig9Point {
            utilization_pct: i as u32 * 10,
            slowdown: slowdown(&cfg, &utils, seed),
        }
    })
}

/// One point of a Fig 10 curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig10Point {
    /// Computation time between communications, milliseconds.
    pub granularity_ms: u64,
    /// Number of non-idle nodes (the curve).
    pub non_idle: usize,
    /// Job slowdown vs. 8 idle nodes.
    pub slowdown: f64,
}

/// Fig 10: slowdown vs. synchronization granularity (10 ms – 10 s) for
/// 1, 2, 4, and 8 non-idle nodes at 20% local utilization. Total work is
/// held constant across granularities.
pub fn fig10(seed: u64, total_compute: SimDuration) -> Vec<Fig10Point> {
    let granularities_ms: [u64; 7] = [10, 30, 100, 300, 1000, 3000, 10_000];
    let curves: [usize; 4] = [1, 2, 4, 8];
    // Flatten the 4×7 grid so every point fans out independently; the
    // output stays in (curve, granularity) order.
    par_map_indexed(curves.len() * granularities_ms.len(), None, |idx| {
        let non_idle = curves[idx / granularities_ms.len()];
        let g = granularities_ms[idx % granularities_ms.len()];
        let phases = ((total_compute.as_secs_f64() * 1000.0 / g as f64).round() as usize).max(2);
        let cfg = BspConfig {
            compute_per_phase: SimDuration::from_millis(g),
            phases,
            ..BspConfig::fig9()
        };
        let mut utils = vec![0.0; cfg.processes];
        for u in utils.iter_mut().take(non_idle) {
            *u = 0.2;
        }
        Fig10Point {
            granularity_ms: g,
            non_idle,
            slowdown: slowdown(&cfg, &utils, seed),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape() {
        let pts = fig9(3, 80);
        assert_eq!(pts.len(), 10);
        assert!((pts[0].slowdown - 1.0).abs() < 0.02, "0% load ≈ no slowdown");
        // Paper: "slowdown of only 1.1 to 1.5 when the load is less than
        // 40%"; large above 50%.
        for p in &pts[1..=4] {
            assert!(
                p.slowdown < 2.0,
                "{}%: {}",
                p.utilization_pct,
                p.slowdown
            );
        }
        assert!(pts[9].slowdown > 4.0, "90%: {}", pts[9].slowdown);
        // Monotone within noise.
        assert!(pts[9].slowdown > pts[5].slowdown);
        assert!(pts[5].slowdown > pts[2].slowdown);
    }

    #[test]
    fn fig10_shape() {
        let pts = fig10(3, SimDuration::from_secs(6));
        // 4 curves × 7 granularities.
        assert_eq!(pts.len(), 28);
        // More non-idle nodes → more slowdown, at every granularity.
        for &g in &[10u64, 1000] {
            let by_k: Vec<f64> = [1usize, 2, 4, 8]
                .iter()
                .map(|&k| {
                    pts.iter()
                        .find(|p| p.granularity_ms == g && p.non_idle == k)
                        .unwrap()
                        .slowdown
                })
                .collect();
            assert!(by_k[0] < by_k[3], "k ordering at g={g}: {by_k:?}");
        }
        // Finer granularity → more slowdown (compare ends for the 4-node
        // curve).
        let fine = pts
            .iter()
            .find(|p| p.granularity_ms == 10 && p.non_idle == 4)
            .unwrap()
            .slowdown;
        let coarse = pts
            .iter()
            .find(|p| p.granularity_ms == 10_000 && p.non_idle == 4)
            .unwrap()
            .slowdown;
        assert!(fine > coarse, "fine {fine} vs coarse {coarse}");
        // Paper scale: the worst case (8 nodes, 10 ms) stays under ~2.5.
        let worst = pts
            .iter()
            .map(|p| p.slowdown)
            .fold(0.0f64, f64::max);
        assert!(worst < 4.0, "worst slowdown {worst}");
    }
}
