//! The two-pool priority memory model (paper Sec 3.2).
//!
//! "The idea is to divide memory into two pools: one for the local jobs
//! and the other for foreign jobs. Whenever a page is placed on the
//! free-list by a local job, the foreign job is able to use the page.
//! Likewise, when the local job runs out of pages, it reclaims them from
//! the foreign job prior to paging out any of its pages."
//!
//! [`TwoPoolMemory`] captures the policy at page granularity with the
//! invariants that matter to the scheduler:
//!
//! 1. local demand is **always** satisfied before foreign residency —
//!    local pages are never evicted on behalf of a foreign job;
//! 2. the foreign job's resident set grows only into free memory;
//! 3. when local demand grows, pages are reclaimed from the foreign job
//!    first.
//!
//! The cluster simulator uses the derived admission check
//! ([`TwoPoolMemory::fits`]) to gate job placement, and the reclaim
//! counters feed the memory-pressure ablation bench.

use serde::{Deserialize, Serialize};

/// Page size used to express the model in pages (4 KB, as in the paper's
/// Linux prototype).
pub const PAGE_KB: u32 = 4;

/// Two-pool priority page allocation state for one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoPoolMemory {
    total_pages: u32,
    local_pages: u32,
    foreign_resident_pages: u32,
    /// The foreign job's full working-set size; residency may be lower.
    foreign_demand_pages: u32,
    /// Cumulative pages reclaimed from the foreign pool by local growth.
    reclaimed_pages: u64,
    /// Cumulative local page-outs forced while no foreign pages remained
    /// (i.e. pressure the local workload would have seen anyway).
    local_pageouts: u64,
}

impl TwoPoolMemory {
    /// A node with `total_kb` of physical memory and `local_kb` initially
    /// used by the OS and local processes.
    pub fn new(total_kb: u32, local_kb: u32) -> Self {
        let total_pages = total_kb / PAGE_KB;
        let local_pages = (local_kb / PAGE_KB).min(total_pages);
        TwoPoolMemory {
            total_pages,
            local_pages,
            foreign_resident_pages: 0,
            foreign_demand_pages: 0,
            reclaimed_pages: 0,
            local_pageouts: 0,
        }
    }

    /// Physical memory, KB.
    pub fn total_kb(&self) -> u32 {
        self.total_pages * PAGE_KB
    }

    /// Memory used by local jobs + OS, KB.
    pub fn local_kb(&self) -> u32 {
        self.local_pages * PAGE_KB
    }

    /// Foreign job resident size, KB.
    pub fn foreign_resident_kb(&self) -> u32 {
        self.foreign_resident_pages * PAGE_KB
    }

    /// Free memory (neither pool), KB.
    pub fn free_kb(&self) -> u32 {
        (self.total_pages - self.local_pages - self.foreign_resident_pages) * PAGE_KB
    }

    /// Pages reclaimed from the foreign pool so far.
    pub fn reclaimed_pages(&self) -> u64 {
        self.reclaimed_pages
    }

    /// Local page-outs that occurred with no foreign pages left to take.
    pub fn local_pageouts(&self) -> u64 {
        self.local_pageouts
    }

    /// Would a foreign job of `job_kb` fit entirely in currently-free
    /// memory? This is the admission check the cluster scheduler applies
    /// before placing or migrating a job onto a node.
    pub fn fits(&self, job_kb: u32) -> bool {
        job_kb <= self.free_kb()
    }

    /// Attach a foreign job with a working set of `job_kb`. Residency is
    /// capped by free memory (invariant 2). Returns the resident KB.
    pub fn attach_foreign(&mut self, job_kb: u32) -> u32 {
        debug_assert_eq!(self.foreign_demand_pages, 0, "one foreign job per node");
        let demand = job_kb.div_ceil(PAGE_KB);
        self.foreign_demand_pages = demand;
        let free = self.total_pages - self.local_pages;
        self.foreign_resident_pages = demand.min(free);
        self.foreign_resident_kb()
    }

    /// Detach the foreign job (eviction or completion), freeing its pool.
    pub fn detach_foreign(&mut self) {
        self.foreign_resident_pages = 0;
        self.foreign_demand_pages = 0;
    }

    /// Fraction of the foreign job's demand that is resident (1.0 when
    /// fully resident, less under local memory pressure).
    pub fn foreign_residency(&self) -> f64 {
        if self.foreign_demand_pages == 0 {
            1.0
        } else {
            self.foreign_resident_pages as f64 / self.foreign_demand_pages as f64
        }
    }

    /// Update local memory demand to `local_kb` (from the coarse trace).
    ///
    /// Growth reclaims foreign pages first (invariant 3), then counts
    /// local page-outs if demand still exceeds physical memory. Shrink
    /// releases pages to the free list, where the foreign job may re-grow
    /// toward its demand (invariant 1 of the free-list rule).
    pub fn set_local_kb(&mut self, local_kb: u32) {
        let want = (local_kb / PAGE_KB).min(self.total_pages);
        if want > self.local_pages {
            let mut need = want - self.local_pages;
            // Take free pages first.
            let free = self.total_pages - self.local_pages - self.foreign_resident_pages;
            let from_free = need.min(free);
            need -= from_free;
            // Then reclaim from the foreign pool.
            let from_foreign = need.min(self.foreign_resident_pages);
            self.foreign_resident_pages -= from_foreign;
            self.reclaimed_pages += from_foreign as u64;
            need -= from_foreign;
            // Anything left would have paged out local memory regardless.
            self.local_pageouts += need as u64;
            self.local_pages = want;
        } else {
            self.local_pages = want;
            // Freed pages flow to the foreign job up to its demand.
            let free = self.total_pages - self.local_pages - self.foreign_resident_pages;
            let regrow = (self.foreign_demand_pages - self.foreign_resident_pages).min(free);
            self.foreign_resident_pages += regrow;
        }
        debug_assert!(
            self.local_pages + self.foreign_resident_pages <= self.total_pages,
            "pools exceed physical memory"
        );
    }

    /// [`set_local_kb`](Self::set_local_kb) specialised to a node with no
    /// foreign job attached.
    ///
    /// With `foreign_demand_pages == 0` (hence `foreign_resident_pages ==
    /// 0`), the growth branch reclaims nothing and counts no page-outs
    /// (demand is clamped to `total_pages` first), and the shrink branch
    /// regrows nothing — both reduce to the clamped store below. Also a
    /// value-level no-op when the full path already ran for this window:
    /// every `set_local_kb` ends with `local_pages == want`. The
    /// per-window memory refresh exploits both properties to stream the
    /// whole cluster's trace row branch-free, after busy nodes took the
    /// full accounting path.
    #[inline]
    pub fn store_local_kb_unattached(&mut self, local_kb: u32) {
        debug_assert!(
            self.foreign_demand_pages == 0
                || self.local_pages == (local_kb / PAGE_KB).min(self.total_pages),
            "fast path requires no foreign job or an already-applied update"
        );
        self.local_pages = (local_kb / PAGE_KB).min(self.total_pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> TwoPoolMemory {
        // 64 MB node, 30 MB local.
        TwoPoolMemory::new(64 * 1024, 30 * 1024)
    }

    #[test]
    fn initial_accounting() {
        let m = mem();
        assert_eq!(m.total_kb(), 64 * 1024);
        assert_eq!(m.local_kb(), 30 * 1024);
        assert_eq!(m.free_kb(), 34 * 1024);
        assert_eq!(m.foreign_resident_kb(), 0);
    }

    #[test]
    fn fits_respects_free_memory() {
        let m = mem();
        assert!(m.fits(8 * 1024));
        assert!(m.fits(34 * 1024));
        assert!(!m.fits(34 * 1024 + PAGE_KB));
    }

    #[test]
    fn attach_caps_residency_at_free() {
        let mut m = mem();
        let resident = m.attach_foreign(40 * 1024);
        assert_eq!(resident, 34 * 1024);
        assert_eq!(m.free_kb(), 0);
        assert!((m.foreign_residency() - 34.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn local_growth_reclaims_foreign_first() {
        let mut m = mem();
        m.attach_foreign(8 * 1024);
        assert_eq!(m.free_kb(), 26 * 1024);
        // Local grows by 30 MB: 26 MB from free, 4 MB reclaimed.
        m.set_local_kb(60 * 1024);
        assert_eq!(m.local_kb(), 60 * 1024);
        assert_eq!(m.foreign_resident_kb(), 4 * 1024);
        assert_eq!(m.reclaimed_pages(), (4 * 1024 / PAGE_KB) as u64);
        assert_eq!(m.local_pageouts(), 0, "local never pages for foreign");
    }

    #[test]
    fn local_pageouts_only_after_foreign_is_empty() {
        let mut m = mem();
        m.attach_foreign(8 * 1024);
        m.set_local_kb(64 * 1024); // consumes everything
        assert_eq!(m.foreign_resident_kb(), 0);
        assert_eq!(m.local_pageouts(), 0); // exactly fits
        m.set_local_kb(64 * 1024); // no-op
        assert_eq!(m.local_pageouts(), 0);
        // Demand beyond physical memory is clamped, not counted against
        // the foreign job.
        m.set_local_kb(80 * 1024);
        assert_eq!(m.local_kb(), 64 * 1024);
    }

    #[test]
    fn foreign_regrows_when_local_shrinks() {
        let mut m = mem();
        m.attach_foreign(8 * 1024);
        m.set_local_kb(60 * 1024);
        assert_eq!(m.foreign_resident_kb(), 4 * 1024);
        m.set_local_kb(30 * 1024);
        assert_eq!(m.foreign_resident_kb(), 8 * 1024, "free pages flow back");
        assert_eq!(m.free_kb(), 26 * 1024);
    }

    #[test]
    fn detach_restores_free_memory() {
        let mut m = mem();
        m.attach_foreign(8 * 1024);
        m.detach_foreign();
        assert_eq!(m.free_kb(), 34 * 1024);
        assert_eq!(m.foreign_residency(), 1.0);
    }

    #[test]
    fn pools_never_exceed_total() {
        // Randomized local demand walk preserves the core invariant.
        let mut m = mem();
        m.attach_foreign(12 * 1024);
        let mut x = 48_271u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let kb = (x >> 33) as u32 % (80 * 1024);
            m.set_local_kb(kb);
            assert!(m.local_kb() + m.foreign_resident_kb() <= m.total_kb());
        }
    }

    #[test]
    fn unattached_store_matches_full_update() {
        let mut x = 48_271u64;
        let mut full = mem();
        let mut fast = mem();
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let kb = (x >> 33) as u32 % (80 * 1024);
            full.set_local_kb(kb);
            fast.store_local_kb_unattached(kb);
            assert_eq!(full, fast);
        }
        // And re-storing after the full path ran is a no-op even with a
        // foreign job attached.
        full.attach_foreign(8 * 1024);
        full.set_local_kb(40 * 1024);
        let snapshot = full.clone();
        full.store_local_kb_unattached(40 * 1024);
        assert_eq!(full, snapshot);
    }

    #[test]
    fn page_rounding() {
        let mut m = TwoPoolMemory::new(100 * PAGE_KB, 10 * PAGE_KB);
        // 5 KB demand rounds up to 2 pages.
        let resident = m.attach_foreign(5);
        assert_eq!(resident, 2 * PAGE_KB);
    }
}
