//! Page-level simulation of the prototype's priority paging (Sec 3.2 and
//! Sec 7: "we have added priority to the Linux paging mechanism").
//!
//! [`crate::memory::TwoPoolMemory`] captures the *policy* (pool sizes and
//! reclaim order); this module simulates the *mechanism* at page
//! granularity: per-pool LRU lists, a shared free list, reference and
//! fault streams, and the costs that make the policy matter — a foreign
//! job whose resident set has been reclaimed pays page faults to grow it
//! back, and (the point of the design) the local workload *never* faults
//! because of the foreign job.
//!
//! The model is used two ways:
//! * unit/property tests prove the protection invariant the paper's
//!   prototype relies on;
//! * [`PagingSim::foreign_efficiency`] feeds the memory-pressure ablation:
//!   how much of the foreign job's progress survives when its working set
//!   only partly fits.

use linger_sim_core::{domains, RngFactory, SimRng};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Who owns a physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Owner {
    /// Free list.
    Free,
    /// Local (owner-class) page.
    Local,
    /// Foreign (guest-class) page.
    Foreign,
}

/// Configuration of the paging simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PagingConfig {
    /// Physical frames.
    pub frames: usize,
    /// Local working-set size, pages.
    pub local_pages: usize,
    /// Foreign working-set size, pages.
    pub foreign_pages: usize,
    /// Cost of a major fault (disk), in microseconds — used for the
    /// efficiency estimate.
    pub fault_cost_us: f64,
    /// Mean CPU time between two foreign page references, microseconds.
    pub foreign_ref_interval_us: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for PagingConfig {
    fn default() -> Self {
        PagingConfig {
            // 64 MB of 4 KB frames.
            frames: 16_384,
            local_pages: 8_000,
            foreign_pages: 2_048, // 8 MB
            fault_cost_us: 8_000.0, // ~8 ms disk service, 1998 hardware
            foreign_ref_interval_us: 20.0,
            seed: 0,
        }
    }
}

/// Counters of interest.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PagingStats {
    /// Foreign references simulated.
    pub foreign_refs: u64,
    /// Foreign major faults taken.
    pub foreign_faults: u64,
    /// Local references simulated.
    pub local_refs: u64,
    /// Local major faults taken (must stay 0 while the foreign pool is
    /// non-empty — the protection invariant).
    pub local_faults: u64,
    /// Frames reclaimed from the foreign pool for local growth.
    pub reclaims: u64,
}

/// The page-level simulator.
pub struct PagingSim {
    cfg: PagingConfig,
    owner: Vec<Owner>,
    /// LRU order of local frames (front = coldest).
    local_lru: VecDeque<usize>,
    /// LRU order of foreign frames (front = coldest).
    foreign_lru: VecDeque<usize>,
    free: Vec<usize>,
    /// Virtual-page → frame maps (None = not resident).
    local_map: Vec<Option<usize>>,
    foreign_map: Vec<Option<usize>>,
    /// Pages that have been resident at least once: a miss on one of
    /// these is a true re-fault, not a compulsory first touch.
    local_seen: Vec<bool>,
    foreign_seen: Vec<bool>,
    rng: SimRng,
    stats: PagingStats,
}

impl PagingSim {
    /// Initialize with all frames free.
    pub fn new(cfg: PagingConfig) -> Self {
        assert!(cfg.frames > 0, "need at least one frame");
        PagingSim {
            owner: vec![Owner::Free; cfg.frames],
            local_lru: VecDeque::new(),
            foreign_lru: VecDeque::new(),
            free: (0..cfg.frames).rev().collect(),
            local_map: vec![None; cfg.local_pages],
            foreign_map: vec![None; cfg.foreign_pages],
            local_seen: vec![false; cfg.local_pages],
            foreign_seen: vec![false; cfg.foreign_pages],
            rng: RngFactory::new(cfg.seed).stream_for(domains::MEMORY, 0xBEEF),
            stats: PagingStats::default(),
            cfg,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> PagingStats {
        self.stats
    }

    /// Resident page counts `(local, foreign, free)`.
    pub fn residency(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for o in &self.owner {
            match o {
                Owner::Local => counts.0 += 1,
                Owner::Foreign => counts.1 += 1,
                Owner::Free => counts.2 += 1,
            }
        }
        counts
    }

    fn grab_free(&mut self) -> Option<usize> {
        self.free.pop()
    }

    /// Take a frame for a **local** page: free list first, then reclaim
    /// the coldest foreign frame, then evict the coldest local frame
    /// (self-eviction — the only case that counts as a local fault cost
    /// beyond the compulsory miss).
    fn frame_for_local(&mut self) -> usize {
        if let Some(f) = self.grab_free() {
            return f;
        }
        if let Some(f) = self.foreign_lru.pop_front() {
            self.stats.reclaims += 1;
            // Unmap the foreign page that held it.
            if let Some(vp) = self.foreign_map.iter().position(|&m| m == Some(f)) {
                self.foreign_map[vp] = None;
            }
            return f;
        }
        let f = self.local_lru.pop_front().expect("no frames at all");
        if let Some(vp) = self.local_map.iter().position(|&m| m == Some(f)) {
            self.local_map[vp] = None;
        }
        f
    }

    /// Take a frame for a **foreign** page: free list, else evict the
    /// coldest *foreign* frame. Never touches local frames.
    fn frame_for_foreign(&mut self) -> Option<usize> {
        if let Some(f) = self.grab_free() {
            return Some(f);
        }
        let f = self.foreign_lru.pop_front()?;
        if let Some(vp) = self.foreign_map.iter().position(|&m| m == Some(f)) {
            self.foreign_map[vp] = None;
        }
        Some(f)
    }

    fn touch(lru: &mut VecDeque<usize>, frame: usize) {
        if let Some(pos) = lru.iter().position(|&f| f == frame) {
            lru.remove(pos);
        }
        lru.push_back(frame);
    }

    /// Reference local virtual page `vp`; returns `true` on a fault.
    pub fn local_ref(&mut self, vp: usize) -> bool {
        assert!(vp < self.cfg.local_pages, "local page out of range");
        self.stats.local_refs += 1;
        if let Some(f) = self.local_map[vp] {
            Self::touch(&mut self.local_lru, f);
            return false;
        }
        let f = self.frame_for_local();
        self.owner[f] = Owner::Local;
        self.local_map[vp] = Some(f);
        self.local_lru.push_back(f);
        // Compulsory (first-touch) misses are not charged as faults; a
        // re-fault of a previously-resident page is — and it can only
        // happen via local self-eviction, never foreign pressure.
        let refault = self.local_seen[vp];
        self.local_seen[vp] = true;
        if refault {
            self.stats.local_faults += 1;
        }
        refault
    }

    /// Reference foreign virtual page `vp`; returns `true` on a fault
    /// (compulsory misses excluded), `false` on a hit. Returns `None`
    /// when no frame can be obtained (zero residency).
    pub fn foreign_ref(&mut self, vp: usize) -> Option<bool> {
        assert!(vp < self.cfg.foreign_pages, "foreign page out of range");
        self.stats.foreign_refs += 1;
        if let Some(f) = self.foreign_map[vp] {
            Self::touch(&mut self.foreign_lru, f);
            return Some(false);
        }
        let f = self.frame_for_foreign()?;
        self.owner[f] = Owner::Foreign;
        self.foreign_map[vp] = Some(f);
        self.foreign_lru.push_back(f);
        let refault = self.foreign_seen[vp];
        self.foreign_seen[vp] = true;
        if refault {
            self.stats.foreign_faults += 1;
        }
        Some(refault)
    }

    /// Release local residency down to `pages` (the owner's demand
    /// shrank); freed frames go to the free list.
    pub fn shrink_local_to(&mut self, pages: usize) {
        while self.local_lru.len() > pages {
            let f = self.local_lru.pop_front().expect("non-empty");
            if let Some(vp) = self.local_map.iter().position(|&m| m == Some(f)) {
                self.local_map[vp] = None;
            }
            self.owner[f] = Owner::Free;
            self.free.push(f);
        }
    }

    /// Drive `refs` uniformly-random foreign references and return the
    /// efficiency: CPU time doing work / (work + fault service). This is
    /// the page-level ground truth behind the cluster simulator's
    /// residency-proportional slowdown.
    pub fn foreign_efficiency(&mut self, refs: u64) -> f64 {
        let mut faults = 0u64;
        for _ in 0..refs {
            let vp = (self.rng.random::<u64>() % self.cfg.foreign_pages as u64) as usize;
            match self.foreign_ref(vp) {
                Some(true) => faults += 1,
                Some(false) => {}
                None => return 0.0,
            }
        }
        let work = refs as f64 * self.cfg.foreign_ref_interval_us;
        let stall = faults as f64 * self.cfg.fault_cost_us;
        work / (work + stall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(frames: usize, local: usize, foreign: usize) -> PagingSim {
        PagingSim::new(PagingConfig {
            frames,
            local_pages: local,
            foreign_pages: foreign,
            ..Default::default()
        })
    }

    #[test]
    fn cold_start_populates_without_faults() {
        let mut s = small(100, 40, 20);
        for vp in 0..40 {
            assert!(!s.local_ref(vp), "compulsory miss is not a fault");
        }
        for vp in 0..20 {
            assert_eq!(s.foreign_ref(vp), Some(false));
        }
        let (l, f, free) = s.residency();
        assert_eq!((l, f, free), (40, 20, 40));
        assert_eq!(s.stats().local_faults, 0);
        assert_eq!(s.stats().foreign_faults, 0);
    }

    #[test]
    fn local_growth_reclaims_foreign_lru_first() {
        let mut s = small(30, 30, 10);
        for vp in 0..10 {
            s.foreign_ref(vp);
        }
        for vp in 0..25 {
            s.local_ref(vp);
        }
        // 30 frames: local 25, foreign shrunk to 5.
        let (l, f, _) = s.residency();
        assert_eq!(l, 25);
        assert_eq!(f, 5);
        assert_eq!(s.stats().reclaims, 5);
        assert_eq!(s.stats().local_faults, 0, "local never faults on foreign");
        // The coldest foreign pages (0..5) were the ones reclaimed.
        for vp in 0..5 {
            assert!(s.foreign_map_is_absent(vp));
        }
    }

    #[test]
    fn foreign_never_steals_local_frames() {
        let mut s = small(20, 20, 30);
        for vp in 0..20 {
            s.local_ref(vp);
        }
        // All frames local; foreign cannot obtain anything.
        assert_eq!(s.foreign_ref(0), None);
        let (l, f, _) = s.residency();
        assert_eq!((l, f), (20, 0));
    }

    #[test]
    fn foreign_thrashes_within_its_own_pool() {
        // Foreign WS 20 pages but only ~10 frames available: it re-faults
        // against itself, never against local.
        let mut s = small(30, 20, 20);
        for vp in 0..20 {
            s.local_ref(vp);
        }
        for round in 0..3 {
            for vp in 0..20 {
                let r = s.foreign_ref(vp);
                assert!(r.is_some());
                let _ = round;
            }
        }
        assert!(s.stats().foreign_faults > 0);
        assert_eq!(s.stats().local_faults, 0);
        let (l, f, _) = s.residency();
        assert_eq!(l, 20);
        assert_eq!(f, 10);
    }

    #[test]
    fn local_refault_only_after_self_eviction() {
        // Local WS larger than physical memory: local evicts local, and
        // those re-references are real faults.
        let mut s = small(10, 15, 5);
        for vp in 0..15 {
            s.local_ref(vp);
        }
        assert_eq!(s.stats().local_faults, 0, "first touches are compulsory");
        // Re-reference the evicted cold pages.
        let before = s.stats().local_faults;
        s.local_ref(0);
        assert_eq!(s.stats().local_faults, before + 1);
    }

    #[test]
    fn shrink_returns_frames_to_free_list() {
        let mut s = small(50, 30, 10);
        for vp in 0..30 {
            s.local_ref(vp);
        }
        s.shrink_local_to(10);
        let (l, _, free) = s.residency();
        assert_eq!(l, 10);
        // 20 frames were free before the shrink, plus the 20 released.
        assert_eq!(free, 40);
        // Foreign can now grow into the freed frames.
        for vp in 0..10 {
            assert!(s.foreign_ref(vp).is_some());
        }
        let (_, f, _) = s.residency();
        assert_eq!(f, 10);
    }

    #[test]
    fn efficiency_is_one_when_fully_resident() {
        let mut s = small(4096, 1000, 512);
        for vp in 0..1000 {
            s.local_ref(vp);
        }
        let eff = s.foreign_efficiency(20_000);
        assert!(eff > 0.999, "eff {eff}");
    }

    #[test]
    fn efficiency_collapses_under_pressure() {
        // Foreign working set 512 pages, only ~64 frames for it.
        let mut s = small(1064, 1000, 512);
        for vp in 0..1000 {
            s.local_ref(vp);
        }
        let eff = s.foreign_efficiency(20_000);
        assert!(eff < 0.05, "thrashing should dominate: eff {eff}");
    }

    #[test]
    fn efficiency_degrades_monotonically_with_residency() {
        // Sweep available foreign frames; efficiency must not increase as
        // the pool shrinks.
        let mut prev = 1.1f64;
        for avail in [512usize, 384, 256, 128] {
            let mut s = small(1000 + avail, 1000, 512);
            for vp in 0..1000 {
                s.local_ref(vp);
            }
            let eff = s.foreign_efficiency(30_000);
            assert!(eff <= prev + 0.02, "avail {avail}: eff {eff} vs prev {prev}");
            prev = eff;
        }
    }

    impl PagingSim {
        fn foreign_map_is_absent(&self, vp: usize) -> bool {
            self.foreign_map[vp].is_none()
        }
    }
}
