//! Fine-grain run/idle burst generation.
//!
//! A [`BurstGenerator`] models the workstation owner's processor demand as
//! an alternating renewal process of *run* bursts (some local process is
//! runnable) and *idle* bursts (all local processes are blocked), exactly
//! the model of paper Sec 3.1. Burst durations are drawn from the
//! two-moment fits of the interpolated bucket parameters.

use crate::fit_table::BurstFitTable;
use crate::params::{BucketParams, BurstParamTable};
use linger_sim_core::{SimDuration, SimRng};
use linger_stats::{Distribution, Fitted};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Whether the workstation owner's processes are running or blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BurstKind {
    /// Local (owner) processes occupy the CPU.
    Run,
    /// The CPU is idle as far as local processes are concerned.
    Idle,
}

impl BurstKind {
    /// The other kind.
    pub fn flip(self) -> BurstKind {
        match self {
            BurstKind::Run => BurstKind::Idle,
            BurstKind::Idle => BurstKind::Run,
        }
    }
}

/// One burst of local CPU demand (or absence thereof).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Burst {
    /// Run or idle.
    pub kind: BurstKind,
    /// Length of the burst.
    pub duration: SimDuration,
}

/// Floor on generated burst durations.
///
/// The hyper-exponential fits put some mass arbitrarily close to zero;
/// real dispatch records cannot be shorter than a few scheduler ticks.
/// 10 µs keeps event counts bounded without visibly moving the moments.
pub const MIN_BURST: SimDuration = SimDuration::from_micros(10);

/// Generates the alternating run/idle burst sequence for one node.
///
/// The target utilization can be changed at any time (the two-level
/// generator of Fig 6 updates it from the coarse trace every 2 seconds);
/// the fitted distributions come from a shared precomputed
/// [`BurstFitTable`], so a retarget is a table lookup, not a refit.
#[derive(Debug, Clone)]
pub struct BurstGenerator {
    fits: Arc<BurstFitTable>,
    utilization: f64,
    /// Interpolated params the current distributions were fitted from;
    /// retargets that land on identical params skip the lookup entirely.
    last_params: Option<BucketParams>,
    run_dist: Option<Fitted>,
    idle_dist: Option<Fitted>,
    next_kind: BurstKind,
    rebuilds: u64,
    /// Reused uniform slab for [`Self::next_bursts_into`].
    slab: Vec<f64>,
}

impl BurstGenerator {
    /// A generator over a shared fit table, starting at the given
    /// utilization.
    ///
    /// The first burst produced is an idle burst (a fresh node is between
    /// owner demands); the sequence alternates thereafter.
    pub fn new(fits: Arc<BurstFitTable>, utilization: f64) -> Self {
        let mut g = BurstGenerator {
            fits,
            utilization: -1.0,
            last_params: None,
            run_dist: None,
            idle_dist: None,
            next_kind: BurstKind::Idle,
            rebuilds: 0,
            slab: Vec::new(),
        };
        g.set_utilization(utilization);
        g
    }

    /// A generator over a private fit table built from `table`.
    ///
    /// Prefer [`Self::new`] with a shared [`BurstFitTable`] when many
    /// generators use the same parameters (one per cluster node).
    pub fn from_table(table: BurstParamTable, utilization: f64) -> Self {
        Self::new(Arc::new(BurstFitTable::new(table)), utilization)
    }

    /// Convenience: the process-wide shared paper-calibrated table.
    pub fn paper(utilization: f64) -> Self {
        Self::new(BurstFitTable::paper_shared(), utilization)
    }

    /// Current target utilization.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// The shared fit table this generator draws from.
    pub fn fit_table(&self) -> &Arc<BurstFitTable> {
        &self.fits
    }

    /// How many times the fitted distributions were actually replaced
    /// (diagnostics; retargets skipped as no-ops don't count).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Retarget the generator to a new utilization level (Fig 6's
    /// "look up appropriate parameters based on the current coarse-grain
    /// resource data").
    ///
    /// The rebuild is skipped both when `u` is unchanged and when the new
    /// utilization interpolates to exactly the parameters already in
    /// effect (e.g. consecutive out-of-range values that clamp to the
    /// same end bucket, or a table with identical adjacent buckets).
    pub fn set_utilization(&mut self, u: f64) {
        let u = u.clamp(0.0, 1.0);
        if (u - self.utilization).abs() < 1e-12 {
            return;
        }
        self.utilization = u;
        let p: BucketParams = self.fits.params().interpolate(u);
        if self.last_params == Some(p) {
            return;
        }
        let (run, idle) = self.fits.fits_for(u);
        self.run_dist = run;
        self.idle_dist = idle;
        self.last_params = Some(p);
        self.rebuilds += 1;
    }

    /// The kind of the next burst [`Self::next_burst`] will return.
    pub fn peek_kind(&self) -> BurstKind {
        self.effective_kind()
    }

    fn effective_kind(&self) -> BurstKind {
        // Degenerate utilizations pin the process to one phase.
        if self.run_dist.is_none() {
            BurstKind::Idle
        } else if self.idle_dist.is_none() {
            BurstKind::Run
        } else {
            self.next_kind
        }
    }

    /// Draw the next burst.
    pub fn next_burst(&mut self, rng: &mut SimRng) -> Burst {
        let kind = self.effective_kind();
        let dist = match kind {
            BurstKind::Run => self.run_dist.as_ref(),
            BurstKind::Idle => self.idle_dist.as_ref(),
        };
        let secs = match dist {
            Some(d) => d.sample(rng),
            // Degenerate phase (u = 0 or u = 1): emit long fixed bursts so
            // the simulation still advances in bounded steps.
            None => 1.0,
        };
        self.next_kind = kind.flip();
        Burst {
            kind,
            duration: SimDuration::from_secs_f64(secs).max(MIN_BURST),
        }
    }

    /// Draw the next `n` bursts in one batch, replacing the contents of
    /// `out`.
    ///
    /// When both phase distributions are present and have fixed uniform
    /// draw counts ([`Fitted::fixed_draw_count`]), the generator pre-fills
    /// one slab with every uniform the `n` sequential [`Self::next_burst`]
    /// calls would have drawn — in the same order — and transforms the
    /// slab burst-by-burst. The bursts and the final RNG state are
    /// bit-identical to the sequential path; only the per-draw dispatch
    /// overhead is gone. Degenerate phases (utilization 0 or 1) and
    /// data-dependent fits (Erlang mixtures) fall back to per-burst draws.
    pub fn next_bursts_into(&mut self, rng: &mut SimRng, n: usize, out: &mut Vec<Burst>) {
        out.clear();
        if n == 0 {
            return;
        }
        let fixed = match (&self.run_dist, &self.idle_dist) {
            (Some(r), Some(i)) => r.fixed_draw_count().zip(i.fixed_draw_count()),
            _ => None,
        };
        let Some((run_n, idle_n)) = fixed else {
            for _ in 0..n {
                out.push(self.next_burst(rng));
            }
            return;
        };
        // Kinds alternate from `next_kind`; the first kind occurs
        // ceil(n/2) times and the other floor(n/2) times.
        let first = self.next_kind;
        let (first_n, second_n) = match first {
            BurstKind::Run => (run_n, idle_n),
            BurstKind::Idle => (idle_n, run_n),
        };
        let total = n.div_ceil(2) * first_n + (n / 2) * second_n;
        self.slab.clear();
        self.slab.reserve(total);
        for _ in 0..total {
            self.slab.push(rng.random());
        }
        out.reserve(n);
        let mut pos = 0;
        let mut kind = first;
        for _ in 0..n {
            let (dist, draws) = match kind {
                BurstKind::Run => (self.run_dist.as_ref().unwrap(), run_n),
                BurstKind::Idle => (self.idle_dist.as_ref().unwrap(), idle_n),
            };
            let secs = dist.sample_from_uniforms(&self.slab[pos..pos + draws]);
            pos += draws;
            out.push(Burst {
                kind,
                duration: SimDuration::from_secs_f64(secs).max(MIN_BURST),
            });
            kind = kind.flip();
        }
        self.next_kind = kind;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linger_sim_core::{domains, RngFactory};

    fn rng() -> SimRng {
        RngFactory::new(99).stream_for(domains::FINE_BURSTS, 0)
    }

    fn measure_utilization(u: f64, n: usize) -> f64 {
        let mut g = BurstGenerator::paper(u);
        let mut r = rng();
        let mut run = 0.0;
        let mut idle = 0.0;
        for _ in 0..n {
            let b = g.next_burst(&mut r);
            match b.kind {
                BurstKind::Run => run += b.duration.as_secs_f64(),
                BurstKind::Idle => idle += b.duration.as_secs_f64(),
            }
        }
        run / (run + idle)
    }

    #[test]
    fn bursts_alternate() {
        let mut g = BurstGenerator::paper(0.5);
        let mut r = rng();
        let mut prev = g.next_burst(&mut r).kind;
        for _ in 0..100 {
            let b = g.next_burst(&mut r);
            assert_eq!(b.kind, prev.flip());
            prev = b.kind;
        }
    }

    #[test]
    fn first_burst_is_idle() {
        let mut g = BurstGenerator::paper(0.5);
        assert_eq!(g.peek_kind(), BurstKind::Idle);
        let b = g.next_burst(&mut rng());
        assert_eq!(b.kind, BurstKind::Idle);
    }

    #[test]
    fn long_run_utilization_matches_target() {
        for target in [0.1, 0.2, 0.5, 0.8] {
            let got = measure_utilization(target, 200_000);
            assert!(
                (got - target).abs() < 0.02,
                "target {target}, measured {got}"
            );
        }
    }

    #[test]
    fn zero_utilization_is_all_idle() {
        let mut g = BurstGenerator::paper(0.0);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(g.next_burst(&mut r).kind, BurstKind::Idle);
        }
    }

    #[test]
    fn full_utilization_is_all_run() {
        let mut g = BurstGenerator::paper(1.0);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(g.next_burst(&mut r).kind, BurstKind::Run);
        }
    }

    #[test]
    fn bursts_respect_minimum() {
        let mut g = BurstGenerator::paper(0.05);
        let mut r = rng();
        for _ in 0..10_000 {
            let b = g.next_burst(&mut r);
            assert!(b.duration >= MIN_BURST);
        }
    }

    #[test]
    fn retargeting_changes_burst_scale() {
        let mut r = rng();
        let mut g = BurstGenerator::paper(0.1);
        let mean_low: f64 = (0..20_000)
            .map(|_| g.next_burst(&mut r))
            .filter(|b| b.kind == BurstKind::Run)
            .map(|b| b.duration.as_secs_f64())
            .sum::<f64>()
            / 10_000.0;
        g.set_utilization(0.9);
        let mean_high: f64 = (0..20_000)
            .map(|_| g.next_burst(&mut r))
            .filter(|b| b.kind == BurstKind::Run)
            .map(|b| b.duration.as_secs_f64())
            .sum::<f64>()
            / 10_000.0;
        assert!(
            mean_high > 10.0 * mean_low,
            "run bursts should lengthen with utilization: {mean_low} vs {mean_high}"
        );
    }

    #[test]
    fn degenerate_to_normal_transition() {
        let mut g = BurstGenerator::paper(0.0);
        let mut r = rng();
        let _ = g.next_burst(&mut r);
        g.set_utilization(0.5);
        // Must now produce both kinds.
        let kinds: std::collections::HashSet<_> =
            (0..10).map(|_| g.next_burst(&mut r).kind).collect();
        assert_eq!(kinds.len(), 2);
    }

    #[test]
    fn deterministic_given_same_stream() {
        let mut g1 = BurstGenerator::paper(0.37);
        let mut g2 = BurstGenerator::paper(0.37);
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..1000 {
            assert_eq!(g1.next_burst(&mut r1), g2.next_burst(&mut r2));
        }
    }

    #[test]
    fn shared_and_private_fit_tables_agree() {
        // The process-wide shared table and a freshly built private one
        // must generate identical bursts through retargets — including at
        // interpolated (cache-path) utilization levels.
        let mut g1 = BurstGenerator::paper(0.37);
        let mut g2 = BurstGenerator::from_table(BurstParamTable::paper_calibrated(), 0.37);
        let mut r1 = rng();
        let mut r2 = rng();
        for i in 0..1000 {
            if i % 100 == 0 {
                let u = [0.33, 0.871, 0.15, 0.5002][i / 100 % 4];
                g1.set_utilization(u);
                g2.set_utilization(u);
            }
            assert_eq!(g1.next_burst(&mut r1), g2.next_burst(&mut r2));
        }
    }

    #[test]
    fn batched_bursts_match_sequential_bit_for_bit() {
        let mut g1 = BurstGenerator::paper(0.37);
        let mut g2 = BurstGenerator::paper(0.37);
        let mut r1 = rng();
        let mut r2 = rng();
        let mut batch = Vec::new();
        // Odd batch size exercises the uneven run/idle draw split; repeated
        // batches exercise the carried-over alternation phase.
        for _ in 0..7 {
            g1.next_bursts_into(&mut r1, 33, &mut batch);
            let seq: Vec<Burst> = (0..33).map(|_| g2.next_burst(&mut r2)).collect();
            assert_eq!(batch, seq);
        }
        // Identical continuation: generator phase and RNG state both agree.
        assert_eq!(g1.next_burst(&mut r1), g2.next_burst(&mut r2));
    }

    #[test]
    fn batched_bursts_fall_back_for_degenerate_phases() {
        let mut g = BurstGenerator::paper(0.0);
        let mut out = Vec::new();
        g.next_bursts_into(&mut rng(), 5, &mut out);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|b| b.kind == BurstKind::Idle));
    }

    #[test]
    fn batched_bursts_fall_back_for_erlang_mix_fits() {
        // Low-variance buckets fit to Erlang mixtures, which have no fixed
        // draw count; the fallback must still match sequential generation.
        let mut buckets = *BurstParamTable::paper_calibrated().buckets();
        for b in &mut buckets {
            b.run_var = (b.run_mean * b.run_mean * 0.4).max(1e-12);
            b.idle_var = (b.idle_mean * b.idle_mean * 0.4).max(1e-12);
        }
        let t = BurstParamTable::from_buckets(buckets);
        let (run, idle) = BurstFitTable::new(t.clone()).fits_for(0.42);
        assert_eq!(run.unwrap().family(), "erlang-mix");
        assert_eq!(idle.unwrap().family(), "erlang-mix");
        let mut g1 = BurstGenerator::from_table(t.clone(), 0.42);
        let mut g2 = BurstGenerator::from_table(t, 0.42);
        let mut r1 = rng();
        let mut r2 = rng();
        let mut batch = Vec::new();
        g1.next_bursts_into(&mut r1, 50, &mut batch);
        let seq: Vec<Burst> = (0..50).map(|_| g2.next_burst(&mut r2)).collect();
        assert_eq!(batch, seq);
        assert_eq!(g1.next_burst(&mut r1), g2.next_burst(&mut r2));
    }

    #[test]
    fn identical_param_retargets_skip_rebuild() {
        // Custom table where buckets 4..=8 (20%–40%) are identical: any
        // utilization in that span interpolates to the same parameters,
        // so retargets within it must not replace the distributions.
        let mut buckets = *BurstParamTable::paper_calibrated().buckets();
        for i in 5..=8 {
            buckets[i] = buckets[4];
        }
        let t = BurstParamTable::from_buckets(buckets);
        let mut g = BurstGenerator::from_table(t, 0.22);
        assert_eq!(g.rebuilds(), 1);
        g.set_utilization(0.31);
        g.set_utilization(0.37);
        assert_eq!(g.rebuilds(), 1, "identical interpolated params must skip the rebuild");
        g.set_utilization(0.9);
        assert_eq!(g.rebuilds(), 2, "leaving the flat span must rebuild");
    }

    #[test]
    fn clamped_retargets_skip_rebuild() {
        let mut g = BurstGenerator::paper(1.0);
        assert_eq!(g.rebuilds(), 1);
        g.set_utilization(1.7); // clamps to 1.0
        g.set_utilization(42.0);
        assert_eq!(g.rebuilds(), 1);
    }
}
