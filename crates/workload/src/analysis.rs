//! Trace analysis: re-deriving the paper's characterization figures.
//!
//! * [`FineGrainAnalysis`] reproduces Sec 3.1: dispatch traces are cut into
//!   2-second windows, each window is assigned to the nearest of 21
//!   utilization buckets, and per-bucket run/idle burst moments,
//!   histograms, and hyper-exponential fits are extracted (Figs 2 and 3).
//! * [`CoarseAggregates`] reproduces Sec 3.2: the idle/non-idle split, the
//!   low-CPU share of non-idle time, and the available-memory CDFs
//!   (Fig 4).

use crate::burst::BurstKind;
use crate::coarse::{CoarseTrace, IDLE_CPU_THRESHOLD, TOTAL_MEMORY_KB};
use crate::dispatch::DispatchTrace;
use crate::params::{BucketParams, BurstParamTable, NUM_BUCKETS, WINDOW_SECS};
use linger_stats::{fit_two_moments, Ecdf, Fitted, Histogram, Online};
use serde::{Deserialize, Serialize};

/// Accumulated burst populations for one utilization bucket.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BucketAccum {
    /// Online moments of run-burst durations (seconds).
    pub run: Online,
    /// Online moments of idle-burst durations (seconds).
    pub idle: Online,
    /// Raw run-burst samples (for histograms/CDF overlays).
    pub run_samples: Vec<f64>,
    /// Raw idle-burst samples.
    pub idle_samples: Vec<f64>,
    /// Number of 2-second windows assigned to this bucket.
    pub windows: u64,
}

/// Fine-grain characterization of one or more dispatch traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FineGrainAnalysis {
    buckets: Vec<BucketAccum>,
    keep_samples: bool,
}

impl Default for FineGrainAnalysis {
    fn default() -> Self {
        Self::new(true)
    }
}

impl FineGrainAnalysis {
    /// An empty analysis. `keep_samples` controls whether raw burst
    /// durations are retained for histograms (Fig 2) or only moments
    /// (Fig 3) are kept.
    pub fn new(keep_samples: bool) -> Self {
        FineGrainAnalysis {
            buckets: (0..NUM_BUCKETS).map(|_| BucketAccum::default()).collect(),
            keep_samples,
        }
    }

    /// Ingest a dispatch trace.
    ///
    /// Each trace is divided into 2-second windows; the mean utilization
    /// of a window selects its bucket, and every burst *starting* inside
    /// the window contributes to that bucket's run or idle population
    /// (Sec 3.1's aggregation, with burst-to-window assignment by start
    /// time).
    pub fn ingest(&mut self, trace: &DispatchTrace) {
        let window_ns = (WINDOW_SECS * 1e9) as u64;
        // Pass 1: utilization of each window.
        let total_ns = trace.total_duration().as_nanos();
        if total_ns == 0 {
            return;
        }
        let n_windows = total_ns.div_ceil(window_ns) as usize;
        let mut busy_ns = vec![0u64; n_windows];
        let mut span_ns = vec![0u64; n_windows];
        let mut t = 0u64;
        for b in trace.bursts() {
            // Distribute the burst across the windows it overlaps.
            let mut start = t;
            let end = t + b.duration.as_nanos();
            while start < end {
                let w = (start / window_ns) as usize;
                let w_end = (start / window_ns + 1) * window_ns;
                let seg = end.min(w_end) - start;
                span_ns[w] += seg;
                if b.kind == BurstKind::Run {
                    busy_ns[w] += seg;
                }
                start += seg;
            }
            t = end;
        }
        let bucket_of: Vec<usize> = busy_ns
            .iter()
            .zip(&span_ns)
            .map(|(&b, &s)| {
                let u = if s == 0 { 0.0 } else { b as f64 / s as f64 };
                BurstParamTable::nearest_bucket(u)
            })
            .collect();

        // Pass 2: assign bursts to their start window's bucket.
        let mut t = 0u64;
        for b in trace.bursts() {
            let w = ((t / window_ns) as usize).min(n_windows - 1);
            let acc = &mut self.buckets[bucket_of[w]];
            let secs = b.duration.as_secs_f64();
            match b.kind {
                BurstKind::Run => {
                    acc.run.add(secs);
                    if self.keep_samples {
                        acc.run_samples.push(secs);
                    }
                }
                BurstKind::Idle => {
                    acc.idle.add(secs);
                    if self.keep_samples {
                        acc.idle_samples.push(secs);
                    }
                }
            }
            t += b.duration.as_nanos();
        }
        for (w, &bk) in bucket_of.iter().enumerate() {
            if span_ns[w] > 0 {
                self.buckets[bk].windows += 1;
            }
        }
    }

    /// Per-bucket accumulators.
    pub fn buckets(&self) -> &[BucketAccum] {
        &self.buckets
    }

    /// Measured moments as a parameter table (the Fig 3 output). Buckets
    /// with no observations inherit zeros.
    pub fn to_param_table(&self) -> BurstParamTable {
        let mut out = [BucketParams { run_mean: 0.0, run_var: 0.0, idle_mean: 0.0, idle_var: 0.0 };
            NUM_BUCKETS];
        for (i, acc) in self.buckets.iter().enumerate() {
            out[i] = BucketParams {
                run_mean: acc.run.mean(),
                run_var: acc.run.variance_population(),
                idle_mean: acc.idle.mean(),
                idle_var: acc.idle.variance_population(),
            };
        }
        BurstParamTable::from_buckets(out)
    }

    /// Method-of-moments fits for bucket `i`, `(run, idle)`; `None` where
    /// a population is empty or degenerate.
    pub fn fitted(&self, i: usize) -> (Option<Fitted>, Option<Fitted>) {
        let acc = &self.buckets[i];
        let fit = |o: &Online| {
            if o.count() < 2 || o.mean() <= 0.0 {
                None
            } else {
                Some(fit_two_moments(o.mean(), o.variance_population()))
            }
        };
        (fit(&acc.run), fit(&acc.idle))
    }

    /// Burst-duration histogram for bucket `i` over `[0, hi)` seconds with
    /// `bins` bins — the Fig 2 empirical curves.
    pub fn histogram(&self, i: usize, kind: BurstKind, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(0.0, hi, bins);
        let samples = match kind {
            BurstKind::Run => &self.buckets[i].run_samples,
            BurstKind::Idle => &self.buckets[i].idle_samples,
        };
        h.extend(samples.iter().copied());
        h
    }

    /// Empirical CDF of burst durations for bucket `i`.
    pub fn ecdf(&self, i: usize, kind: BurstKind) -> Ecdf {
        let samples = match kind {
            BurstKind::Run => &self.buckets[i].run_samples,
            BurstKind::Idle => &self.buckets[i].idle_samples,
        };
        Ecdf::from_samples(samples.clone())
    }
}

/// Section 3.2 aggregates of a coarse-trace library.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoarseAggregates {
    /// Fraction of samples in the non-idle state (paper: 0.46).
    pub non_idle_fraction: f64,
    /// Of non-idle samples, the fraction with CPU < 10% (paper: 0.76).
    pub non_idle_low_cpu_fraction: f64,
    /// Mean CPU utilization over all samples.
    pub overall_cpu: f64,
    /// Mean CPU during idle samples.
    pub idle_cpu: f64,
    /// Mean CPU during non-idle samples.
    pub non_idle_cpu: f64,
    /// Available memory (KB) distribution over all samples.
    pub mem_all: Ecdf,
    /// Available memory during idle samples.
    pub mem_idle: Ecdf,
    /// Available memory during non-idle samples.
    pub mem_non_idle: Ecdf,
}

impl CoarseAggregates {
    /// Analyze a library of coarse traces.
    pub fn analyze(traces: &[CoarseTrace]) -> Self {
        let mut non_idle = 0u64;
        let mut total = 0u64;
        let mut low = 0u64;
        let mut cpu_all = 0.0;
        let mut cpu_idle = 0.0;
        let mut cpu_non_idle = 0.0;
        let mut mem_all = Vec::new();
        let mut mem_idle = Vec::new();
        let mut mem_non_idle = Vec::new();
        for t in traces {
            for (s, &idle) in t.samples().iter().zip(t.idle_flags()) {
                total += 1;
                cpu_all += s.cpu;
                let free = (TOTAL_MEMORY_KB.saturating_sub(s.mem_used_kb)) as f64;
                mem_all.push(free);
                if idle {
                    cpu_idle += s.cpu;
                    mem_idle.push(free);
                } else {
                    non_idle += 1;
                    cpu_non_idle += s.cpu;
                    mem_non_idle.push(free);
                    if s.cpu < IDLE_CPU_THRESHOLD {
                        low += 1;
                    }
                }
            }
        }
        let idle_count = total - non_idle;
        CoarseAggregates {
            non_idle_fraction: ratio(non_idle, total),
            non_idle_low_cpu_fraction: ratio(low, non_idle),
            overall_cpu: if total == 0 { 0.0 } else { cpu_all / total as f64 },
            idle_cpu: if idle_count == 0 { 0.0 } else { cpu_idle / idle_count as f64 },
            non_idle_cpu: if non_idle == 0 { 0.0 } else { cpu_non_idle / non_idle as f64 },
            mem_all: Ecdf::from_samples(mem_all),
            mem_idle: Ecdf::from_samples(mem_idle),
            mem_non_idle: Ecdf::from_samples(mem_non_idle),
        }
    }

    /// "x KB available at least `q` of the time": the (1−q) quantile of
    /// the free-memory distribution (Fig 4 is plotted as fraction of time
    /// at least x KB are available).
    pub fn mem_available_at_least(&self, q: f64) -> f64 {
        self.mem_all.quantile(1.0 - q)
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::CoarseTraceConfig;
    use linger_sim_core::{RngFactory, SimDuration};
    use linger_stats::Distribution;

    #[test]
    fn fixed_trace_lands_in_right_bucket() {
        let f = RngFactory::new(50);
        let trace =
            DispatchTrace::synthesize_fixed(&f, 0, 0.50, SimDuration::from_secs(1200));
        let mut an = FineGrainAnalysis::new(false);
        an.ingest(&trace);
        // Windows should concentrate around bucket 10 (50%). The heavy
        // run-burst tails (CV² ≈ 5 at mid-load) legitimately spread
        // 2-second window utilizations across neighbouring buckets.
        let windows: Vec<u64> = an.buckets().iter().map(|b| b.windows).collect();
        let total: u64 = windows.iter().sum();
        let near: u64 = windows[5..=15].iter().sum();
        assert!(
            near as f64 / total as f64 > 0.8,
            "windows not concentrated near 50%: {windows:?}"
        );
        // The heavy tail skews the per-window mode below the target, but
        // the window-count-weighted mean bucket must sit near 50%.
        let mean_bucket: f64 = windows
            .iter()
            .enumerate()
            .map(|(i, &c)| i as f64 * c as f64)
            .sum::<f64>()
            / total as f64;
        assert!((8.0..=12.0).contains(&mean_bucket), "mean bucket {mean_bucket}");
    }

    #[test]
    fn rederived_moments_match_ground_truth() {
        // The heart of the Fig 3 reproduction: analyze synthetic dispatch
        // traces and compare bucket moments to the generating table.
        let f = RngFactory::new(51);
        let mut an = FineGrainAnalysis::new(false);
        for (id, u) in [(0u64, 0.10f64), (1, 0.50)] {
            let trace = DispatchTrace::synthesize_fixed(&f, id, u, SimDuration::from_secs(2400));
            an.ingest(&trace);
        }
        let truth = DispatchTrace::ground_truth_table();
        for bucket in [2usize, 10] {
            let measured = an.to_param_table().buckets()[bucket];
            let expected = truth.buckets()[bucket];
            assert!(
                (measured.run_mean - expected.run_mean).abs() / expected.run_mean < 0.2,
                "bucket {bucket} run mean {} vs {}",
                measured.run_mean,
                expected.run_mean
            );
            assert!(
                (measured.idle_mean - expected.idle_mean).abs() / expected.idle_mean < 0.2,
                "bucket {bucket} idle mean {} vs {}",
                measured.idle_mean,
                expected.idle_mean
            );
        }
    }

    #[test]
    fn fitted_cdf_tracks_empirical_cdf() {
        // Fig 2's claim: "The curves almost exactly match in run and idle
        // burst distributions." KS distance between the empirical CDF and
        // the method-of-moments fit should be small.
        let f = RngFactory::new(52);
        let trace = DispatchTrace::synthesize_fixed(&f, 0, 0.10, SimDuration::from_secs(2400));
        let mut an = FineGrainAnalysis::new(true);
        an.ingest(&trace);
        let bucket = 2; // 10%
        let (run_fit, idle_fit) = an.fitted(bucket);
        let run_fit = run_fit.expect("run fit");
        let idle_fit = idle_fit.expect("idle fit");
        let d_run = an.ecdf(bucket, BurstKind::Run).ks_distance(|x| run_fit.cdf(x));
        let d_idle = an.ecdf(bucket, BurstKind::Idle).ks_distance(|x| idle_fit.cdf(x));
        assert!(d_run < 0.08, "run KS distance {d_run}");
        assert!(d_idle < 0.08, "idle KS distance {d_idle}");
    }

    #[test]
    fn histograms_cover_samples() {
        let f = RngFactory::new(53);
        let trace = DispatchTrace::synthesize_fixed(&f, 0, 0.5, SimDuration::from_secs(300));
        let mut an = FineGrainAnalysis::new(true);
        an.ingest(&trace);
        let h = an.histogram(10, BurstKind::Run, 0.1, 50);
        assert!(h.total() > 0);
        assert_eq!(h.total(), an.buckets()[10].run_samples.len() as u64);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let mut an = FineGrainAnalysis::new(true);
        an.ingest(&DispatchTrace::default());
        assert!(an.buckets().iter().all(|b| b.windows == 0));
    }

    #[test]
    fn coarse_aggregates_match_calibration() {
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(8 * 3600),
            ..Default::default()
        };
        let f = RngFactory::new(54);
        let traces = cfg.synthesize_library(&f, 10);
        let agg = CoarseAggregates::analyze(&traces);
        assert!((agg.non_idle_fraction - 0.46).abs() < 0.07, "{}", agg.non_idle_fraction);
        assert!(
            (agg.non_idle_low_cpu_fraction - 0.76).abs() < 0.08,
            "{}",
            agg.non_idle_low_cpu_fraction
        );
        // Non-idle intervals are busier than idle ones, but only somewhat
        // ("even non-idle intervals have very low usage").
        assert!(agg.non_idle_cpu > agg.idle_cpu);
        assert!(agg.non_idle_cpu < 0.35);
        // Fig 4 anchors.
        assert!(agg.mem_available_at_least(0.90) >= 13_000.0);
        assert!(agg.mem_available_at_least(0.95) >= 9_000.0);
        // Idle vs non-idle memory distributions are close (paper: "no
        // significant difference"): compare medians within 20%.
        let mi = agg.mem_idle.quantile(0.5);
        let mn = agg.mem_non_idle.quantile(0.5);
        assert!((mi - mn).abs() / mi < 0.25, "idle {mi} vs non-idle {mn}");
    }

    #[test]
    fn aggregates_of_empty_library() {
        let agg = CoarseAggregates::analyze(&[]);
        assert_eq!(agg.non_idle_fraction, 0.0);
        assert!(agg.mem_all.is_empty());
    }
}
