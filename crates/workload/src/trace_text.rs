//! A plain-text trace interchange format.
//!
//! The Arpaci et al. traces circulated as per-machine text files of
//! periodic samples. This module defines a documented line format so
//! measured data (or data exported from other tools) can be fed to the
//! simulators without touching JSON:
//!
//! ```text
//! # linger-trace v1
//! # columns: cpu mem_used_kb keyboard
//! # one line per 2-second sample; '#' starts a comment
//! 0.031 28672 0
//! 0.875 30208 1
//! ```
//!
//! `cpu` is a fraction in [0, 1]; `mem_used_kb` a non-negative integer;
//! `keyboard` is `0`/`1`. Idle flags are re-derived by the recruitment
//! rule on load, exactly as for synthesized traces.

use crate::coarse::{CoarseSample, CoarseTrace};
use std::fmt::Write as _;
use std::path::Path;

/// Parse error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Render a trace in the v1 text format.
pub fn to_text(trace: &CoarseTrace) -> String {
    let mut out = String::with_capacity(trace.len() * 16 + 64);
    out.push_str("# linger-trace v1\n");
    out.push_str("# columns: cpu mem_used_kb keyboard\n");
    for s in trace.samples() {
        let _ = writeln!(
            out,
            "{:.4} {} {}",
            s.cpu,
            s.mem_used_kb,
            if s.keyboard { 1 } else { 0 }
        );
    }
    out
}

/// Parse the v1 text format.
pub fn from_text(text: &str) -> Result<CoarseTrace, ParseError> {
    let mut samples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let cpu: f64 = next_field(&mut fields, "cpu", line_no)?;
        if !(0.0..=1.0).contains(&cpu) {
            return Err(ParseError {
                line: line_no,
                message: format!("cpu {cpu} outside [0, 1]"),
            });
        }
        let mem: u32 = next_field(&mut fields, "mem_used_kb", line_no)?;
        let kb: u8 = next_field(&mut fields, "keyboard", line_no)?;
        let keyboard = match kb {
            0 => false,
            1 => true,
            other => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("keyboard flag must be 0 or 1, got {other}"),
                })
            }
        };
        if let Some(extra) = fields.next() {
            return Err(ParseError {
                line: line_no,
                message: format!("unexpected trailing field '{extra}'"),
            });
        }
        samples.push(CoarseSample { cpu, mem_used_kb: mem, keyboard });
    }
    if samples.is_empty() {
        return Err(ParseError { line: 0, message: "trace holds no samples".into() });
    }
    Ok(CoarseTrace::from_samples(samples))
}

fn next_field<T: std::str::FromStr>(
    fields: &mut std::str::SplitWhitespace<'_>,
    name: &str,
    line: usize,
) -> Result<T, ParseError> {
    let raw = fields.next().ok_or_else(|| ParseError {
        line,
        message: format!("missing field '{name}'"),
    })?;
    raw.parse().map_err(|_| ParseError {
        line,
        message: format!("could not parse {name} from '{raw}'"),
    })
}

/// Write a trace file atomically (temp file + rename, like the JSON
/// result writers) so readers never observe a partial trace.
pub fn save<P: AsRef<Path>>(path: P, trace: &CoarseTrace) -> std::io::Result<()> {
    linger_sim_core::write_atomic(path.as_ref(), to_text(trace).as_bytes())
}

/// Read a trace file.
pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<CoarseTrace> {
    let text = std::fs::read_to_string(path)?;
    from_text(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::CoarseTraceConfig;
    use linger_sim_core::{RngFactory, SimDuration};

    #[test]
    fn roundtrip_preserves_samples_and_flags() {
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(300),
            ..Default::default()
        };
        let t = cfg.synthesize(&RngFactory::new(1), 0);
        let back = from_text(&to_text(&t)).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.samples().iter().zip(back.samples()) {
            assert!((a.cpu - b.cpu).abs() < 1e-4, "cpu {} vs {}", a.cpu, b.cpu);
            assert_eq!(a.mem_used_kb, b.mem_used_kb);
            assert_eq!(a.keyboard, b.keyboard);
        }
        // Idle flags re-derive consistently (cpu rounding of 1e-4 cannot
        // cross the 0.10 threshold in a meaningful way for this trace).
        let diffs = t
            .idle_flags()
            .iter()
            .zip(back.idle_flags())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 0);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n0.5 1000 1  # inline comment\n# more\n0.0 900 0\n";
        let t = from_text(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.samples()[0].mem_used_kb, 1000);
        assert!(t.samples()[0].keyboard);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = from_text("0.5 1000 1\nbogus line\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("cpu"), "{}", e.message);

        let e = from_text("1.5 1000 0\n").unwrap_err();
        assert!(e.message.contains("outside"), "{}", e.message);

        let e = from_text("0.5 1000\n").unwrap_err();
        assert!(e.message.contains("keyboard"), "{}", e.message);

        let e = from_text("0.5 1000 2\n").unwrap_err();
        assert!(e.message.contains("0 or 1"), "{}", e.message);

        let e = from_text("0.5 1000 1 99\n").unwrap_err();
        assert!(e.message.contains("trailing"), "{}", e.message);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(from_text("# only comments\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(60),
            ..Default::default()
        };
        let t = cfg.synthesize(&RngFactory::new(2), 0);
        let dir = std::env::temp_dir().join("linger-trace-text-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        save(&path, &t).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), t.len());
        std::fs::remove_file(&path).ok();
    }
}
