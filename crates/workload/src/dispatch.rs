//! Synthetic scheduler-dispatch traces.
//!
//! The paper's fine-grain characterization (Sec 3.1) came from AIX kernel
//! dispatch records captured on University of Maryland workstations. Those
//! recordings are not available, so this module generates synthetic
//! dispatch traces from the calibrated generative model — the stand-in
//! documented as substitution 1 in DESIGN.md. The analysis pipeline
//! ([`crate::analysis`]) treats these exactly as it would real records:
//! it re-derives bucket moments and hyper-exponential fits from the raw
//! burst population, which is what Figs 2 and 3 plot.

use crate::burst::{Burst, BurstGenerator, BurstKind};
use crate::params::BurstParamTable;
use linger_sim_core::{domains, RngFactory, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A recorded sequence of alternating run/idle bursts on one CPU.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DispatchTrace {
    bursts: Vec<Burst>,
}

impl DispatchTrace {
    /// Wrap a raw burst sequence.
    pub fn from_bursts(bursts: Vec<Burst>) -> Self {
        DispatchTrace { bursts }
    }

    /// The recorded bursts in time order.
    pub fn bursts(&self) -> &[Burst] {
        &self.bursts
    }

    /// Number of bursts.
    pub fn len(&self) -> usize {
        self.bursts.len()
    }

    /// True if no bursts were recorded.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }

    /// Total span covered by the trace.
    pub fn total_duration(&self) -> SimDuration {
        self.bursts.iter().map(|b| b.duration).sum()
    }

    /// Overall CPU utilization of the trace.
    pub fn utilization(&self) -> f64 {
        let mut run = 0.0;
        let mut total = 0.0;
        for b in &self.bursts {
            let d = b.duration.as_secs_f64();
            total += d;
            if b.kind == BurstKind::Run {
                run += d;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            run / total
        }
    }

    /// Synthesize a trace holding a fixed target utilization for
    /// `duration` (the paper's "several twenty-minute intervals" at a
    /// given load level).
    ///
    /// Uses [`BurstGenerator::next_bursts_into`] in chunks: batched
    /// sampling yields bursts bit-identical to the per-draw loop in the
    /// same order, and the over-drawn tail of the final chunk only
    /// advances the per-trace `DISPATCH` stream, which is dropped here —
    /// so the trace matches per-draw generation exactly (see
    /// `fixed_synthesis_matches_per_draw_generation`).
    pub fn synthesize_fixed(
        factory: &RngFactory,
        trace_id: u64,
        utilization: f64,
        duration: SimDuration,
    ) -> Self {
        const CHUNK: usize = 64;
        let mut gen = BurstGenerator::paper(utilization);
        let mut rng = factory.stream_for(domains::DISPATCH, trace_id);
        let mut bursts = Vec::new();
        let mut batch = Vec::with_capacity(CHUNK);
        let mut elapsed = 0u64;
        let limit = duration.as_nanos();
        'fill: while elapsed < limit {
            gen.next_bursts_into(&mut rng, CHUNK, &mut batch);
            for &b in &batch {
                let mut b = b;
                // Trim the final burst to the requested duration.
                if elapsed + b.duration.as_nanos() > limit {
                    b.duration = SimDuration::from_nanos(limit - elapsed);
                    if b.duration.is_zero() {
                        break 'fill;
                    }
                }
                elapsed += b.duration.as_nanos();
                bursts.push(b);
                if elapsed >= limit {
                    break 'fill;
                }
            }
        }
        DispatchTrace { bursts }
    }

    /// Synthesize a trace whose utilization wanders across levels: every
    /// `dwell` the target jumps to a fresh uniform level in
    /// `[lo, hi]`. Exercises all analysis buckets in one trace.
    pub fn synthesize_wandering(
        factory: &RngFactory,
        trace_id: u64,
        duration: SimDuration,
        dwell: SimDuration,
        (lo, hi): (f64, f64),
    ) -> Self {
        assert!(lo <= hi && (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        let mut level_rng = factory.stream_for(domains::DISPATCH, trace_id ^ 0x5EED);
        let mut gen = BurstGenerator::paper(lo + (hi - lo) * level_rng.random::<f64>());
        let dwell_ns = dwell.as_nanos().max(1);
        let mut next_jump = dwell_ns;
        Self::generate(
            factory,
            trace_id,
            duration,
            move |elapsed_ns, r: &mut linger_sim_core::SimRng| {
                if elapsed_ns >= next_jump {
                    next_jump = elapsed_ns + dwell_ns;
                    let _ = r; // level stream kept separate for determinism
                    Some(lo + (hi - lo) * level_rng.random::<f64>())
                } else {
                    None
                }
            },
            &mut gen,
        )
    }

    fn generate<F>(
        factory: &RngFactory,
        trace_id: u64,
        duration: SimDuration,
        mut retarget: F,
        gen: &mut BurstGenerator,
    ) -> Self
    where
        F: FnMut(u64, &mut linger_sim_core::SimRng) -> Option<f64>,
    {
        let mut rng = factory.stream_for(domains::DISPATCH, trace_id);
        let mut bursts = Vec::new();
        let mut elapsed = 0u64;
        let limit = duration.as_nanos();
        while elapsed < limit {
            if let Some(u) = retarget(elapsed, &mut rng) {
                gen.set_utilization(u);
            }
            let mut b = gen.next_burst(&mut rng);
            // Trim the final burst to the requested duration.
            if elapsed + b.duration.as_nanos() > limit {
                b.duration = SimDuration::from_nanos(limit - elapsed);
                if b.duration.is_zero() {
                    break;
                }
            }
            elapsed += b.duration.as_nanos();
            bursts.push(b);
        }
        DispatchTrace { bursts }
    }

    /// The paper table the generator is calibrated to — exported so tests
    /// can compare re-derived moments against ground truth.
    pub fn ground_truth_table() -> BurstParamTable {
        BurstParamTable::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_trace_hits_target_utilization() {
        let f = RngFactory::new(31);
        for (id, target) in [(0u64, 0.1), (1, 0.5), (2, 0.8)] {
            let t = DispatchTrace::synthesize_fixed(&f, id, target, SimDuration::from_secs(1200));
            let u = t.utilization();
            assert!((u - target).abs() < 0.03, "target {target}, got {u}");
        }
    }

    #[test]
    fn trace_duration_is_exact() {
        let f = RngFactory::new(32);
        let d = SimDuration::from_secs(60);
        let t = DispatchTrace::synthesize_fixed(&f, 0, 0.4, d);
        assert_eq!(t.total_duration(), d);
    }

    #[test]
    fn bursts_alternate_in_trace() {
        let f = RngFactory::new(33);
        let t = DispatchTrace::synthesize_fixed(&f, 0, 0.5, SimDuration::from_secs(30));
        for w in t.bursts().windows(2) {
            assert_eq!(w[1].kind, w[0].kind.flip());
        }
    }

    #[test]
    fn wandering_trace_covers_levels() {
        let f = RngFactory::new(34);
        let t = DispatchTrace::synthesize_wandering(
            &f,
            0,
            SimDuration::from_secs(600),
            SimDuration::from_secs(2),
            (0.05, 0.95),
        );
        // Split into 2 s windows and check utilization spread.
        let mut windows = Vec::new();
        let mut acc_run = 0.0;
        let mut acc = 0.0;
        for b in t.bursts() {
            let d = b.duration.as_secs_f64();
            acc += d;
            if b.kind == BurstKind::Run {
                acc_run += d;
            }
            if acc >= 2.0 {
                windows.push(acc_run / acc);
                acc = 0.0;
                acc_run = 0.0;
            }
        }
        let lo = windows.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = windows.iter().cloned().fold(0.0f64, f64::max);
        assert!(lo < 0.25, "low windows missing: min {lo}");
        assert!(hi > 0.75, "high windows missing: max {hi}");
    }

    #[test]
    fn deterministic_per_trace_id() {
        let f = RngFactory::new(35);
        let a = DispatchTrace::synthesize_fixed(&f, 1, 0.5, SimDuration::from_secs(10));
        let b = DispatchTrace::synthesize_fixed(&f, 1, 0.5, SimDuration::from_secs(10));
        assert_eq!(a.bursts(), b.bursts());
        let c = DispatchTrace::synthesize_fixed(&f, 2, 0.5, SimDuration::from_secs(10));
        assert_ne!(a.bursts(), c.bursts());
    }

    #[test]
    fn fixed_synthesis_matches_per_draw_generation() {
        // The batched path must reproduce the per-draw loop exactly —
        // this is the guarantee that lets figures keep byte-identical
        // JSON after the batching change.
        let f = RngFactory::new(37);
        for (id, target) in [(0u64, 0.05), (1, 0.5), (2, 0.9)] {
            let d = SimDuration::from_secs(600);
            let batched = DispatchTrace::synthesize_fixed(&f, id, target, d);
            let mut gen = BurstGenerator::paper(target);
            let per_draw = DispatchTrace::generate(&f, id, d, |_, _| None, &mut gen);
            assert_eq!(batched.bursts(), per_draw.bursts(), "target {target}");
        }
    }

    #[test]
    fn zero_utilization_trace_is_single_idle_stretch() {
        let f = RngFactory::new(36);
        let t = DispatchTrace::synthesize_fixed(&f, 0, 0.0, SimDuration::from_secs(5));
        assert!(t.bursts().iter().all(|b| b.kind == BurstKind::Idle));
        assert_eq!(t.utilization(), 0.0);
    }
}
