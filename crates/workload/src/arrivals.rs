//! Deterministic open-arrival process generation.
//!
//! The batch harness replays a fixed closed population; the serving mode
//! instead draws foreign-job arrivals from a stochastic process, window by
//! window, over sustained horizons. Two processes are supported:
//!
//! * **Poisson** — a constant-rate memoryless stream, the classic open
//!   M/·/· offered-load model;
//! * **MMPP** — a two-phase Markov-modulated Poisson process: the rate
//!   alternates between a *slow* and a *fast* phase with exponentially
//!   distributed dwell times, producing the bursty day/night and
//!   flash-crowd patterns a constant rate cannot.
//!
//! Determinism contract: the generator derives every draw from
//! [`domains::ARRIVALS`] streams of the experiment's master seed. Stream
//! index `0` carries the phase-modulation chain; stream `w + 1` carries
//! window `w`'s arrival count and per-job demands. Because each window's
//! draws come from its own stream and the phase chain is advanced exactly
//! once per window, the schedule is byte-identical regardless of worker
//! count, sharding, or telemetry — the same discipline every other
//! simulator input already follows.

use linger_sim_core::{domains, RngFactory, SimDuration, SimRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::SAMPLE_PERIOD_SECS;

/// The stochastic arrival process shaping when foreign jobs appear.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Constant-rate Poisson arrivals.
    Poisson {
        /// Mean arrivals per simulated hour.
        rate_per_hour: f64,
    },
    /// Two-phase Markov-modulated Poisson process. The process dwells in
    /// the slow phase (rate `slow_rate_per_hour`) for an exponentially
    /// distributed time with mean `slow_dwell_secs`, then switches to the
    /// fast phase, and so on. Phase transitions are evaluated once per
    /// window (the 2-second coarse sample period), which is far below any
    /// realistic dwell time.
    Mmpp {
        /// Arrival rate per hour while in the slow phase.
        slow_rate_per_hour: f64,
        /// Arrival rate per hour while in the fast (burst) phase.
        fast_rate_per_hour: f64,
        /// Mean dwell time in the slow phase, seconds.
        slow_dwell_secs: f64,
        /// Mean dwell time in the fast phase, seconds.
        fast_dwell_secs: f64,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrival rate per hour (phase-weighted for MMPP).
    pub fn mean_rate_per_hour(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_hour } => rate_per_hour,
            ArrivalProcess::Mmpp {
                slow_rate_per_hour,
                fast_rate_per_hour,
                slow_dwell_secs,
                fast_dwell_secs,
            } => {
                let total = slow_dwell_secs + fast_dwell_secs;
                if total <= 0.0 {
                    return 0.0;
                }
                (slow_rate_per_hour * slow_dwell_secs + fast_rate_per_hour * fast_dwell_secs)
                    / total
            }
        }
    }
}

/// Full arrival configuration: the process plus the per-job demand model.
///
/// Demands are exponential in CPU (mean `mean_cpu_secs`) with a fixed
/// memory footprint — the same job shape the closed-family generator
/// uses, so open and closed runs are comparable cell for cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Mean CPU demand per job, seconds (exponentially distributed).
    pub mean_cpu_secs: f64,
    /// Memory footprint per job, KB (fixed).
    pub mem_kb: u32,
}

impl ArrivalConfig {
    /// A zero-rate configuration: the generator never produces arrivals.
    /// Used as the inert default so closed-mode configs carry a valid
    /// (and digest-stable) service section.
    pub fn disabled() -> Self {
        ArrivalConfig {
            process: ArrivalProcess::Poisson { rate_per_hour: 0.0 },
            mean_cpu_secs: 0.0,
            mem_kb: 0,
        }
    }

    /// Offered load against a fleet: mean arrival rate × mean CPU demand
    /// ÷ (nodes × 3600). Values above 1.0 oversubscribe the fleet.
    pub fn offered_load(&self, nodes: usize) -> f64 {
        if nodes == 0 {
            return 0.0;
        }
        self.process.mean_rate_per_hour() * self.mean_cpu_secs / (nodes as f64 * 3600.0)
    }
}

/// Which MMPP phase the generator is currently dwelling in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Slow,
    Fast,
}

/// Window-stepped arrival generator.
///
/// Call [`begin_window`](ArrivalGenerator::begin_window) exactly once per
/// simulation window, in window order; it returns how many jobs arrive in
/// that window. Then call [`draw_demand`](ArrivalGenerator::draw_demand)
/// once per arrival to obtain the job's CPU demand and memory footprint.
/// All draws for window `w` come from stream `w + 1`, so a window's
/// schedule depends only on the seed and the window index plus the
/// once-per-window phase chain.
#[derive(Debug)]
pub struct ArrivalGenerator {
    cfg: ArrivalConfig,
    factory: RngFactory,
    /// Phase-modulation chain (stream 0); only advanced for MMPP.
    phase_rng: SimRng,
    phase: Phase,
    /// Remaining dwell time in the current phase, seconds.
    dwell_left: f64,
    /// Per-window draw stream for the window most recently begun.
    window_rng: Option<SimRng>,
    next_window: u64,
}

impl ArrivalGenerator {
    /// Build a generator for `cfg` seeded from the experiment master seed.
    pub fn new(cfg: &ArrivalConfig, seed: u64) -> Self {
        let factory = RngFactory::new(seed);
        let mut phase_rng = factory.stream_for(domains::ARRIVALS, 0);
        let (phase, dwell_left) = match cfg.process {
            ArrivalProcess::Poisson { .. } => (Phase::Slow, f64::INFINITY),
            ArrivalProcess::Mmpp {
                slow_dwell_secs, ..
            } => {
                let d = draw_exp(&mut phase_rng, slow_dwell_secs);
                (Phase::Slow, d)
            }
        };
        ArrivalGenerator {
            cfg: *cfg,
            factory,
            phase_rng,
            phase,
            dwell_left,
            window_rng: None,
            next_window: 0,
        }
    }

    /// Current arrival rate per hour given the modulation phase.
    fn current_rate(&self) -> f64 {
        match self.cfg.process {
            ArrivalProcess::Poisson { rate_per_hour } => rate_per_hour,
            ArrivalProcess::Mmpp {
                slow_rate_per_hour,
                fast_rate_per_hour,
                ..
            } => match self.phase {
                Phase::Slow => slow_rate_per_hour,
                Phase::Fast => fast_rate_per_hour,
            },
        }
    }

    /// Advance the MMPP phase chain by one window.
    fn step_phase(&mut self) {
        if let ArrivalProcess::Mmpp {
            slow_dwell_secs,
            fast_dwell_secs,
            ..
        } = self.cfg.process
        {
            self.dwell_left -= SAMPLE_PERIOD_SECS as f64;
            while self.dwell_left <= 0.0 {
                let (next, mean_dwell) = match self.phase {
                    Phase::Slow => (Phase::Fast, fast_dwell_secs),
                    Phase::Fast => (Phase::Slow, slow_dwell_secs),
                };
                self.phase = next;
                self.dwell_left += draw_exp(&mut self.phase_rng, mean_dwell);
            }
        }
    }

    /// Begin the next window and return its arrival count.
    ///
    /// Windows are implicit and sequential: the first call is window 0,
    /// the second window 1, and so on — matching the simulator's own
    /// window counter, which steps the generator exactly once per window.
    pub fn begin_window(&mut self) -> u32 {
        let w = self.next_window;
        self.next_window += 1;
        self.step_phase();
        let rate = self.current_rate();
        let lambda = rate / 3600.0 * SAMPLE_PERIOD_SECS as f64;
        if lambda <= 0.0 {
            self.window_rng = None;
            return 0;
        }
        let mut rng = self
            .factory
            .stream_for(domains::ARRIVALS, w + 1);
        let count = draw_poisson(&mut rng, lambda);
        self.window_rng = Some(rng);
        count
    }

    /// Whether the current window has a demand stream to draw from
    /// (true whenever its arrival rate was positive, even at count 0).
    /// Backpressure drains its deferred deficit only through windows
    /// with a stream, keeping every draw attributable to a window.
    pub fn has_window_stream(&self) -> bool {
        self.window_rng.is_some()
    }

    /// Draw one arrival's `(cpu_demand, mem_kb)` for the current window.
    ///
    /// # Panics
    ///
    /// Panics if called more times than the count the last
    /// [`begin_window`](ArrivalGenerator::begin_window) returned allows a
    /// stream for (i.e. before any window began, or after a zero-count
    /// window).
    pub fn draw_demand(&mut self) -> (SimDuration, u32) {
        let rng = self
            .window_rng
            .as_mut()
            .expect("draw_demand called outside a window with arrivals");
        let cpu = draw_exp(rng, self.cfg.mean_cpu_secs).max(1e-9);
        (SimDuration::from_secs_f64(cpu), self.cfg.mem_kb)
    }
}

/// Exponential draw with the crate's standard `-(1 - u).ln() * mean` form.
fn draw_exp(rng: &mut SimRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.random();
    -(1.0 - u).ln() * mean
}

/// Knuth's product-form Poisson sampler. λ here is at most a few hundred
/// (per-window arrivals over 2 s), well within the algorithm's comfort
/// zone; `exp(-λ)` underflow would need λ > ~700.
fn draw_poisson(rng: &mut SimRng, lambda: f64) -> u32 {
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        let u: f64 = rng.random();
        p *= u;
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_cfg(rate: f64) -> ArrivalConfig {
        ArrivalConfig {
            process: ArrivalProcess::Poisson { rate_per_hour: rate },
            mean_cpu_secs: 120.0,
            mem_kb: 8 * 1024,
        }
    }

    #[test]
    fn zero_rate_never_arrives() {
        let mut g = ArrivalGenerator::new(&ArrivalConfig::disabled(), 7);
        for _ in 0..10_000 {
            assert_eq!(g.begin_window(), 0);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = poisson_cfg(1800.0);
        let mut a = ArrivalGenerator::new(&cfg, 42);
        let mut b = ArrivalGenerator::new(&cfg, 42);
        for _ in 0..5_000 {
            let (na, nb) = (a.begin_window(), b.begin_window());
            assert_eq!(na, nb);
            for _ in 0..na {
                assert_eq!(a.draw_demand(), b.draw_demand());
            }
        }
    }

    #[test]
    fn different_seed_different_schedule() {
        let cfg = poisson_cfg(1800.0);
        let mut a = ArrivalGenerator::new(&cfg, 1);
        let mut b = ArrivalGenerator::new(&cfg, 2);
        let mut diff = 0u32;
        for _ in 0..2_000 {
            if a.begin_window() != b.begin_window() {
                diff += 1;
            }
        }
        assert!(diff > 0, "independent seeds should diverge");
    }

    #[test]
    fn poisson_mean_matches_rate() {
        // 1800/hour over 2 s windows → λ = 1 per window.
        let cfg = poisson_cfg(1800.0);
        let mut g = ArrivalGenerator::new(&cfg, 9);
        let windows = 50_000u64;
        let mut total = 0u64;
        for _ in 0..windows {
            total += g.begin_window() as u64;
        }
        let mean = total as f64 / windows as f64;
        assert!(
            (mean - 1.0).abs() < 0.05,
            "poisson mean {mean} off from λ=1"
        );
    }

    #[test]
    fn demands_are_exponential_with_requested_mean() {
        let cfg = poisson_cfg(3600.0);
        let mut g = ArrivalGenerator::new(&cfg, 5);
        let (mut n, mut sum) = (0u64, 0.0f64);
        for _ in 0..20_000 {
            let c = g.begin_window();
            for _ in 0..c {
                let (cpu, mem) = g.draw_demand();
                sum += cpu.as_secs_f64();
                n += 1;
                assert_eq!(mem, 8 * 1024);
            }
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 120.0).abs() / 120.0 < 0.05,
            "cpu mean {mean} off from 120"
        );
    }

    #[test]
    fn mmpp_long_run_rate_is_phase_weighted() {
        let cfg = ArrivalConfig {
            process: ArrivalProcess::Mmpp {
                slow_rate_per_hour: 360.0,
                fast_rate_per_hour: 3600.0,
                slow_dwell_secs: 600.0,
                fast_dwell_secs: 200.0,
            },
            mean_cpu_secs: 60.0,
            mem_kb: 1024,
        };
        // Phase-weighted: (360·600 + 3600·200)/800 = 1170/hour → λ = 0.65.
        assert!((cfg.process.mean_rate_per_hour() - 1170.0).abs() < 1e-9);
        let mut g = ArrivalGenerator::new(&cfg, 3);
        let windows = 400_000u64;
        let mut total = 0u64;
        for _ in 0..windows {
            total += g.begin_window() as u64;
        }
        let mean = total as f64 / windows as f64;
        assert!(
            (mean - 0.65).abs() / 0.65 < 0.08,
            "mmpp mean {mean} off from 0.65"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson_at_equal_mean() {
        let mmpp = ArrivalConfig {
            process: ArrivalProcess::Mmpp {
                slow_rate_per_hour: 180.0,
                fast_rate_per_hour: 7200.0,
                slow_dwell_secs: 600.0,
                fast_dwell_secs: 150.0,
            },
            mean_cpu_secs: 60.0,
            mem_kb: 1024,
        };
        let mean_rate = mmpp.process.mean_rate_per_hour();
        let pois = ArrivalConfig {
            process: ArrivalProcess::Poisson {
                rate_per_hour: mean_rate,
            },
            mean_cpu_secs: 60.0,
            mem_kb: 1024,
        };
        let var_ratio = |cfg: &ArrivalConfig| {
            let mut g = ArrivalGenerator::new(cfg, 11);
            let windows = 100_000u64;
            let (mut s, mut s2) = (0.0f64, 0.0f64);
            for _ in 0..windows {
                let c = g.begin_window() as f64;
                s += c;
                s2 += c * c;
            }
            let mean = s / windows as f64;
            let var = s2 / windows as f64 - mean * mean;
            var / mean // index of dispersion; 1 for Poisson
        };
        let d_mmpp = var_ratio(&mmpp);
        let d_pois = var_ratio(&pois);
        assert!(
            d_mmpp > d_pois * 1.5,
            "mmpp dispersion {d_mmpp} not above poisson {d_pois}"
        );
    }

    #[test]
    fn offered_load_formula() {
        // 1800 jobs/hour × 120 s mean = 60 node-hours of work per hour.
        let cfg = poisson_cfg(1800.0);
        assert!((cfg.offered_load(60) - 1.0).abs() < 1e-12);
        assert!((cfg.offered_load(120) - 0.5).abs() < 1e-12);
        assert_eq!(cfg.offered_load(0), 0.0);
    }

    #[test]
    fn window_streams_are_independent_of_history() {
        // Window w's count depends only on (seed, w, phase). For Poisson
        // the phase is fixed, so skipping draw_demand calls must not
        // change later windows.
        let cfg = poisson_cfg(3600.0);
        let mut a = ArrivalGenerator::new(&cfg, 17);
        let mut b = ArrivalGenerator::new(&cfg, 17);
        let mut counts_a = Vec::new();
        for _ in 0..500 {
            let c = a.begin_window();
            for _ in 0..c {
                a.draw_demand(); // consume demand draws
            }
            counts_a.push(c);
        }
        let counts_b: Vec<u32> = (0..500).map(|_| b.begin_window()).collect();
        assert_eq!(counts_a, counts_b);
    }
}
