//! Shared workload-realization cache.
//!
//! Every policy evaluation under common random numbers deliberately
//! replays the *same* owner-workload realization: the per-node
//! [`CoarseTrace`]s, their phase offsets, and the window-major
//! [`WindowTable`] derive only from `(master seed, stream domain,
//! node id)` — never from the policy, the cost parameters, or the thread
//! that happens to run the simulation. Re-synthesizing them for each of
//! the four policies at every sweep point is therefore pure redundant
//! work: the bytes are provably identical.
//!
//! [`TraceLibrary`] is a content-keyed store of those realizations. The
//! key is `(CoarseTraceConfig, seed, node count)` — the *logical* inputs
//! of synthesis, bit-exact on the float fields — so a cache hit returns
//! exactly the `Arc` a miss would have built, and results are
//! byte-identical whether the cache is cold, warm, bypassed
//! (`LINGER_NO_TRACE_CACHE=1`), or evicted mid-sweep. Misses synthesize
//! deterministically; hits are pure reads.
//!
//! Memory is bounded: each entry's resident bytes are estimated at
//! insertion and least-recently-used entries are dropped once the budget
//! (`LINGER_TRACE_CACHE_BYTES`, default 1 GiB) is exceeded. Eviction is
//! safe by construction — holders keep their `Arc`s alive, and a re-miss
//! re-synthesizes the identical realization.

use crate::coarse::{CoarseTrace, CoarseTraceConfig};
use crate::generator::LocalWorkload;
use crate::stream::{
    auto_chunk_windows, forced_chunk_windows, monolithic_bytes_estimate, window_budget_bytes,
    StreamSpec, WindowCursor,
};
use linger_sim_core::{par_map_indexed, RngFactory};
use serde::Serialize;
use std::collections::{hash_map, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Window-major struct-of-arrays matrix of every node's `(cpu, mem,
/// idle)` per window.
///
/// Each per-window row is stored as three parallel dense arrays rather
/// than one array of 16-byte cells: the CPU sweep of the cluster
/// simulators touches only the `f64` lane, the memory refresh only the
/// `u32` lane, and the recruitment scan reads the idle flags 64 nodes at
/// a time as packed bit words — so each pass streams the minimum number
/// of cache lines for the field it actually consumes.
///
/// Row `w` holds all nodes for window `w % period()`, in node order.
/// Because every [`CoarseTrace`] lookup wraps modulo the trace length,
/// row `w` equals the direct per-trace lookups at *any* `w`, not just
/// `w < period()`: for traces of length `period`,
/// `(offset + (w % period)) % period == (offset + w) % period`.
#[derive(Debug, Clone)]
pub struct WindowTable {
    period: usize,
    nodes: usize,
    /// One bit per (window, node): nodes per row padded to a whole number
    /// of 64-bit words so rows start word-aligned.
    words_per_row: usize,
    cpu: Vec<f64>,
    mem_kb: Vec<u32>,
    idle: Vec<u64>,
}

impl WindowTable {
    /// Gather `traces` (with per-node phase `offsets`) into a window-major
    /// table.
    ///
    /// Returns `None` when the node set is empty or the traces do not all
    /// share one period — the callers' slow path then reads traces
    /// directly.
    pub fn build(traces: &[Arc<CoarseTrace>], offsets: &[usize]) -> Option<WindowTable> {
        let period = traces.first()?.len();
        if period == 0 || traces.iter().any(|t| t.len() != period) {
            return None;
        }
        let nodes = traces.len();
        let words_per_row = nodes.div_ceil(64);
        let mut cpu = Vec::with_capacity(period * nodes);
        let mut mem_kb = Vec::with_capacity(period * nodes);
        let mut idle = vec![0u64; period * words_per_row];
        for w in 0..period {
            for (n, (trace, &offset)) in traces.iter().zip(offsets).enumerate() {
                let i = offset + w;
                let s = trace.sample(i);
                cpu.push(s.cpu);
                mem_kb.push(s.mem_used_kb);
                if trace.is_idle(i) {
                    idle[w * words_per_row + n / 64] |= 1u64 << (n % 64);
                }
            }
        }
        Some(WindowTable { period, nodes, words_per_row, cpu, mem_kb, idle })
    }

    /// Number of windows before the table wraps (the shared trace length).
    pub fn period(&self) -> usize {
        self.period
    }

    /// Number of node columns per row.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// `u64` words per idle row (`nodes` rounded up to a multiple of 64).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Owner CPU demand (in `[0, 1]`) of every node for window `w`
    /// (wraps modulo the period).
    pub fn cpu_row(&self, w: usize) -> &[f64] {
        let start = (w % self.period) * self.nodes;
        &self.cpu[start..start + self.nodes]
    }

    /// Owner-resident memory (KB) of every node for window `w` (wraps
    /// modulo the period).
    pub fn mem_row(&self, w: usize) -> &[u32] {
        let start = (w % self.period) * self.nodes;
        &self.mem_kb[start..start + self.nodes]
    }

    /// Recruitment idle flags for window `w` as packed bit words: bit
    /// `n % 64` of word `n / 64` ⇔ node `n` is idle (wraps modulo the
    /// period). Bits at or past `nodes()` are zero.
    pub fn idle_row(&self, w: usize) -> &[u64] {
        let start = (w % self.period) * self.words_per_row;
        &self.idle[start..start + self.words_per_row]
    }

    fn approx_bytes(&self) -> usize {
        self.cpu.len() * std::mem::size_of::<f64>()
            + self.mem_kb.len() * std::mem::size_of::<u32>()
            + self.idle.len() * std::mem::size_of::<u64>()
    }
}

/// One fully synthesized owner workload for a cluster: per-node traces,
/// phase offsets, and the prebuilt window table.
///
/// This is the single shared helper behind `ClusterSim::new`, the
/// parallel-program simulators, and the bench drivers — the one place
/// that implements the `RngFactory` / [`LocalWorkload::random_offset`]
/// derivation convention, so the consumers cannot drift.
#[derive(Debug)]
pub struct WorkloadRealization {
    traces: Vec<Arc<CoarseTrace>>,
    offsets: Vec<usize>,
    window_table: Option<Arc<WindowTable>>,
    /// `Some` for a streamed realization: no traces or table are
    /// resident; consumers realize windows through a [`WindowCursor`].
    stream: Option<StreamSpec>,
}

impl WorkloadRealization {
    /// Deterministically synthesize the realization for `nodes` machines
    /// from `seed`.
    ///
    /// Per-node traces come from the `COARSE_TRACE`/`MEMORY` streams of
    /// machine `n`, offsets from its `TRACE_OFFSET` stream — exactly the
    /// streams `ClusterSim::new` historically drew, so cached and
    /// uncached construction are bit-identical. Per-node synthesis is
    /// index-keyed, so it fans out over the process worker pool without
    /// affecting the bytes produced.
    ///
    /// When the fully materialized realization would not fit the window
    /// byte budget (`LINGER_WINDOW_BUDGET_BYTES`, default 4 GiB) — or
    /// `LINGER_WINDOW_CHUNK` forces it — this returns a *streamed*
    /// realization instead: only the offsets are computed up front and
    /// windows are realized on demand in chunks, byte-identical to the
    /// monolithic table at any chunk size.
    pub fn synthesize(cfg: &CoarseTraceConfig, seed: u64, nodes: usize) -> WorkloadRealization {
        let period = cfg.sample_count();
        let forced = forced_chunk_windows();
        if nodes > 0 && period > 0 {
            let budget = window_budget_bytes();
            if forced.is_some() || monolithic_bytes_estimate(nodes, period) > budget {
                let chunk = forced.unwrap_or_else(|| auto_chunk_windows(nodes, period, budget));
                return Self::synthesize_streamed(cfg, seed, nodes, chunk);
            }
        }
        Self::synthesize_monolithic(cfg, seed, nodes)
    }

    /// [`Self::synthesize`] pinned to the materialized (traces + window
    /// table) representation, regardless of budget knobs.
    pub fn synthesize_monolithic(
        cfg: &CoarseTraceConfig,
        seed: u64,
        nodes: usize,
    ) -> WorkloadRealization {
        let factory = RngFactory::new(seed);
        let traces: Vec<Arc<CoarseTrace>> =
            par_map_indexed(nodes, None, |n| Arc::new(cfg.synthesize(&factory, n as u64)));
        let offsets: Vec<usize> = traces
            .iter()
            .enumerate()
            .map(|(n, t)| LocalWorkload::random_offset(t, &factory, n as u64))
            .collect();
        let window_table = WindowTable::build(&traces, &offsets).map(Arc::new);
        WorkloadRealization { traces, offsets, window_table, stream: None }
    }

    /// [`Self::synthesize`] pinned to the streamed representation with an
    /// explicit chunk size (in windows), regardless of budget knobs.
    ///
    /// Offsets are the same `TRACE_OFFSET`-stream draws as the monolithic
    /// path (they depend only on the replay period), so a streamed
    /// realization replays the *identical* workload — the proptests pin
    /// full-simulation byte equality across representations.
    pub fn synthesize_streamed(
        cfg: &CoarseTraceConfig,
        seed: u64,
        nodes: usize,
        chunk_windows: usize,
    ) -> WorkloadRealization {
        let period = cfg.sample_count();
        assert!(period > 0, "streamed realization needs a nonzero period");
        let factory = RngFactory::new(seed);
        let offsets: Vec<usize> = (0..nodes)
            .map(|n| LocalWorkload::random_offset_for_len(period, &factory, n as u64))
            .collect();
        let spec = StreamSpec {
            cfg: cfg.clone(),
            seed,
            nodes,
            chunk_windows: chunk_windows.clamp(1, period),
        };
        WorkloadRealization {
            traces: Vec::new(),
            offsets,
            window_table: None,
            stream: Some(spec),
        }
    }

    /// The per-node coarse traces (empty for a streamed realization).
    pub fn traces(&self) -> &[Arc<CoarseTrace>] {
        &self.traces
    }

    /// The per-node phase offsets (in samples).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The prebuilt window-major table, if the traces share one period
    /// (always `None` for a streamed realization).
    pub fn window_table(&self) -> Option<&Arc<WindowTable>> {
        self.window_table.as_ref()
    }

    /// The streamed-realization spec, if this realization streams.
    pub fn stream_spec(&self) -> Option<&StreamSpec> {
        self.stream.as_ref()
    }

    /// A fresh window cursor at window 0, for streamed realizations.
    ///
    /// Each simulation run needs its own cursor (the per-node generator
    /// streams are mutable); the realization itself stays shareable.
    pub fn cursor(&self) -> Option<WindowCursor> {
        self.stream.as_ref().map(|spec| WindowCursor::new(spec, &self.offsets))
    }

    /// Number of nodes this realization covers.
    pub fn nodes(&self) -> usize {
        match &self.stream {
            Some(spec) => spec.nodes,
            None => self.traces.len(),
        }
    }

    /// Estimated resident bytes (samples + idle flags + offsets + table;
    /// just the offsets for a streamed realization — cursors own the
    /// chunk arena and are not cached).
    pub fn approx_bytes(&self) -> usize {
        let per_sample = std::mem::size_of::<crate::coarse::CoarseSample>() + 1;
        let traces: usize = self.traces.iter().map(|t| t.len() * per_sample).sum();
        let table = self.window_table.as_ref().map_or(0, |t| t.approx_bytes());
        traces + table + self.offsets.len() * std::mem::size_of::<usize>()
    }
}

/// Cache key: the logical inputs of synthesis, bit-exact.
///
/// Float fields are keyed by `to_bits`, so two configs compare equal iff
/// synthesis would walk identical sample paths. Thread identity, policy,
/// and cost parameters are deliberately absent: they cannot influence the
/// realization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RealizationKey {
    duration_ns: u64,
    active_bits: u64,
    away_bits: u64,
    keyboard_bits: u64,
    persistence_bits: u64,
    diurnal: bool,
    weekly: bool,
    seed: u64,
    nodes: usize,
}

impl RealizationKey {
    fn new(cfg: &CoarseTraceConfig, seed: u64, nodes: usize) -> RealizationKey {
        RealizationKey {
            duration_ns: cfg.duration.as_nanos(),
            active_bits: cfg.active_episode_mean_secs.to_bits(),
            away_bits: cfg.away_episode_mean_secs.to_bits(),
            keyboard_bits: cfg.keyboard_prob.to_bits(),
            persistence_bits: cfg.cpu_persistence.to_bits(),
            diurnal: cfg.diurnal,
            weekly: cfg.weekly,
            seed,
            nodes,
        }
    }
}

struct Entry {
    slot: Arc<OnceLock<Arc<WorkloadRealization>>>,
    last_used: u64,
    /// 0 until the realization is synthesized and its size recorded.
    bytes: usize,
}

struct LibState {
    entries: HashMap<RealizationKey, Entry>,
    clock: u64,
    bytes: usize,
    max_bytes: usize,
}

/// How a [`TraceLibrary::realize_with_origin`] lookup was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealizeOrigin {
    /// Served from an existing cache entry.
    Hit,
    /// Synthesized afresh and cached.
    Miss,
    /// Synthesized afresh, cache disabled (`LINGER_NO_TRACE_CACHE=1`).
    Bypass,
}

/// Counter snapshot of a [`TraceLibrary`], serialized into
/// `BENCH_runall.json`.
#[derive(Debug, Clone, Serialize)]
pub struct TraceCacheStats {
    /// Lookups served from an existing entry.
    pub hits: u64,
    /// Lookups that had to synthesize.
    pub misses: u64,
    /// Lookups that skipped the cache (`LINGER_NO_TRACE_CACHE=1`).
    pub bypasses: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Realizations currently resident.
    pub entries: usize,
    /// Estimated bytes currently resident.
    pub bytes_resident: usize,
    /// Byte budget evictions enforce.
    pub max_bytes: usize,
}

impl TraceCacheStats {
    /// Fraction of cached lookups that hit, in `[0, 1]` (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default byte budget: 1 GiB comfortably holds the full
/// 64/256/1024/4096-node scaling sweep (~330 MB) with headroom.
const DEFAULT_MAX_BYTES: usize = 1 << 30;

/// Content-keyed store of [`WorkloadRealization`]s.
///
/// Concurrent misses on the same key synthesize once: the map holds an
/// `Arc<OnceLock<..>>` per key, claimed under the lock but initialized
/// outside it, so latecomers block on `get_or_init` instead of
/// duplicating work — and the lock is never held across synthesis.
pub struct TraceLibrary {
    state: Mutex<LibState>,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for TraceLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLibrary").field("stats", &self.stats()).finish()
    }
}

impl Default for TraceLibrary {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceLibrary {
    /// An empty library with the default byte budget.
    pub fn new() -> TraceLibrary {
        TraceLibrary::with_max_bytes(DEFAULT_MAX_BYTES)
    }

    /// An empty library that evicts least-recently-used realizations once
    /// the estimated resident size exceeds `max_bytes`.
    pub fn with_max_bytes(max_bytes: usize) -> TraceLibrary {
        TraceLibrary {
            state: Mutex::new(LibState {
                entries: HashMap::new(),
                clock: 0,
                bytes: 0,
                max_bytes,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Lock the cache state, tolerating poison.
    ///
    /// A cell that panics mid-`realize` (the harness isolates such
    /// panics and keeps running) must not take the shared cache down
    /// with it: the state is a plain map plus counters, and every
    /// mutation leaves it consistent, so recovering the guard is safe.
    fn state(&self) -> std::sync::MutexGuard<'_, LibState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The process-wide shared library.
    ///
    /// The byte budget is `LINGER_TRACE_CACHE_BYTES` (read once, at first
    /// use), defaulting to 1 GiB.
    pub fn global() -> &'static TraceLibrary {
        static GLOBAL: OnceLock<TraceLibrary> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let budget = std::env::var("LINGER_TRACE_CACHE_BYTES")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(DEFAULT_MAX_BYTES);
            TraceLibrary::with_max_bytes(budget)
        })
    }

    /// The realization for `(cfg, seed, nodes)` — synthesized on first
    /// sight, shared thereafter.
    ///
    /// Setting `LINGER_NO_TRACE_CACHE=1` makes every call synthesize
    /// afresh (counted as a bypass); because hits return exactly what a
    /// miss would build, this changes wall-clock only, never results.
    pub fn realize(
        &self,
        cfg: &CoarseTraceConfig,
        seed: u64,
        nodes: usize,
    ) -> Arc<WorkloadRealization> {
        self.realize_with_origin(cfg, seed, nodes).0
    }

    /// Like [`Self::realize`], also reporting how the lookup was served
    /// — so callers (the cluster simulator's telemetry) can attribute a
    /// hit/miss/bypass to *this* realization without racing on the
    /// shared counters.
    pub fn realize_with_origin(
        &self,
        cfg: &CoarseTraceConfig,
        seed: u64,
        nodes: usize,
    ) -> (Arc<WorkloadRealization>, RealizeOrigin) {
        if cache_disabled() {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            let real = Arc::new(WorkloadRealization::synthesize(cfg, seed, nodes));
            return (real, RealizeOrigin::Bypass);
        }
        let key = RealizationKey::new(cfg, seed, nodes);
        let (slot, origin) = {
            let mut st = self.state();
            st.clock += 1;
            let now = st.clock;
            match st.entries.entry(key) {
                hash_map::Entry::Occupied(mut e) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    e.get_mut().last_used = now;
                    (e.get().slot.clone(), RealizeOrigin::Hit)
                }
                hash_map::Entry::Vacant(v) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let slot = v
                        .insert(Entry {
                            slot: Arc::new(OnceLock::new()),
                            last_used: now,
                            bytes: 0,
                        })
                        .slot
                        .clone();
                    (slot, RealizeOrigin::Miss)
                }
            }
        };
        let real = slot
            .get_or_init(|| Arc::new(WorkloadRealization::synthesize(cfg, seed, nodes)))
            .clone();
        let mut st = self.state();
        if let Some(e) = st.entries.get_mut(&key) {
            // Record the size once the slot backing this entry is filled
            // (the entry may have been evicted and re-created meanwhile —
            // only account for the slot we actually hold).
            if e.bytes == 0 && Arc::ptr_eq(&e.slot, &slot) {
                e.bytes = real.approx_bytes().max(1);
                st.bytes += e.bytes;
            }
        }
        self.evict_over_budget(&mut st, &key);
        (real, origin)
    }

    /// Drop LRU-initialized entries (never `keep`) until under budget.
    fn evict_over_budget(&self, st: &mut LibState, keep: &RealizationKey) {
        while st.bytes > st.max_bytes {
            let victim = st
                .entries
                .iter()
                .filter(|(k, e)| e.bytes > 0 && *k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(k) = victim else { break };
            let e = st.entries.remove(&k).expect("victim chosen from map");
            st.bytes -= e.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> TraceCacheStats {
        let st = self.state();
        TraceCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: st.entries.len(),
            bytes_resident: st.bytes,
            max_bytes: st.max_bytes,
        }
    }

    /// Drop every resident realization (counters are kept).
    ///
    /// Outstanding `Arc`s stay valid; the next lookup per key is a miss.
    pub fn clear(&self) {
        let mut st = self.state();
        st.entries.clear();
        st.bytes = 0;
    }
}

/// Whether `LINGER_NO_TRACE_CACHE` requests cache bypass (any non-empty
/// value other than `0`). Read per lookup so a harness can toggle it
/// between sections.
fn cache_disabled() -> bool {
    match std::env::var("LINGER_NO_TRACE_CACHE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linger_sim_core::SimDuration;

    fn cfg(secs: u64) -> CoarseTraceConfig {
        CoarseTraceConfig {
            duration: SimDuration::from_secs(secs),
            ..CoarseTraceConfig::default()
        }
    }

    /// The hand-rolled synthesis loop `ClusterSim::new` used before the
    /// library existed — the compatibility contract.
    fn legacy_synthesize(
        cfg: &CoarseTraceConfig,
        seed: u64,
        nodes: usize,
    ) -> (Vec<Arc<CoarseTrace>>, Vec<usize>) {
        let factory = RngFactory::new(seed);
        let traces: Vec<Arc<CoarseTrace>> = (0..nodes)
            .map(|n| Arc::new(cfg.synthesize(&factory, n as u64)))
            .collect();
        let offsets = traces
            .iter()
            .enumerate()
            .map(|(n, t)| LocalWorkload::random_offset(t, &factory, n as u64))
            .collect();
        (traces, offsets)
    }

    #[test]
    fn synthesize_matches_the_legacy_derivation() {
        let c = cfg(1800);
        let real = WorkloadRealization::synthesize(&c, 42, 6);
        let (traces, offsets) = legacy_synthesize(&c, 42, 6);
        assert_eq!(real.offsets(), &offsets[..]);
        for (a, b) in real.traces().iter().zip(&traces) {
            assert_eq!(a.samples(), b.samples());
            assert_eq!(a.idle_flags(), b.idle_flags());
        }
    }

    #[test]
    fn window_table_rows_match_direct_trace_lookups() {
        let real = WorkloadRealization::synthesize(&cfg(600), 7, 5);
        let tbl = real.window_table().expect("uniform traces build a table");
        assert_eq!(tbl.period(), real.traces()[0].len());
        assert_eq!(tbl.nodes(), 5);
        // Probe beyond the period to cover the wrap equivalence.
        for w in [0, 1, tbl.period() - 1, tbl.period(), 3 * tbl.period() + 2] {
            let cpu = tbl.cpu_row(w);
            let mem = tbl.mem_row(w);
            let idle = tbl.idle_row(w);
            assert_eq!(idle.len(), tbl.words_per_row());
            for n in 0..tbl.nodes() {
                let i = real.offsets()[n] + w;
                let s = real.traces()[n].sample(i);
                assert_eq!(cpu[n].to_bits(), s.cpu.to_bits());
                assert_eq!(mem[n], s.mem_used_kb);
                let bit = idle[n / 64] & (1u64 << (n % 64)) != 0;
                assert_eq!(bit, real.traces()[n].is_idle(i));
            }
            // Padding bits past the node count stay clear.
            let tail = tbl.nodes() % 64;
            if tail != 0 {
                assert_eq!(idle[tbl.nodes() / 64] >> tail, 0);
            }
        }
    }

    #[test]
    fn window_table_rejects_mixed_periods_and_empty_sets() {
        assert!(WindowTable::build(&[], &[]).is_none());
        let c = cfg(600);
        let f = RngFactory::new(1);
        let a = Arc::new(c.synthesize(&f, 0));
        let b = Arc::new(cfg(1200).synthesize(&f, 1));
        assert!(WindowTable::build(&[a, b], &[0, 0]).is_none());
    }

    #[test]
    fn hits_share_the_synthesized_arc() {
        let lib = TraceLibrary::new();
        let c = cfg(600);
        let a = lib.realize(&c, 1, 3);
        let b = lib.realize(&c, 1, 3);
        assert!(Arc::ptr_eq(&a, &b));
        let s = lib.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.bytes_resident, a.approx_bytes());
        // A different seed is a different realization.
        let other = lib.realize(&c, 2, 3);
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(lib.stats().misses, 2);
    }

    #[test]
    fn key_is_bit_exact_on_the_config() {
        let lib = TraceLibrary::new();
        let c = cfg(600);
        let _ = lib.realize(&c, 1, 3);
        let mut tweaked = c.clone();
        tweaked.keyboard_prob += 1e-12;
        let _ = lib.realize(&tweaked, 1, 3);
        assert_eq!(lib.stats().misses, 2, "any float perturbation must re-key");
    }

    #[test]
    fn eviction_keeps_results_identical_and_respects_the_budget() {
        let c = cfg(600);
        let probe = WorkloadRealization::synthesize(&c, 1, 2);
        // Budget fits one entry but not two.
        let lib = TraceLibrary::with_max_bytes(probe.approx_bytes() + probe.approx_bytes() / 2);
        let a1 = lib.realize(&c, 1, 2);
        let _b = lib.realize(&c, 2, 2); // evicts seed 1
        let s = lib.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 1);
        assert!(s.bytes_resident <= s.max_bytes);
        // The evicted Arc is still usable, and a re-miss resynthesizes
        // the identical realization.
        let a2 = lib.realize(&c, 1, 2);
        assert!(!Arc::ptr_eq(&a1, &a2));
        assert_eq!(a1.offsets(), a2.offsets());
        for (x, y) in a1.traces().iter().zip(a2.traces()) {
            assert_eq!(x.samples(), y.samples());
        }
        assert_eq!(lib.stats().misses, 3);
    }

    #[test]
    fn clear_forces_fresh_misses_but_not_fresh_bytes() {
        let lib = TraceLibrary::new();
        let c = cfg(600);
        let a = lib.realize(&c, 9, 2);
        lib.clear();
        assert_eq!(lib.stats().bytes_resident, 0);
        let b = lib.realize(&c, 9, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.offsets(), b.offsets());
        assert_eq!(lib.stats().misses, 2);
    }

    #[test]
    fn stats_hit_rate() {
        let lib = TraceLibrary::new();
        assert_eq!(lib.stats().hit_rate(), 0.0);
        let c = cfg(600);
        for _ in 0..4 {
            let _ = lib.realize(&c, 5, 2);
        }
        let s = lib.stats();
        assert_eq!((s.hits, s.misses), (3, 1));
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
