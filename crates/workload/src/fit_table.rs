//! Precomputed two-moment fits for the burst parameter table.
//!
//! [`crate::burst::BurstGenerator`] historically refit its run/idle
//! distributions via [`fit_two_moments`] every time the coarse trace moved
//! a node's utilization — once per node per 2-second window across every
//! cluster simulator. The fits are pure functions of the interpolated
//! bucket parameters, so [`BurstFitTable`] computes all 21 bucket-level
//! fits once at construction and memoizes fits for interpolated levels in
//! a bounded cache, turning the per-window cost into a table lookup. One
//! table is shared `Arc`'d across all nodes and replications.
//!
//! Because [`fit_two_moments`] is deterministic, a cached fit is exactly
//! the fit the old code produced for the same utilization — simulators
//! switching to the shared table emit byte-identical results.

use crate::params::{BucketParams, BurstParamTable, BUCKET_WIDTH, NUM_BUCKETS};
use linger_stats::{fit_two_moments, Fitted};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Fitted `(run, idle)` distribution pair for one utilization level.
/// `None` marks a degenerate phase with no bursts (mean 0).
pub type FitPair = (Option<Fitted>, Option<Fitted>);

/// Interpolated-level fits beyond this count are computed but not cached,
/// bounding memory for adversarially long unique-utilization traces.
const CACHE_CAP: usize = 4096;

/// A [`BurstParamTable`] with every bucket's two-moment fit precomputed
/// and a shared memo cache for interpolated utilization levels.
///
/// Cheap to clone a reference to (`Arc`), safe to share across the worker
/// threads of a replicated experiment.
#[derive(Debug)]
pub struct BurstFitTable {
    params: BurstParamTable,
    bucket_fits: [FitPair; NUM_BUCKETS],
    cache: RwLock<HashMap<u64, FitPair>>,
}

impl BurstFitTable {
    /// Precompute all 21 bucket fits for `params`.
    pub fn new(params: BurstParamTable) -> Self {
        let bucket_fits =
            std::array::from_fn(|i| fit_pair(&params.buckets()[i]));
        BurstFitTable {
            params,
            bucket_fits,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The process-wide shared table for the paper-calibrated parameters.
    ///
    /// Every caller gets the same `Arc`, so the 21 bucket fits are
    /// computed exactly once per process and the interpolation cache is
    /// shared across all simulators and replications.
    pub fn paper_shared() -> Arc<BurstFitTable> {
        static SHARED: OnceLock<Arc<BurstFitTable>> = OnceLock::new();
        SHARED
            .get_or_init(|| Arc::new(BurstFitTable::new(BurstParamTable::paper_calibrated())))
            .clone()
    }

    /// The underlying parameter table.
    pub fn params(&self) -> &BurstParamTable {
        &self.params
    }

    /// The precomputed fit for bucket `i`.
    pub fn bucket_fit(&self, i: usize) -> &FitPair {
        &self.bucket_fits[i]
    }

    /// The fitted run/idle distributions at utilization `u` ∈ [0, 1]
    /// (clamped), exactly equal to
    /// `fit_two_moments(params.interpolate(u))` on both phases.
    ///
    /// Exact bucket levels hit the precomputed array; other levels hit
    /// the memo cache (computing the fit on first sight).
    pub fn fits_for(&self, u: f64) -> FitPair {
        let u = u.clamp(0.0, 1.0);
        // Mirror `BurstParamTable::interpolate`'s grid snap so every
        // utilization that interpolation treats as a bucket level takes
        // the precomputed path.
        let pos = u / BUCKET_WIDTH;
        let nearest = pos.round();
        if (pos - nearest).abs() < 1e-9 {
            return self.bucket_fits[(nearest as usize).min(NUM_BUCKETS - 1)];
        }
        let key = u.to_bits();
        if let Some(hit) = self.cache.read().unwrap().get(&key) {
            return *hit;
        }
        let fits = fit_pair(&self.params.interpolate(u));
        let mut cache = self.cache.write().unwrap();
        if cache.len() < CACHE_CAP {
            cache.insert(key, fits);
        }
        fits
    }

    /// Number of interpolated levels currently memoized (diagnostics).
    pub fn cached_levels(&self) -> usize {
        self.cache.read().unwrap().len()
    }
}

/// Fit both phases of one parameter set; degenerate (zero-mean) phases
/// fit to `None`.
fn fit_pair(p: &BucketParams) -> FitPair {
    (
        fit_or_none(p.run_mean, p.run_var),
        fit_or_none(p.idle_mean, p.idle_var),
    )
}

pub(crate) fn fit_or_none(mean: f64, var: f64) -> Option<Fitted> {
    if mean <= 0.0 {
        None
    } else {
        Some(fit_two_moments(mean, var))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linger_stats::Distribution;

    /// Two fits agree iff they produce the same samples from the same
    /// stream (Fitted has no PartialEq; sampling is the observable).
    fn same_fit(a: &FitPair, b: &FitPair) -> bool {
        use linger_sim_core::{domains, RngFactory};
        let sample = |f: &FitPair| -> Vec<(f64, f64)> {
            let fac = RngFactory::new(123);
            let mut r = fac.stream_for(domains::FINE_BURSTS, 7);
            (0..64)
                .map(|_| {
                    let run = f.0.as_ref().map_or(-1.0, |d| d.sample(&mut r));
                    let idle = f.1.as_ref().map_or(-1.0, |d| d.sample(&mut r));
                    (run, idle)
                })
                .collect()
        };
        sample(a) == sample(b)
    }

    #[test]
    fn bucket_fits_match_direct_fitting() {
        let table = BurstParamTable::paper_calibrated();
        let fits = BurstFitTable::new(table.clone());
        for i in 0..NUM_BUCKETS {
            let direct = fit_pair(&table.buckets()[i]);
            assert!(same_fit(fits.bucket_fit(i), &direct), "bucket {i}");
        }
    }

    #[test]
    fn bucket_levels_bypass_the_cache() {
        let fits = BurstFitTable::new(BurstParamTable::paper_calibrated());
        for i in 0..NUM_BUCKETS {
            let u = BurstParamTable::bucket_level(i);
            let got = fits.fits_for(u);
            assert!(same_fit(&got, fits.bucket_fit(i)), "level {u}");
        }
        assert_eq!(fits.cached_levels(), 0, "bucket levels must not populate the cache");
    }

    #[test]
    fn interpolated_levels_match_direct_fitting_and_memoize() {
        let table = BurstParamTable::paper_calibrated();
        let fits = BurstFitTable::new(table.clone());
        for &u in &[0.033, 0.127, 0.5001, 0.875, 0.9312] {
            let direct = fit_pair(&table.interpolate(u));
            assert!(same_fit(&fits.fits_for(u), &direct), "u = {u}");
            // Second lookup comes from the cache and must be identical.
            assert!(same_fit(&fits.fits_for(u), &direct), "cached u = {u}");
        }
        assert_eq!(fits.cached_levels(), 5);
    }

    #[test]
    fn out_of_range_clamps_to_end_buckets() {
        let fits = BurstFitTable::new(BurstParamTable::paper_calibrated());
        assert!(same_fit(&fits.fits_for(-3.0), fits.bucket_fit(0)));
        assert!(same_fit(&fits.fits_for(7.0), fits.bucket_fit(NUM_BUCKETS - 1)));
    }

    #[test]
    fn degenerate_buckets_fit_to_none() {
        let fits = BurstFitTable::new(BurstParamTable::paper_calibrated());
        assert!(fits.bucket_fit(0).0.is_none(), "0% has no run bursts");
        assert!(fits.bucket_fit(NUM_BUCKETS - 1).1.is_none(), "100% has no idle bursts");
    }

    #[test]
    fn paper_shared_returns_one_instance() {
        let a = BurstFitTable::paper_shared();
        let b = BurstFitTable::paper_shared();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
