//! Coarse-grain workstation traces and their synthesis.
//!
//! The paper drives its cluster simulations with the Arpaci et al. traces:
//! 132 machines sampled every 2 seconds for 40 days, each sample recording
//! CPU usage, memory usage, keyboard activity, and an idle/non-idle flag
//! derived from the *recruitment threshold*: a machine is idle once the
//! CPU has stayed below 10% **and** the keyboard untouched for one minute
//! (Sec 3.2).
//!
//! Those traces are not distributable, so this module also contains a
//! synthetic generator ([`CoarseTraceConfig::synthesize`]) calibrated to
//! every aggregate the paper reports from them:
//!
//! * ≈46% of time in the non-idle state;
//! * ≈76% of non-idle time with CPU utilization below 10%;
//! * 64 MB machines with ≥14 MB free ≈90% of the time and ≥10 MB free
//!   ≈95% of the time, with no significant idle/non-idle difference
//!   (Fig 4).

use linger_sim_core::{domains, par_map_indexed, RngFactory, SimDuration, SimRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Seconds between trace samples (the Arpaci sampling period).
pub const SAMPLE_PERIOD_SECS: u64 = 2;

/// The recruitment threshold: how long CPU and keyboard must stay quiet
/// before a machine counts as idle (Sec 3.2: one minute).
pub const RECRUITMENT_SECS: u64 = 60;

/// CPU utilization below which a sample is "quiet" for idleness purposes.
pub const IDLE_CPU_THRESHOLD: f64 = 0.10;

/// Main memory per workstation in the trace set (Sec 3.2: 64 MB).
pub const TOTAL_MEMORY_KB: u32 = 64 * 1024;

/// One 2-second trace sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoarseSample {
    /// Mean CPU utilization over the sample period, in [0, 1].
    pub cpu: f64,
    /// Physical memory in use by local processes plus the OS, in KB.
    pub mem_used_kb: u32,
    /// Whether keyboard/mouse input occurred during the period.
    pub keyboard: bool,
}

/// A per-machine sequence of 2-second samples with derived idle flags.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoarseTrace {
    samples: Vec<CoarseSample>,
    /// `idle[i]` = machine is recruited (idle) during sample `i`.
    idle: Vec<bool>,
}

impl CoarseTrace {
    /// Wrap raw samples, deriving idle flags by the recruitment rule.
    pub fn from_samples(samples: Vec<CoarseSample>) -> Self {
        let idle = derive_idle_flags(&samples);
        CoarseTrace { samples, idle }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total wall-clock span of the trace.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.samples.len() as u64 * SAMPLE_PERIOD_SECS)
    }

    /// Sample `i` (wrapping — simulations may outlive the trace, in which
    /// case it repeats, matching the paper's random-offset replay).
    pub fn sample(&self, i: usize) -> &CoarseSample {
        &self.samples[i % self.samples.len()]
    }

    /// Idle flag for sample `i` (wrapping).
    pub fn is_idle(&self, i: usize) -> bool {
        self.idle[i % self.idle.len()]
    }

    /// All samples.
    pub fn samples(&self) -> &[CoarseSample] {
        &self.samples
    }

    /// All idle flags.
    pub fn idle_flags(&self) -> &[bool] {
        &self.idle
    }

    /// Fraction of samples in the non-idle state.
    pub fn non_idle_fraction(&self) -> f64 {
        if self.idle.is_empty() {
            return 0.0;
        }
        self.idle.iter().filter(|&&b| !b).count() as f64 / self.idle.len() as f64
    }
}

/// Apply the recruitment rule: sample `i` is idle iff every sample in the
/// preceding minute (inclusive of `i`) was quiet (CPU < 10%, no keyboard).
fn derive_idle_flags(samples: &[CoarseSample]) -> Vec<bool> {
    let window = (RECRUITMENT_SECS / SAMPLE_PERIOD_SECS) as usize;
    let mut quiet_streak = 0usize;
    samples
        .iter()
        .map(|s| {
            if s.cpu < IDLE_CPU_THRESHOLD && !s.keyboard {
                quiet_streak += 1;
            } else {
                quiet_streak = 0;
            }
            quiet_streak >= window
        })
        .collect()
}

/// Tunables of the synthetic trace generator.
///
/// Defaults are calibrated against the paper's published aggregates; the
/// calibration is locked in by the tests in [`crate::analysis`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoarseTraceConfig {
    /// Trace length.
    pub duration: SimDuration,
    /// Mean length of a user session (keyboard activity present).
    pub active_episode_mean_secs: f64,
    /// Mean length of an away period.
    pub away_episode_mean_secs: f64,
    /// Probability a 2-second sample within a session sees keyboard input.
    pub keyboard_prob: f64,
    /// Probability the CPU level persists from one sample to the next
    /// (creates multi-sample compute episodes).
    pub cpu_persistence: f64,
    /// Modulate episode lengths with a 24-hour day/night cycle.
    pub diurnal: bool,
    /// Additionally mute user sessions on days 6 and 7 of each week
    /// (the paper's trace set spans "time of day, day of week" effects).
    pub weekly: bool,
}

impl Default for CoarseTraceConfig {
    fn default() -> Self {
        CoarseTraceConfig {
            duration: SimDuration::from_secs(4 * 3600),
            active_episode_mean_secs: 450.0,
            away_episode_mean_secs: 780.0,
            keyboard_prob: 0.62,
            cpu_persistence: 0.70,
            diurnal: false,
            weekly: false,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum UserState {
    Active,
    Away,
}

/// A resumable, allocation-free generator over one machine's synthetic
/// trace.
///
/// Yields exactly the `(sample, idle)` sequence that
/// [`CoarseTraceConfig::synthesize`] would record for the same
/// `(factory, machine_id)` — `synthesize` is itself implemented on top of
/// this type, so the batch and streamed paths cannot drift. The stream
/// holds only O(1) state (two RNGs plus the generator's scalar state),
/// which is what lets the chunked window pipeline realize million-node
/// workloads without ever materializing whole traces.
///
/// The idle flag is the recruitment rule of [`CoarseTrace::from_samples`]
/// applied online: a sample is idle iff the preceding minute (inclusive)
/// was quiet. Streams always start at sample 0; to begin replay at a
/// later offset, [`TraceStream::skip`] past it (the flags depend on the
/// quiet streak, so there is no shortcut).
#[derive(Clone)]
pub struct TraceStream {
    cfg: CoarseTraceConfig,
    rng: SimRng,
    mem_rng: SimRng,
    state: UserState,
    remaining: f64,
    cpu_level: f64,
    os_base_kb: f64,
    working_set_kb: f64,
    session_target_kb: f64,
    quiet_streak: u32,
    next: usize,
}

impl TraceStream {
    /// Position the stream at sample 0 of `machine_id`'s trace.
    pub fn new(cfg: &CoarseTraceConfig, factory: &RngFactory, machine_id: u64) -> Self {
        let mut rng = factory.stream_for(domains::COARSE_TRACE, machine_id);
        let mut mem_rng = factory.stream_for(domains::MEMORY, machine_id);
        let state = if rng.random::<f64>() < cfg.active_fraction() {
            UserState::Active
        } else {
            UserState::Away
        };
        let remaining = cfg.draw_episode(&mut rng, state, 0.0);

        // Memory: per-machine OS base plus a session working set that
        // mean-reverts toward a per-session target while active and decays
        // while away. Calibrated against the Fig 4 anchors (≥14 MB free at
        // P90 on 64 MB machines).
        let os_base_kb = 16_000.0 + mem_rng.random::<f64>() * 6_000.0;
        let working_set_kb = 6_000.0 + mem_rng.random::<f64>() * 8_000.0;
        let session_target_kb = 10_000.0 + mem_rng.random::<f64>() * 18_000.0;

        TraceStream {
            cfg: cfg.clone(),
            rng,
            mem_rng,
            state,
            remaining,
            cpu_level: 0.02,
            os_base_kb,
            working_set_kb,
            session_target_kb,
            quiet_streak: 0,
            next: 0,
        }
    }

    /// Index of the sample the next [`TraceStream::next_sample`] call
    /// will produce.
    pub fn index(&self) -> usize {
        self.next
    }

    /// Generate the next sample and its recruitment (idle) flag.
    pub fn next_sample(&mut self) -> (CoarseSample, bool) {
        let t_secs = self.next as f64 * SAMPLE_PERIOD_SECS as f64;
        if self.remaining <= 0.0 {
            self.state = match self.state {
                UserState::Active => UserState::Away,
                UserState::Away => UserState::Active,
            };
            self.remaining = self.cfg.draw_episode(&mut self.rng, self.state, t_secs);
            if self.state == UserState::Active {
                // Each session brings its own memory footprint.
                self.session_target_kb = 10_000.0 + self.mem_rng.random::<f64>() * 18_000.0;
            }
        }
        self.remaining -= SAMPLE_PERIOD_SECS as f64;

        // CPU: sticky mixture.
        if self.rng.random::<f64>() >= self.cfg.cpu_persistence {
            self.cpu_level = self.cfg.draw_cpu(&mut self.rng, self.state);
        }
        let jitter = 1.0 + 0.15 * (self.rng.random::<f64>() - 0.5);
        let cpu = (self.cpu_level * jitter).clamp(0.0, 1.0);

        let keyboard =
            self.state == UserState::Active && self.rng.random::<f64>() < self.cfg.keyboard_prob;

        // Memory walk: mean-revert toward the session target (active)
        // or toward a small residual footprint (away).
        match self.state {
            UserState::Active => {
                self.working_set_kb += (self.session_target_kb - self.working_set_kb) * 0.02
                    + (self.mem_rng.random::<f64>() - 0.5) * 900.0;
            }
            UserState::Away => {
                // Memory drains only slowly when the user steps away
                // (editors and builds stay resident) — the paper finds
                // "no significant difference in the available memory
                // between idle and non-idle states".
                self.working_set_kb += (9_000.0 - self.working_set_kb) * 0.0008
                    + (self.mem_rng.random::<f64>() - 0.5) * 250.0;
            }
        }
        self.working_set_kb = self.working_set_kb.clamp(2_000.0, 36_000.0);
        let mem_used_kb =
            ((self.os_base_kb + self.working_set_kb) as u32).min(TOTAL_MEMORY_KB);

        let window = (RECRUITMENT_SECS / SAMPLE_PERIOD_SECS) as u32;
        if cpu < IDLE_CPU_THRESHOLD && !keyboard {
            self.quiet_streak += 1;
        } else {
            self.quiet_streak = 0;
        }
        self.next += 1;
        (CoarseSample { cpu, mem_used_kb, keyboard }, self.quiet_streak >= window)
    }

    /// Advance past `count` samples, discarding them.
    pub fn skip(&mut self, count: usize) {
        for _ in 0..count {
            self.next_sample();
        }
    }
}

impl CoarseTraceConfig {
    /// Number of samples one synthesized trace holds (the replay period).
    pub fn sample_count(&self) -> usize {
        (self.duration.as_secs_f64() / SAMPLE_PERIOD_SECS as f64).ceil() as usize
    }

    /// Synthesize the trace of machine `machine_id` deterministically from
    /// `factory`'s master seed.
    pub fn synthesize(&self, factory: &RngFactory, machine_id: u64) -> CoarseTrace {
        let n = self.sample_count();
        let mut stream = TraceStream::new(self, factory, machine_id);
        let mut samples = Vec::with_capacity(n);
        let mut idle = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, flag) = stream.next_sample();
            samples.push(s);
            idle.push(flag);
        }
        debug_assert_eq!(idle, derive_idle_flags(&samples));
        CoarseTrace { samples, idle }
    }

    /// Synthesize a whole machine-room: traces for machines `0..count`.
    ///
    /// Machines are synthesized in parallel over
    /// [`par_map_indexed`] — each machine's draws come from its own
    /// `stream_for(domain, machine_id)` streams, so the library is
    /// byte-identical at any `--jobs` (including serial).
    pub fn synthesize_library(&self, factory: &RngFactory, count: usize) -> Vec<CoarseTrace> {
        par_map_indexed(count, None, |m| self.synthesize(factory, m as u64))
    }

    fn active_fraction(&self) -> f64 {
        self.active_episode_mean_secs
            / (self.active_episode_mean_secs + self.away_episode_mean_secs)
    }

    fn draw_episode(&self, rng: &mut SimRng, state: UserState, t_secs: f64) -> f64 {
        let mut mean = match state {
            UserState::Active => self.active_episode_mean_secs,
            UserState::Away => self.away_episode_mean_secs,
        };
        if self.diurnal {
            // Sessions lengthen (away shortens) during the "day" half of a
            // 24-hour cycle, and vice versa at night.
            let phase = (t_secs / 86_400.0 * std::f64::consts::TAU).sin();
            let factor = 1.0 + 0.6 * phase;
            mean = match state {
                UserState::Active => mean * factor,
                UserState::Away => mean / factor,
            };
        }
        if self.weekly {
            // Weekend: short, rare sessions; long away stretches.
            let day = (t_secs / 86_400.0) as u64 % 7;
            if day >= 5 {
                mean = match state {
                    UserState::Active => mean * 0.3,
                    UserState::Away => mean * 4.0,
                };
            }
        }
        let u: f64 = rng.random();
        -(1.0 - u).ln() * mean.max(SAMPLE_PERIOD_SECS as f64)
    }

    fn draw_cpu(&self, rng: &mut SimRng, state: UserState) -> f64 {
        let u: f64 = rng.random();
        let v: f64 = rng.random();
        match state {
            // Calibrated so ~76% of non-idle time sits below 10% CPU:
            // interactive use is mostly think-time.
            UserState::Active => {
                if u < 0.72 {
                    0.01 + v * 0.08
                } else if u < 0.92 {
                    0.10 + v * 0.40
                } else {
                    0.50 + v * 0.50
                }
            }
            // Background daemons with rare batch work (cron, mail). Real
            // spikes must be rare: each one blanks idleness for a full
            // recruitment window, so their rate dominates the idle share
            // of away time.
            UserState::Away => {
                if u < 0.93 {
                    v * 0.04
                } else if u < 0.995 {
                    0.04 + v * 0.05
                } else {
                    0.15 + v * 0.60
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> CoarseSample {
        CoarseSample { cpu: 0.02, mem_used_kb: 30_000, keyboard: false }
    }

    fn busy() -> CoarseSample {
        CoarseSample { cpu: 0.50, mem_used_kb: 30_000, keyboard: true }
    }

    #[test]
    fn recruitment_needs_a_full_quiet_minute() {
        let window = (RECRUITMENT_SECS / SAMPLE_PERIOD_SECS) as usize;
        // 29 quiet samples: still non-idle; the 30th flips it.
        let mut samples = vec![busy()];
        samples.extend(std::iter::repeat_with(quiet).take(window));
        let t = CoarseTrace::from_samples(samples);
        assert!(!t.idle_flags()[0]);
        for i in 1..window {
            assert!(!t.idle_flags()[i], "sample {i} should still be non-idle");
        }
        assert!(t.idle_flags()[window], "quiet minute elapsed");
    }

    #[test]
    fn keyboard_resets_recruitment() {
        let window = (RECRUITMENT_SECS / SAMPLE_PERIOD_SECS) as usize;
        let mut samples =
            std::iter::repeat_with(quiet).take(2 * window + 5).collect::<Vec<_>>();
        samples[window + 3] = CoarseSample { keyboard: true, ..quiet() };
        let t = CoarseTrace::from_samples(samples);
        assert!(t.idle_flags()[window]);
        assert!(!t.idle_flags()[window + 3], "keyboard makes it non-idle");
        assert!(!t.idle_flags()[window + 10], "recruitment restarts");
        assert!(t.idle_flags()[window + 3 + window]);
    }

    #[test]
    fn high_cpu_resets_recruitment_even_without_keyboard() {
        let window = (RECRUITMENT_SECS / SAMPLE_PERIOD_SECS) as usize;
        let mut samples = std::iter::repeat_with(quiet).take(2 * window).collect::<Vec<_>>();
        samples[window + 1] = CoarseSample { cpu: 0.5, ..quiet() };
        let t = CoarseTrace::from_samples(samples);
        assert!(!t.idle_flags()[window + 1]);
    }

    #[test]
    fn trace_wraps_around() {
        let t = CoarseTrace::from_samples(vec![quiet(), busy()]);
        assert_eq!(t.sample(0).cpu, t.sample(2).cpu);
        assert_eq!(t.sample(1).keyboard, t.sample(5).keyboard);
        assert_eq!(t.is_idle(0), t.is_idle(4));
    }

    #[test]
    fn synthesized_trace_has_requested_length() {
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(600),
            ..Default::default()
        };
        let t = cfg.synthesize(&RngFactory::new(1), 0);
        assert_eq!(t.len(), 300);
        assert_eq!(t.duration(), SimDuration::from_secs(600));
    }

    #[test]
    fn synthesis_is_deterministic_per_machine() {
        let cfg = CoarseTraceConfig::default();
        let f = RngFactory::new(7);
        let a = cfg.synthesize(&f, 3);
        let b = cfg.synthesize(&f, 3);
        assert_eq!(a.samples(), b.samples());
        let c = cfg.synthesize(&f, 4);
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn stream_replays_synthesize_exactly() {
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(3600),
            ..Default::default()
        };
        let f = RngFactory::new(42);
        let trace = cfg.synthesize(&f, 9);
        let mut stream = TraceStream::new(&cfg, &f, 9);
        for i in 0..cfg.sample_count() {
            assert_eq!(stream.index(), i);
            let (s, idle) = stream.next_sample();
            assert_eq!(&s, trace.sample(i), "sample {i}");
            assert_eq!(idle, trace.is_idle(i), "idle flag {i}");
        }
    }

    #[test]
    fn stream_skip_resumes_mid_trace() {
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(1800),
            ..Default::default()
        };
        let f = RngFactory::new(77);
        let trace = cfg.synthesize(&f, 3);
        let mut stream = TraceStream::new(&cfg, &f, 3);
        stream.skip(517);
        for i in 517..cfg.sample_count() {
            let (s, idle) = stream.next_sample();
            assert_eq!(&s, trace.sample(i), "sample {i}");
            assert_eq!(idle, trace.is_idle(i), "idle flag {i}");
        }
    }

    #[test]
    fn parallel_library_matches_serial_synthesis() {
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(1200),
            ..Default::default()
        };
        let f = RngFactory::new(8);
        let lib = cfg.synthesize_library(&f, 9);
        for (m, t) in lib.iter().enumerate() {
            let direct = cfg.synthesize(&f, m as u64);
            assert_eq!(t.samples(), direct.samples(), "machine {m}");
            assert_eq!(t.idle_flags(), direct.idle_flags(), "machine {m}");
        }
    }

    #[test]
    fn samples_are_well_formed() {
        let cfg = CoarseTraceConfig::default();
        let t = cfg.synthesize(&RngFactory::new(11), 0);
        for s in t.samples() {
            assert!((0.0..=1.0).contains(&s.cpu));
            assert!(s.mem_used_kb <= TOTAL_MEMORY_KB);
            assert!(s.mem_used_kb >= 18_000, "OS base should be present");
        }
    }

    #[test]
    fn calibration_non_idle_fraction_near_paper() {
        // Paper: "On average, 46% of the time a machine was in a non-idle
        // state." Average over several synthetic machines.
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(8 * 3600),
            ..Default::default()
        };
        let f = RngFactory::new(2024);
        let traces = cfg.synthesize_library(&f, 12);
        let avg: f64 =
            traces.iter().map(|t| t.non_idle_fraction()).sum::<f64>() / traces.len() as f64;
        assert!(
            (avg - 0.46).abs() < 0.06,
            "non-idle fraction {avg} not near paper's 0.46"
        );
    }

    #[test]
    fn calibration_non_idle_low_cpu_fraction_near_paper() {
        // Paper: "76% of the time in non-idle intervals, the processor
        // utilization is less than 10%."
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(8 * 3600),
            ..Default::default()
        };
        let f = RngFactory::new(2025);
        let traces = cfg.synthesize_library(&f, 12);
        let (mut non_idle, mut low) = (0u64, 0u64);
        for t in &traces {
            for (s, &idle) in t.samples().iter().zip(t.idle_flags()) {
                if !idle {
                    non_idle += 1;
                    if s.cpu < IDLE_CPU_THRESHOLD {
                        low += 1;
                    }
                }
            }
        }
        let frac = low as f64 / non_idle as f64;
        assert!(
            (frac - 0.76).abs() < 0.08,
            "low-cpu fraction of non-idle time {frac} not near paper's 0.76"
        );
    }

    #[test]
    fn calibration_memory_availability_near_fig4() {
        // Paper Fig 4: ≥14 MB free 90% of the time, ≥10 MB free 95%.
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(8 * 3600),
            ..Default::default()
        };
        let f = RngFactory::new(2026);
        let traces = cfg.synthesize_library(&f, 12);
        let mut free: Vec<f64> = Vec::new();
        for t in &traces {
            for s in t.samples() {
                free.push((TOTAL_MEMORY_KB - s.mem_used_kb) as f64);
            }
        }
        free.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p10 = free[free.len() / 10];
        let p05 = free[free.len() / 20];
        assert!(p10 >= 13_000.0, "P10 free memory {p10} KB below ~14 MB");
        assert!(p05 >= 9_000.0, "P5 free memory {p05} KB below ~10 MB");
    }

    #[test]
    fn weekly_traces_are_quieter_on_weekends() {
        // 7-day trace: compare non-idle fraction on weekdays vs weekend.
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(7 * 86_400),
            weekly: true,
            ..Default::default()
        };
        let t = cfg.synthesize(&RngFactory::new(31), 0);
        let spd = (86_400 / SAMPLE_PERIOD_SECS) as usize; // samples per day
        let non_idle_frac = |lo: usize, hi: usize| {
            let flags = &t.idle_flags()[lo..hi];
            flags.iter().filter(|&&b| !b).count() as f64 / flags.len() as f64
        };
        let weekday = non_idle_frac(0, 5 * spd);
        let weekend = non_idle_frac(5 * spd, 7 * spd);
        assert!(
            weekend < 0.6 * weekday,
            "weekend {weekend} should be much quieter than weekday {weekday}"
        );
    }

    #[test]
    fn diurnal_traces_differ_from_flat() {
        let flat = CoarseTraceConfig { duration: SimDuration::from_secs(3600), ..Default::default() };
        let diurnal = CoarseTraceConfig { diurnal: true, ..flat.clone() };
        let f = RngFactory::new(5);
        let a = flat.synthesize(&f, 0);
        let b = diurnal.synthesize(&f, 0);
        assert_ne!(a.samples(), b.samples());
    }
}
