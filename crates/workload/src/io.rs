//! Trace persistence.
//!
//! Coarse traces and analysis outputs are serializable so benchmark runs
//! can persist the exact workload realization they used (`results/`), and
//! so external trace data in the same schema could be swapped in for the
//! synthetic generator.

use crate::coarse::CoarseTrace;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Write a trace library as JSON.
///
/// The write is atomic (same-directory temp file renamed over the
/// target), so an interrupted run never leaves a truncated library
/// behind.
pub fn save_traces<P: AsRef<Path>>(path: P, traces: &[CoarseTrace]) -> std::io::Result<()> {
    let json = serde_json::to_string(traces)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    linger_sim_core::write_atomic(path.as_ref(), json.as_bytes())
}

/// Read a trace library back.
pub fn load_traces<P: AsRef<Path>>(path: P) -> std::io::Result<Vec<CoarseTrace>> {
    let f = File::open(path)?;
    serde_json::from_reader(BufReader::new(f))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::CoarseTraceConfig;
    use linger_sim_core::{RngFactory, SimDuration};

    #[test]
    fn roundtrip_preserves_traces() {
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(120),
            ..Default::default()
        };
        let traces = cfg.synthesize_library(&RngFactory::new(1), 3);
        let dir = std::env::temp_dir().join("linger-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.json");
        save_traces(&path, &traces).unwrap();
        let back = load_traces(&path).unwrap();
        assert_eq!(back.len(), traces.len());
        for (a, b) in traces.iter().zip(&back) {
            assert_eq!(a.samples(), b.samples());
            assert_eq!(a.idle_flags(), b.idle_flags());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_traces("/nonexistent/traces.json").is_err());
    }
}
