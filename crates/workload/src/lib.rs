//! # linger-workload
//!
//! The two-level workstation workload model of *Linger Longer* (SC'98),
//! Sec 3 and Fig 6:
//!
//! * [`params`] — the 21-bucket fine-grain burst parameter table (Fig 3)
//!   with the paper's linear interpolation;
//! * [`burst`] — the alternating run/idle burst process;
//! * [`fit_table`] — precomputed, `Arc`-shared two-moment fits of the
//!   bucket table (one fit per bucket plus an interpolation memo cache);
//! * [`dispatch`] — synthetic scheduler-dispatch traces (substitution for
//!   the paper's AIX recordings; DESIGN.md §3.1);
//! * [`coarse`] — coarse 2-second traces, the recruitment-threshold idle
//!   rule, and a synthesizer calibrated to the Arpaci-trace aggregates the
//!   paper reports (substitution 2);
//! * [`analysis`] — re-derivation of Figs 2, 3 and 4 from traces;
//! * [`arrivals`] — deterministic open-arrival processes (Poisson and
//!   two-phase MMPP) for the serving mode, seeded per window;
//! * [`generator`] — the two-level generator wiring coarse traces to the
//!   burst process (Fig 6);
//! * [`library`] — the shared workload-realization cache: one synthesis
//!   of traces + offsets + window table per `(config, seed, nodes)` key,
//!   reused across policies, sweep points, and replications;
//! * [`stream`] — the memory-bounded streaming realization: resumable
//!   per-node trace streams feeding a chunked window cursor, for node
//!   counts whose monolithic table would not fit the byte budget;
//! * [`memory`] — the two-pool priority page model (Sec 3.2);
//! * [`paging`] — the same policy at page granularity (LRU lists, free
//!   list, fault costs), proving the protection invariant the Linux
//!   prototype relies on;
//! * [`io`] — trace persistence (JSON);
//! * [`trace_text`] — a documented plain-text trace interchange format
//!   for importing measured data.

//! ## Example
//!
//! ```
//! use linger_sim_core::{domains, RngFactory, SimDuration};
//! use linger_workload::{BurstGenerator, BurstKind};
//!
//! // Fine-grain bursts at 30% utilization.
//! let factory = RngFactory::new(7);
//! let mut rng = factory.stream_for(domains::FINE_BURSTS, 0);
//! let mut gen = BurstGenerator::paper(0.30);
//! let (mut run, mut total) = (0.0, 0.0);
//! for _ in 0..20_000 {
//!     let b = gen.next_burst(&mut rng);
//!     total += b.duration.as_secs_f64();
//!     if b.kind == BurstKind::Run {
//!         run += b.duration.as_secs_f64();
//!     }
//! }
//! assert!((run / total - 0.30).abs() < 0.05);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod arrivals;
pub mod burst;
pub mod coarse;
pub mod dispatch;
pub mod fit_table;
pub mod generator;
pub mod io;
pub mod library;
pub mod memory;
pub mod paging;
pub mod params;
pub mod stream;
pub mod trace_text;

pub use analysis::{CoarseAggregates, FineGrainAnalysis};
pub use arrivals::{ArrivalConfig, ArrivalGenerator, ArrivalProcess};
pub use burst::{Burst, BurstGenerator, BurstKind, MIN_BURST};
pub use coarse::{
    CoarseSample, CoarseTrace, CoarseTraceConfig, TraceStream, IDLE_CPU_THRESHOLD,
    RECRUITMENT_SECS, SAMPLE_PERIOD_SECS, TOTAL_MEMORY_KB,
};
pub use dispatch::DispatchTrace;
pub use fit_table::{BurstFitTable, FitPair};
pub use generator::LocalWorkload;
pub use library::{
    RealizeOrigin, TraceCacheStats, TraceLibrary, WindowTable, WorkloadRealization,
};
pub use memory::{TwoPoolMemory, PAGE_KB};
pub use stream::{StreamSpec, WindowChunk, WindowCursor, DEFAULT_WINDOW_BUDGET_BYTES};
pub use paging::{Owner, PagingConfig, PagingSim, PagingStats};
pub use params::{BucketParams, BurstParamTable, NUM_BUCKETS, WINDOW_SECS};
