//! The two-level workload generator (paper Fig 6).
//!
//! Combines a coarse-grain trace (2-second samples of CPU usage, memory,
//! and idle state) with the fine-grain burst model: the fine-grain
//! generator is continuously retargeted to the utilization of the coarse
//! sample in effect, producing an unbounded stream of run/idle bursts that
//! has both the long-term (time-of-day, session) structure of the trace
//! and the short-term burst structure of the dispatch data.
//!
//! "To draw a representative sample of jobs from different times of the
//! day, each node in the simulation was started at a randomly selected
//! offset into a different machine trace" (Sec 4.2) — the offset is a
//! constructor argument; [`LocalWorkload::with_random_offset`] draws it.

use crate::burst::{Burst, BurstGenerator};
use crate::coarse::{CoarseTrace, SAMPLE_PERIOD_SECS};
use crate::fit_table::BurstFitTable;
use linger_sim_core::{domains, RngFactory, SimRng, SimTime};
use rand::Rng;
use std::sync::Arc;

/// The owner workload of one simulated node.
pub struct LocalWorkload {
    trace: Arc<CoarseTrace>,
    offset: usize,
    gen: BurstGenerator,
    rng: SimRng,
    /// Simulated time already covered by emitted bursts.
    position: SimTime,
}

impl LocalWorkload {
    /// A workload replaying `trace` from sample `offset`, with fine-grain
    /// bursts drawn from the shared fit table `fits` using `rng`.
    pub fn new(
        trace: Arc<CoarseTrace>,
        offset: usize,
        fits: Arc<BurstFitTable>,
        rng: SimRng,
    ) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        let u0 = trace.sample(offset).cpu;
        LocalWorkload {
            trace,
            offset,
            gen: BurstGenerator::new(fits, u0),
            rng,
            position: SimTime::ZERO,
        }
    }

    /// Like [`Self::new`] but drawing the start offset uniformly from the
    /// trace, using the node's `TRACE_OFFSET` stream.
    pub fn with_random_offset(
        trace: Arc<CoarseTrace>,
        factory: &RngFactory,
        node_id: u64,
        fits: Arc<BurstFitTable>,
    ) -> Self {
        let offset = Self::random_offset(&trace, factory, node_id);
        let rng = factory.stream_for(domains::FINE_BURSTS, node_id);
        Self::new(trace, offset, fits, rng)
    }

    /// The start offset [`Self::with_random_offset`] would draw for
    /// `node_id` — same stream, same draw — without paying for workload
    /// construction. Simulators that only track coarse node state use
    /// this to skip building per-node burst generators entirely.
    pub fn random_offset(trace: &CoarseTrace, factory: &RngFactory, node_id: u64) -> usize {
        Self::random_offset_for_len(trace.len(), factory, node_id)
    }

    /// [`Self::random_offset`] from the trace *length* alone — the draw
    /// depends only on the replay period, so streamed realizations can
    /// compute every node's offset without materializing a single trace.
    pub fn random_offset_for_len(len: usize, factory: &RngFactory, node_id: u64) -> usize {
        let mut off_rng = factory.stream_for(domains::TRACE_OFFSET, node_id);
        (off_rng.random::<u64>() % len as u64) as usize
    }

    /// The trace sample index in effect at simulated time `t`.
    pub fn sample_index_at(&self, t: SimTime) -> usize {
        self.offset + (t.as_nanos() / (SAMPLE_PERIOD_SECS * 1_000_000_000)) as usize
    }

    /// Coarse CPU utilization in effect at time `t`.
    pub fn utilization_at(&self, t: SimTime) -> f64 {
        self.trace.sample(self.sample_index_at(t)).cpu
    }

    /// Whether the machine is recruited (idle) at time `t` by the
    /// recruitment-threshold rule.
    pub fn is_idle_at(&self, t: SimTime) -> bool {
        self.trace.is_idle(self.sample_index_at(t))
    }

    /// Local memory use (KB) at time `t`.
    pub fn mem_used_at(&self, t: SimTime) -> u32 {
        self.trace.sample(self.sample_index_at(t)).mem_used_kb
    }

    /// Simulated time up to which bursts have been emitted.
    pub fn position(&self) -> SimTime {
        self.position
    }

    /// The start offset into the trace.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Emit the next burst. The generator is retargeted to the coarse
    /// sample in effect at the burst's start time.
    pub fn next_burst(&mut self) -> Burst {
        let u = self.utilization_at(self.position);
        self.gen.set_utilization(u);
        let b = self.gen.next_burst(&mut self.rng);
        self.position += b.duration;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::BurstKind;
    use crate::coarse::{CoarseSample, CoarseTraceConfig};
    use linger_sim_core::SimDuration;

    fn flat_trace(cpu: f64, samples: usize) -> Arc<CoarseTrace> {
        Arc::new(CoarseTrace::from_samples(
            (0..samples)
                .map(|_| CoarseSample { cpu, mem_used_kb: 30_000, keyboard: false })
                .collect(),
        ))
    }

    fn workload(trace: Arc<CoarseTrace>, offset: usize) -> LocalWorkload {
        let f = RngFactory::new(77);
        LocalWorkload::new(
            trace,
            offset,
            BurstFitTable::paper_shared(),
            f.stream_for(domains::FINE_BURSTS, 0),
        )
    }

    #[test]
    fn utilization_follows_flat_trace() {
        let mut w = workload(flat_trace(0.30, 100), 0);
        let mut run = 0.0;
        let mut total = 0.0;
        while w.position() < SimTime::from_secs(150) {
            let b = w.next_burst();
            total += b.duration.as_secs_f64();
            if b.kind == BurstKind::Run {
                run += b.duration.as_secs_f64();
            }
        }
        let u = run / total;
        assert!((u - 0.30).abs() < 0.05, "measured {u}");
    }

    #[test]
    fn position_advances_by_burst_durations() {
        let mut w = workload(flat_trace(0.5, 10), 0);
        let mut acc = SimDuration::ZERO;
        for _ in 0..100 {
            acc += w.next_burst().duration;
            assert_eq!(w.position(), SimTime::ZERO + acc);
        }
    }

    #[test]
    fn offset_shifts_trace_lookup() {
        let mut samples: Vec<CoarseSample> = (0..10)
            .map(|_| CoarseSample { cpu: 0.1, mem_used_kb: 30_000, keyboard: false })
            .collect();
        samples[5] = CoarseSample { cpu: 0.9, mem_used_kb: 40_000, keyboard: true };
        let trace = Arc::new(CoarseTrace::from_samples(samples));
        let w = workload(trace, 5);
        assert_eq!(w.utilization_at(SimTime::ZERO), 0.9);
        assert_eq!(w.mem_used_at(SimTime::ZERO), 40_000);
        // 2 s later we've moved to sample 6.
        assert_eq!(w.utilization_at(SimTime::from_secs(2)), 0.1);
    }

    #[test]
    fn trace_wraps_for_long_simulations() {
        let w = workload(flat_trace(0.2, 5), 3);
        // 5-sample trace = 10 s; far beyond it must still answer.
        assert_eq!(w.utilization_at(SimTime::from_secs(1000)), 0.2);
    }

    #[test]
    fn random_offset_is_deterministic_per_node() {
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(1200),
            ..Default::default()
        };
        let f = RngFactory::new(9);
        let trace = Arc::new(cfg.synthesize(&f, 0));
        let fits = BurstFitTable::paper_shared();
        let a = LocalWorkload::with_random_offset(trace.clone(), &f, 4, fits.clone());
        let b = LocalWorkload::with_random_offset(trace.clone(), &f, 4, fits.clone());
        assert_eq!(a.offset(), b.offset());
        let c = LocalWorkload::with_random_offset(trace.clone(), &f, 5, fits);
        // Different nodes almost surely start elsewhere.
        assert_ne!(a.offset(), c.offset());
        // The standalone helper draws the very same offsets.
        assert_eq!(LocalWorkload::random_offset(&trace, &f, 4), a.offset());
        assert_eq!(LocalWorkload::random_offset(&trace, &f, 5), c.offset());
    }

    #[test]
    fn bursts_track_a_changing_trace() {
        // First 30 windows at 5%, next 30 at 85%: the run-burst share must
        // jump accordingly.
        let mut samples = Vec::new();
        for _ in 0..30 {
            samples.push(CoarseSample { cpu: 0.05, mem_used_kb: 30_000, keyboard: false });
        }
        for _ in 0..30 {
            samples.push(CoarseSample { cpu: 0.85, mem_used_kb: 30_000, keyboard: true });
        }
        let mut w = workload(Arc::new(CoarseTrace::from_samples(samples)), 0);
        let mut run_lo = 0.0;
        let mut tot_lo = 0.0;
        let mut run_hi = 0.0;
        let mut tot_hi = 0.0;
        while w.position() < SimTime::from_secs(120) {
            let start = w.position();
            let b = w.next_burst();
            let d = b.duration.as_secs_f64();
            if start < SimTime::from_secs(60) {
                tot_lo += d;
                if b.kind == BurstKind::Run {
                    run_lo += d;
                }
            } else {
                tot_hi += d;
                if b.kind == BurstKind::Run {
                    run_hi += d;
                }
            }
        }
        assert!(run_lo / tot_lo < 0.15, "low phase {}", run_lo / tot_lo);
        assert!(run_hi / tot_hi > 0.6, "high phase {}", run_hi / tot_hi);
    }
}
