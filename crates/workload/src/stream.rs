//! Memory-bounded streaming realization of the window table.
//!
//! The monolithic [`WindowTable`](crate::library::WindowTable) costs
//! `O(nodes × period)` bytes — ~12 B per node-window, plus ~17 B per
//! node-sample for the traces behind it. At 1,048,576 nodes and a
//! 3600-second trace that is tens of gigabytes: the memory wall, not the
//! sweep loop, is what used to cap the scaling experiments.
//!
//! This module replaces the build-everything-up-front step with a
//! deterministic pipeline that never materializes a trace at all:
//!
//! * each node keeps a resumable [`TraceStream`] — two counter-based RNGs
//!   plus a handful of scalars (~400 B) — positioned at the sample its
//!   phase offset says the sweep needs next;
//! * a [`WindowCursor`] realizes windows in [`WindowChunk`]s of `W`
//!   windows, built on demand just ahead of the sweep; the chunk and the
//!   per-shard fill buffers form a fixed arena that is recycled on every
//!   refill, so peak memory is `O(nodes × W)` regardless of the period;
//! * chunk fill is sharded over contiguous 64-aligned node ranges
//!   ([`ShardPlan`]) — every node's samples come from its own
//!   `stream_for(domain, node)` streams and shards scatter into disjoint
//!   row slices in node order, so the realized bytes are identical at any
//!   worker count, any shard count, and any chunk size.
//!
//! Replay wraps are handled per node: when `(offset + window) mod period`
//! returns to 0 the node's stream is simply restarted at sample 0, which
//! costs nothing — only the *initial* positioning pays a skip of
//! `offset` samples (on average half a period per node, done once,
//! in parallel, and attributed to setup time by the harness).
//!
//! Knobs: `LINGER_WINDOW_CHUNK` forces streaming with an explicit chunk
//! size (in windows); `LINGER_WINDOW_BUDGET_BYTES` (default 4 GiB) is the
//! ceiling above which a monolithic realization would not fit and the
//! library switches to streaming on its own, sizing chunks to a quarter
//! of the budget.

use crate::coarse::{CoarseTraceConfig, TraceStream};
use linger_sim_core::{default_jobs, RngFactory, ShardPlan};
use std::time::Instant;

/// Default byte ceiling for a fully materialized realization
/// (traces + window table): 4 GiB keeps every historical sweep point
/// (≤65,536 nodes) on the monolithic path while 262,144 nodes and up
/// stream.
pub const DEFAULT_WINDOW_BUDGET_BYTES: usize = 4 << 30;

/// Spawn fill threads only at or above this node count — below it the
/// per-chunk work is too small to amortize thread startup.
const FILL_THREAD_MIN_NODES: usize = 4096;

/// The byte ceiling for materialized realizations
/// (`LINGER_WINDOW_BUDGET_BYTES`, default
/// [`DEFAULT_WINDOW_BUDGET_BYTES`]). Read per call so harnesses can
/// retune between sections.
pub fn window_budget_bytes() -> usize {
    std::env::var("LINGER_WINDOW_BUDGET_BYTES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&b| b > 0)
        .unwrap_or(DEFAULT_WINDOW_BUDGET_BYTES)
}

/// Chunk size override: `LINGER_WINDOW_CHUNK` windows per chunk, which
/// also *forces* the streamed path at any node count (the
/// chunked-vs-monolithic determinism checks rely on this).
pub fn forced_chunk_windows() -> Option<usize> {
    std::env::var("LINGER_WINDOW_CHUNK")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w > 0)
}

/// Estimated resident bytes of a *monolithic* realization: traces
/// (samples + idle flags) plus the window-major table.
pub fn monolithic_bytes_estimate(nodes: usize, period: usize) -> usize {
    let per_sample = std::mem::size_of::<crate::coarse::CoarseSample>() + 1;
    let table_row = nodes * (std::mem::size_of::<f64>() + std::mem::size_of::<u32>())
        + nodes.div_ceil(64) * std::mem::size_of::<u64>();
    nodes * period * per_sample + period * table_row + nodes * std::mem::size_of::<usize>()
}

/// Chunk size (windows) chosen automatically: a quarter of the byte
/// budget, at least 1 window, at most the whole period.
pub fn auto_chunk_windows(nodes: usize, period: usize, budget_bytes: usize) -> usize {
    let per_window = nodes * (std::mem::size_of::<f64>() + std::mem::size_of::<u32>())
        + nodes.div_ceil(64) * std::mem::size_of::<u64>();
    ((budget_bytes / 4) / per_window.max(1)).clamp(1, period.max(1))
}

/// The immutable recipe for a streamed realization: everything a
/// [`WindowCursor`] needs to realize any window of any node, and nothing
/// mutable — so it can live in the shared trace cache and serve any
/// number of concurrent simulations, each with its own cursor.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Trace generator configuration (fixes the period).
    pub cfg: CoarseTraceConfig,
    /// Master seed for the per-node RNG streams.
    pub seed: u64,
    /// Number of nodes realized.
    pub nodes: usize,
    /// Windows per chunk.
    pub chunk_windows: usize,
}

impl StreamSpec {
    /// The replay period in windows (= samples; both are 2 s).
    pub fn period(&self) -> usize {
        self.cfg.sample_count()
    }
}

/// A window-major slice of the realization covering `windows` consecutive
/// absolute windows starting at `base` — same row layout and accessor
/// contract as [`WindowTable`](crate::library::WindowTable), minus the
/// modulo (the cursor already resolved absolute windows to trace
/// samples).
#[derive(Debug, Default)]
pub struct WindowChunk {
    base: usize,
    windows: usize,
    nodes: usize,
    words_per_row: usize,
    cpu: Vec<f64>,
    mem_kb: Vec<u32>,
    idle: Vec<u64>,
}

impl WindowChunk {
    /// First absolute window this chunk holds.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of windows held (0 before the first fill).
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Whether absolute window `w` is resident.
    pub fn contains(&self, w: usize) -> bool {
        self.windows > 0 && w >= self.base && w < self.base + self.windows
    }

    /// Owner CPU demand of every node for absolute window `w`.
    ///
    /// # Panics
    /// If `w` is not resident ([`WindowChunk::contains`]).
    pub fn cpu_row(&self, w: usize) -> &[f64] {
        assert!(self.contains(w), "window {w} not in chunk");
        let start = (w - self.base) * self.nodes;
        &self.cpu[start..start + self.nodes]
    }

    /// Owner-resident memory (KB) of every node for absolute window `w`.
    pub fn mem_row(&self, w: usize) -> &[u32] {
        assert!(self.contains(w), "window {w} not in chunk");
        let start = (w - self.base) * self.nodes;
        &self.mem_kb[start..start + self.nodes]
    }

    /// Recruitment idle flags for absolute window `w` as packed bit
    /// words; bits at or past the node count are zero.
    pub fn idle_row(&self, w: usize) -> &[u64] {
        assert!(self.contains(w), "window {w} not in chunk");
        let start = (w - self.base) * self.words_per_row;
        &self.idle[start..start + self.words_per_row]
    }

    /// Resident bytes of the chunk arena.
    pub fn approx_bytes(&self) -> usize {
        self.cpu.capacity() * std::mem::size_of::<f64>()
            + self.mem_kb.capacity() * std::mem::size_of::<u32>()
            + self.idle.capacity() * std::mem::size_of::<u64>()
    }
}

/// Per-shard fill buffer: the shard's nodes in window-major order,
/// recycled across fills.
#[derive(Default)]
struct BlockBuf {
    cpu: Vec<f64>,
    mem_kb: Vec<u32>,
    idle: Vec<u64>,
}

/// A forward cursor over one simulation's windows, realizing them in
/// chunks.
///
/// One cursor belongs to exactly one simulation run (the per-node
/// streams are mutable); the shared [`StreamSpec`] is the cacheable
/// part. Windows may be requested in any forward order; requesting an
/// earlier window restarts the affected streams (correct, but O(period)
/// — the sweep never does it).
pub struct WindowCursor {
    spec: StreamSpec,
    offsets: Vec<usize>,
    period: usize,
    factory: RngFactory,
    /// Lazily initialized at the first fill (creation + offset skip is
    /// the dominant setup cost and belongs inside `build_secs`).
    streams: Vec<TraceStream>,
    chunk: WindowChunk,
    scratch: Vec<BlockBuf>,
    plan: ShardPlan,
    build_secs: f64,
    chunks_built: u64,
}

impl WindowCursor {
    /// A cursor at window 0 for `spec`, with per-node phase `offsets`
    /// (the `TRACE_OFFSET`-stream draws).
    pub fn new(spec: &StreamSpec, offsets: &[usize]) -> WindowCursor {
        assert_eq!(offsets.len(), spec.nodes, "one offset per node");
        let period = spec.period();
        assert!(period > 0, "streamed realization needs a nonzero period");
        let workers = default_jobs().max(1);
        let shards = if spec.nodes >= FILL_THREAD_MIN_NODES { workers } else { 1 };
        let plan = ShardPlan::new(spec.nodes, shards);
        WindowCursor {
            spec: spec.clone(),
            offsets: offsets.to_vec(),
            period,
            factory: RngFactory::new(spec.seed),
            streams: Vec::new(),
            chunk: WindowChunk::default(),
            scratch: Vec::new(),
            plan,
            build_secs: 0.0,
            chunks_built: 0,
        }
    }

    /// The spec this cursor realizes.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// Seconds spent building chunks so far (stream positioning +
    /// generation + scatter). The harness reports this as setup, not
    /// window-loop time.
    pub fn build_secs(&self) -> f64 {
        self.build_secs
    }

    /// Chunks built so far.
    pub fn chunks_built(&self) -> u64 {
        self.chunks_built
    }

    /// Resident bytes of the cursor arena (chunk + scratch + streams).
    pub fn approx_bytes(&self) -> usize {
        let scratch: usize = self
            .scratch
            .iter()
            .map(|b| {
                b.cpu.capacity() * 8 + b.mem_kb.capacity() * 4 + b.idle.capacity() * 8
            })
            .sum();
        self.chunk.approx_bytes()
            + scratch
            + self.streams.capacity() * std::mem::size_of::<TraceStream>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
    }

    /// Make absolute window `w` resident and return the chunk holding it.
    pub fn ensure(&mut self, w: usize) -> &WindowChunk {
        if !self.chunk.contains(w) {
            self.fill(w);
        }
        &self.chunk
    }

    /// The resident chunk (must already contain the windows being read —
    /// [`WindowCursor::ensure`] first).
    pub fn chunk(&self) -> &WindowChunk {
        &self.chunk
    }

    /// Rebuild the chunk arena to cover `[base, base + W)`.
    fn fill(&mut self, base: usize) {
        let t0 = Instant::now();
        let nodes = self.spec.nodes;
        let period = self.period;
        let windows = self.spec.chunk_windows.min(period).max(1);
        let words_per_row = nodes.div_ceil(64);

        if self.streams.is_empty() {
            // First fill: create every stream at sample 0. The skip to
            // each node's offset happens in the per-window positioning
            // below, inside the sharded fill.
            let spec_cfg = &self.spec.cfg;
            let factory = &self.factory;
            self.streams = linger_sim_core::par_map_indexed(nodes, None, |n| {
                TraceStream::new(spec_cfg, factory, n as u64)
            });
            self.scratch = (0..self.plan.shard_count()).map(|_| BlockBuf::default()).collect();
        }

        // Generate into per-shard window-major buffers.
        let ranges = self.plan.ranges().to_vec();
        let stream_parts = self.plan.split_mut(&mut self.streams);
        let offset_parts: Vec<&[usize]> = {
            let mut parts = Vec::with_capacity(ranges.len());
            let mut rest: &[usize] = &self.offsets;
            let mut consumed = 0usize;
            for r in &ranges {
                let (head, tail) = rest.split_at(r.end - consumed);
                parts.push(head);
                rest = tail;
                consumed = r.end;
            }
            parts
        };
        let spec_cfg = &self.spec.cfg;
        let factory = &self.factory;
        let fill_shard = |streams: &mut [TraceStream],
                          offsets: &[usize],
                          buf: &mut BlockBuf,
                          range: &std::ops::Range<usize>| {
            let len = range.len();
            let words = len.div_ceil(64);
            buf.cpu.clear();
            buf.cpu.resize(windows * len, 0.0);
            buf.mem_kb.clear();
            buf.mem_kb.resize(windows * len, 0);
            buf.idle.clear();
            buf.idle.resize(windows * words, 0);
            for (j, (stream, &offset)) in streams.iter_mut().zip(offsets).enumerate() {
                for dw in 0..windows {
                    let target = (offset + base + dw) % period;
                    if stream.index() > target {
                        // Wrapped past the end of the trace: replay from
                        // sample 0 (a fresh stream *is* sample 0).
                        *stream = TraceStream::new(spec_cfg, factory, range.start as u64 + j as u64);
                    }
                    if stream.index() < target {
                        stream.skip(target - stream.index());
                    }
                    let (s, idle) = stream.next_sample();
                    buf.cpu[dw * len + j] = s.cpu;
                    buf.mem_kb[dw * len + j] = s.mem_used_kb;
                    if idle {
                        buf.idle[dw * words + j / 64] |= 1u64 << (j % 64);
                    }
                }
            }
        };
        if ranges.len() > 1 {
            let fill_shard = &fill_shard;
            std::thread::scope(|scope| {
                for (((streams, offsets), buf), range) in stream_parts
                    .into_iter()
                    .zip(offset_parts)
                    .zip(self.scratch.iter_mut())
                    .zip(&ranges)
                {
                    scope.spawn(move || fill_shard(streams, offsets, buf, range));
                }
            });
        } else {
            for (((streams, offsets), buf), range) in stream_parts
                .into_iter()
                .zip(offset_parts)
                .zip(self.scratch.iter_mut())
                .zip(&ranges)
            {
                fill_shard(streams, offsets, buf, range);
            }
        }

        // Scatter shard buffers into window-major rows, in node order.
        let chunk = &mut self.chunk;
        chunk.base = base;
        chunk.windows = windows;
        chunk.nodes = nodes;
        chunk.words_per_row = words_per_row;
        chunk.cpu.clear();
        chunk.cpu.resize(windows * nodes, 0.0);
        chunk.mem_kb.clear();
        chunk.mem_kb.resize(windows * nodes, 0);
        chunk.idle.clear();
        chunk.idle.resize(windows * words_per_row, 0);
        for dw in 0..windows {
            for (i, (buf, range)) in self.scratch.iter().zip(&ranges).enumerate() {
                let len = range.len();
                let words = len.div_ceil(64);
                chunk.cpu[dw * nodes + range.start..dw * nodes + range.end]
                    .copy_from_slice(&buf.cpu[dw * len..dw * len + len]);
                chunk.mem_kb[dw * nodes + range.start..dw * nodes + range.end]
                    .copy_from_slice(&buf.mem_kb[dw * len..dw * len + len]);
                let wr = self.plan.word_range(i);
                chunk.idle[dw * words_per_row + wr.start..dw * words_per_row + wr.end]
                    .copy_from_slice(&buf.idle[dw * words..dw * words + words]);
            }
        }

        self.build_secs += t0.elapsed().as_secs_f64();
        self.chunks_built += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::WorkloadRealization;
    use linger_sim_core::SimDuration;

    fn cfg(secs: u64) -> CoarseTraceConfig {
        CoarseTraceConfig { duration: SimDuration::from_secs(secs), ..Default::default() }
    }

    /// Every chunk size must reproduce the monolithic table bit-for-bit,
    /// including across the wrap.
    #[test]
    fn chunked_rows_match_monolithic_table() {
        let c = cfg(600); // period 300
        let mono = WorkloadRealization::synthesize_monolithic(&c, 13, 70);
        let tbl = mono.window_table().expect("table");
        for chunk_windows in [1usize, 7, 64, 300] {
            let streamed = WorkloadRealization::synthesize_streamed(&c, 13, 70, chunk_windows);
            let mut cur = streamed.cursor().expect("streamed");
            assert_eq!(streamed.offsets(), mono.offsets());
            // Probe past the period to exercise per-node restarts.
            for w in 0..2 * tbl.period() + 3 {
                let chunk = cur.ensure(w);
                assert_eq!(
                    chunk.cpu_row(w).iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                    tbl.cpu_row(w).iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                    "cpu row {w} chunk {chunk_windows}"
                );
                assert_eq!(chunk.mem_row(w), tbl.mem_row(w), "mem row {w}");
                assert_eq!(chunk.idle_row(w), tbl.idle_row(w), "idle row {w}");
            }
            assert!(cur.build_secs() > 0.0);
            assert!(cur.chunks_built() >= 1);
        }
    }

    #[test]
    fn auto_chunk_respects_budget_and_period() {
        // Period caps the chunk.
        assert_eq!(auto_chunk_windows(64, 10, usize::MAX), 10);
        // Tiny budgets still realize one window at a time.
        assert_eq!(auto_chunk_windows(1 << 20, 1800, 1), 1);
        // A quarter of the budget, not all of it.
        let nodes = 1 << 20;
        let w = auto_chunk_windows(nodes, 1800, 4 << 30);
        let per_window = nodes * 12 + nodes / 64 * 8;
        assert!(w * per_window <= 1 << 30);
        assert!(w >= 64, "got {w}");
    }

    #[test]
    fn monolithic_estimate_tracks_realized_bytes() {
        let c = cfg(600);
        let real = WorkloadRealization::synthesize_monolithic(&c, 5, 40);
        let est = monolithic_bytes_estimate(40, c.sample_count());
        let actual = real.approx_bytes();
        assert!(est >= actual, "estimate {est} must not undershoot {actual}");
        assert!(est <= actual * 2, "estimate {est} way above {actual}");
    }
}
