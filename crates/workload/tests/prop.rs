//! Property tests of the workload models.

use linger_sim_core::{domains, RngFactory, SimDuration};
use linger_workload::{
    BurstGenerator, BurstKind, BurstParamTable, CoarseSample, CoarseTrace, CoarseTraceConfig,
    DispatchTrace, TwoPoolMemory, MIN_BURST, TOTAL_MEMORY_KB,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpolation_is_locally_bounded(u in 0.0f64..=1.0) {
        // Interpolated parameters lie between the surrounding buckets.
        let t = BurstParamTable::paper_calibrated();
        let p = t.interpolate(u);
        let lo = (u / 0.05).floor().min(20.0) as usize;
        let hi = (lo + 1).min(20);
        let a = t.buckets()[lo];
        let b = t.buckets()[hi];
        let between = |x: f64, p: f64, q: f64| {
            let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
            x >= lo - 1e-9 && x <= hi + 1e-9
        };
        prop_assert!(between(p.run_mean, a.run_mean, b.run_mean));
        prop_assert!(between(p.idle_mean, a.idle_mean, b.idle_mean));
    }

    #[test]
    fn generator_utilization_tracks_target(u in 0.05f64..=0.95, seed in 0u64..100) {
        let f = RngFactory::new(seed);
        let mut g = BurstGenerator::paper(u);
        let mut rng = f.stream_for(domains::FINE_BURSTS, seed);
        let mut run = 0.0;
        let mut total = 0.0;
        for _ in 0..30_000 {
            let b = g.next_burst(&mut rng);
            total += b.duration.as_secs_f64();
            if b.kind == BurstKind::Run {
                run += b.duration.as_secs_f64();
            }
        }
        let got = run / total;
        prop_assert!((got - u).abs() < 0.08, "target {u}, got {got}");
    }

    #[test]
    fn bursts_never_fall_below_minimum(u in 0.0f64..=1.0, seed in 0u64..50) {
        let f = RngFactory::new(seed);
        let mut g = BurstGenerator::paper(u);
        let mut rng = f.stream_for(domains::FINE_BURSTS, 1);
        for _ in 0..2_000 {
            prop_assert!(g.next_burst(&mut rng).duration >= MIN_BURST);
        }
    }

    #[test]
    fn dispatch_trace_duration_is_exact(
        secs in 1u64..120,
        u in 0.0f64..=1.0,
        id in 0u64..32,
    ) {
        let f = RngFactory::new(4);
        let t = DispatchTrace::synthesize_fixed(&f, id, u, SimDuration::from_secs(secs));
        prop_assert_eq!(t.total_duration(), SimDuration::from_secs(secs));
    }

    #[test]
    fn recruitment_flags_are_sound(
        cpu_levels in prop::collection::vec(0.0f64..1.0, 40..200),
        kb_mask in prop::collection::vec(any::<bool>(), 40..200),
    ) {
        // An idle flag implies every sample in the trailing minute was
        // quiet.
        let n = cpu_levels.len().min(kb_mask.len());
        let samples: Vec<CoarseSample> = (0..n)
            .map(|i| CoarseSample {
                cpu: cpu_levels[i],
                mem_used_kb: 30_000,
                keyboard: kb_mask[i],
            })
            .collect();
        let t = CoarseTrace::from_samples(samples.clone());
        let window = 30usize; // 60 s / 2 s
        for (i, &idle) in t.idle_flags().iter().enumerate() {
            if idle {
                prop_assert!(i + 1 >= window);
                for s in &samples[i + 1 - window..=i] {
                    prop_assert!(s.cpu < 0.10 && !s.keyboard);
                }
            }
        }
    }

    #[test]
    fn synthetic_traces_have_sane_samples(seed in 0u64..30, machine in 0u64..8) {
        let cfg = CoarseTraceConfig {
            duration: SimDuration::from_secs(600),
            ..Default::default()
        };
        let t = cfg.synthesize(&RngFactory::new(seed), machine);
        for s in t.samples() {
            prop_assert!((0.0..=1.0).contains(&s.cpu));
            prop_assert!(s.mem_used_kb <= TOTAL_MEMORY_KB);
        }
    }

    #[test]
    fn memory_model_is_a_lattice_walk(
        local_seq in prop::collection::vec(0u32..=80_000, 1..80),
        job_kb in 1u32..=40_000,
    ) {
        let mut m = TwoPoolMemory::new(64 * 1024, 24 * 1024);
        let could_fit = m.fits(job_kb);
        let resident = m.attach_foreign(job_kb);
        if could_fit {
            prop_assert!(resident >= job_kb / 4096 * 4096);
        }
        let mut reclaimed_prev = 0;
        for kb in local_seq {
            m.set_local_kb(kb);
            prop_assert!(m.local_kb() + m.foreign_resident_kb() <= m.total_kb());
            // Reclaim counter is monotone.
            prop_assert!(m.reclaimed_pages() >= reclaimed_prev);
            reclaimed_prev = m.reclaimed_pages();
        }
        m.detach_foreign();
        prop_assert_eq!(m.foreign_resident_kb(), 0);
    }
}
