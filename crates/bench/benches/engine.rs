//! Micro-benchmarks of the discrete-event substrate: event queue
//! throughput and the engine loop.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linger_sim_core::{Context, Engine, EventQueue, SimDuration, SimTime, Simulation};
use std::hint::black_box;

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                // Pseudo-random timestamps exercise heap reordering.
                let mut x = 0x2545F4914F6CDD1Du64;
                for i in 0..10_000u64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.schedule(SimTime::from_nanos(x % 1_000_000_000), i);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("schedule_cancel_half_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                let handles: Vec<_> = (0..10_000u64)
                    .map(|i| q.schedule(SimTime::from_nanos(i * 37 % 999_983), i))
                    .collect();
                for h in handles.iter().step_by(2) {
                    q.cancel(*h);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

struct Chain {
    left: u32,
}
impl Simulation for Chain {
    type Event = ();
    fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
        if self.left > 0 {
            self.left -= 1;
            ctx.schedule_in(SimDuration::from_micros(10), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_chain_100k_events", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Chain { left: 100_000 });
            eng.prime(SimTime::ZERO, ());
            eng.run_to_completion();
            black_box(eng.events_handled())
        })
    });
}

criterion_group!(benches, bench_queue, bench_engine);
criterion_main!(benches);
