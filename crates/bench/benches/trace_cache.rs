//! Benchmarks of the shared workload-realization cache and the batched
//! hyper-exponential burst sampler.
//!
//! * `realize_cold_*` — a cache miss: full trace synthesis + random
//!   offsets + window-table prebuild, at 64 and 1024 nodes. This is what
//!   every policy in a sweep used to pay individually.
//! * `realize_warm_*` — a cache hit at the same sizes: a key hash plus an
//!   `Arc` clone. The cold/warm ratio is the per-policy saving the cache
//!   buys on the fig07/fig11 sweeps.
//! * `bursts_*` — per-draw `next_burst` loop vs one batched
//!   `next_bursts_into` call for the same burst count, quantifying the
//!   slab-sampling win inside trace synthesis itself.

use criterion::{criterion_group, criterion_main, Criterion};
use linger_sim_core::{domains, RngFactory, SimDuration};
use linger_workload::{BurstGenerator, CoarseTraceConfig, TraceLibrary};
use std::hint::black_box;

fn trace_cfg() -> CoarseTraceConfig {
    CoarseTraceConfig { duration: SimDuration::from_secs(600), ..Default::default() }
}

fn bench_realize(c: &mut Criterion) {
    let cfg = trace_cfg();
    for nodes in [64usize, 1024] {
        c.bench_function(&format!("realize_cold_{nodes}n"), |b| {
            let lib = TraceLibrary::new();
            b.iter(|| {
                lib.clear();
                black_box(lib.realize(&cfg, 1998, nodes))
            })
        });
        c.bench_function(&format!("realize_warm_{nodes}n"), |b| {
            let lib = TraceLibrary::new();
            lib.realize(&cfg, 1998, nodes);
            b.iter(|| black_box(lib.realize(&cfg, 1998, nodes)))
        });
    }
}

fn bench_burst_sampling(c: &mut Criterion) {
    const N: usize = 4096;
    let factory = RngFactory::new(1998);
    c.bench_function("bursts_per_draw_4096", |b| {
        b.iter(|| {
            let mut generator = BurstGenerator::paper(0.5);
            let mut rng = factory.stream_for(domains::FINE_BURSTS, 0);
            let mut out = Vec::with_capacity(N);
            for _ in 0..N {
                out.push(generator.next_burst(&mut rng));
            }
            black_box(out)
        })
    });
    c.bench_function("bursts_batched_4096", |b| {
        b.iter(|| {
            let mut generator = BurstGenerator::paper(0.5);
            let mut rng = factory.stream_for(domains::FINE_BURSTS, 0);
            let mut out = Vec::with_capacity(N);
            generator.next_bursts_into(&mut rng, N, &mut out);
            black_box(out)
        })
    });
}

criterion_group!(benches, bench_realize, bench_burst_sampling);
criterion_main!(benches);
