//! Schedule/cancel/pop churn micro-benchmarks for the slab-backed
//! [`EventQueue`] — the access pattern timer-heavy simulations produce:
//! every scheduled timeout is usually cancelled and rescheduled before it
//! fires, so the queue lives under a standing wave of tombstones.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linger_sim_core::{EventQueue, SimTime};
use std::hint::black_box;

/// xorshift64* — cheap deterministic timestamps that churn the heap.
fn next(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_churn");

    // The timer-wheel pattern: keep N pending timeouts, and on every pop
    // cancel one survivor and schedule a replacement. Cancellations never
    // stop, so tombstone pruning and compaction run continuously.
    g.bench_function("steady_state_reschedule_50k_ops", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::<u64>::new();
                let mut x = 0x9E3779B97F4A7C15u64;
                let handles: Vec<_> = (0..1_024u64)
                    .map(|i| q.schedule(SimTime::from_nanos(next(&mut x) % 1_000_000), i))
                    .collect();
                (q, handles, x)
            },
            |(mut q, mut handles, mut x)| {
                for i in 0..50_000u64 {
                    let victim = (next(&mut x) as usize) % handles.len();
                    q.cancel(handles[victim]);
                    handles[victim] =
                        q.schedule(SimTime::from_nanos(next(&mut x) % 1_000_000), i);
                    if i % 4 == 0 {
                        black_box(q.pop());
                    }
                }
                black_box(q.len())
            },
            BatchSize::SmallInput,
        )
    });

    // Worst case for lazy cancellation: nearly everything scheduled is
    // dead by the time the heap drains.
    g.bench_function("cancel_90pct_then_drain_20k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                let mut x = 0x2545F4914F6CDD1Du64;
                let handles: Vec<_> = (0..20_000u64)
                    .map(|i| q.schedule(SimTime::from_nanos(next(&mut x) % 1_000_000_000), i))
                    .collect();
                for (i, h) in handles.iter().enumerate() {
                    if i % 10 != 0 {
                        q.cancel(*h);
                    }
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });

    // Pure horizon-bounded drain, the engine's inner loop shape.
    g.bench_function("pop_due_horizon_sweep_20k", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::<u64>::new();
                let mut x = 0xD1B54A32D192ED03u64;
                for i in 0..20_000u64 {
                    q.schedule(SimTime::from_nanos(next(&mut x) % 1_000_000_000), i);
                }
                q
            },
            |mut q| {
                let mut horizon = 0u64;
                while !q.is_empty() {
                    horizon += 50_000_000;
                    while let Some(e) = q.pop_due(SimTime::from_nanos(horizon)) {
                        black_box(e);
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
