//! Cluster-simulator benchmarks, including the fidelity ablation
//! DESIGN.md calls out: the closed-form window rate (`steal_rate`) versus
//! the burst-accurate executor (`FineGrainCpu`) that it summarizes.

use criterion::{criterion_group, criterion_main, Criterion};
use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim};
use linger_node::{steal_rate, FineGrainCpu, FixedUtilization};
use linger_sim_core::{domains, RngFactory, SimDuration};
use linger_workload::BurstParamTable;
use std::hint::black_box;

fn small_cluster(policy: Policy) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        policy,
        JobFamily::uniform(16, SimDuration::from_secs(120), 8 * 1024),
    );
    cfg.nodes = 16;
    cfg.trace.duration = SimDuration::from_secs(3600);
    cfg
}

fn bench_cluster(c: &mut Criterion) {
    c.bench_function("cluster_family_16n_16j", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(small_cluster(Policy::LingerLonger));
            sim.run();
            black_box(sim.completed())
        })
    });
    c.bench_function("cluster_build_64n", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::paper(Policy::LingerLonger, JobFamily::workload_1());
            cfg.trace.duration = SimDuration::from_secs(3600);
            black_box(ClusterSim::new(cfg))
        })
    });
}

/// Ablation: the cluster's per-window progress model vs. the
/// burst-accurate executor. Reports both timing and (through the printed
/// assertion) the agreement of the two on delivered CPU.
fn bench_rate_ablation(c: &mut Criterion) {
    let table = BurstParamTable::paper_calibrated();
    let cs = SimDuration::from_micros(100);
    let f = RngFactory::new(9);

    // Agreement check once, outside the timed region. The run-burst
    // distribution is heavy-tailed (CV² up to ~17), so the sample needs
    // minutes of demand to concentrate.
    for u in [0.1, 0.3, 0.6] {
        let analytic = steal_rate(&table, u, cs);
        let src = FixedUtilization::new(u, f.stream_for(domains::FINE_BURSTS, 7));
        let mut cpu = FineGrainCpu::new(src, cs);
        let demand = SimDuration::from_secs(240);
        let wall = cpu.consume(demand);
        let measured = demand.as_secs_f64() / wall.as_secs_f64();
        assert!(
            (measured - analytic).abs() / analytic < 0.12,
            "ablation disagreement at u={u}: {measured} vs {analytic}"
        );
    }

    c.bench_function("ablation_window_rate_1h", |b| {
        // One hour of 2-second windows through the closed form.
        b.iter(|| {
            let mut total = 0.0;
            for w in 0..1800 {
                let u = (w % 10) as f64 / 10.0;
                total += 2.0 * steal_rate(&table, u, cs);
            }
            black_box(total)
        })
    });
    c.bench_function("ablation_fine_grain_1h", |b| {
        // The same hour simulated burst-by-burst.
        b.iter(|| {
            let src = FixedUtilization::new(0.45, f.stream_for(domains::FINE_BURSTS, 8));
            let mut cpu = FineGrainCpu::new(src, cs);
            let mut wall = SimDuration::ZERO;
            while wall < SimDuration::from_secs(3600) {
                wall += cpu.consume(SimDuration::from_secs(1));
            }
            black_box(cpu.foreign_cpu())
        })
    });
}

criterion_group!(benches, bench_cluster, bench_rate_ablation);
criterion_main!(benches);
