//! Respawn-churn benchmarks of the job-slot recycler: the same
//! constant-load throughput configuration as `ext_scaling`, at 4096 and
//! 65,536 nodes, run append-only (`set_slot_reuse(false)`, the
//! historical layout) versus recycled (the default). Runs are
//! deterministic, so a probe run pins the respawn count and each
//! layout's live-lane bytes up front — printed alongside, with
//! ns/respawn derived from the probe's wall-clock, since the recycler's
//! claim is as much about the footprint the window sweeps stride over
//! as about the respawn itself.

use criterion::{criterion_group, criterion_main, Criterion};
use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim, RunMode};
use linger_sim_core::{SimDuration, SimTime};
use linger_workload::CoarseTraceConfig;
use std::hint::black_box;

fn churn_cfg(nodes: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        Policy::LingerLonger,
        // Short demands against a long horizon: every slot turns over
        // many times, so the respawn path dominates the delta between
        // the two layouts.
        JobFamily::uniform((2 * nodes) as u32, SimDuration::from_secs(60), 8 * 1024),
    );
    cfg.nodes = nodes;
    cfg.seed = 1998;
    cfg.trace = CoarseTraceConfig {
        duration: SimDuration::from_secs(3600),
        ..Default::default()
    };
    cfg.mode = RunMode::Throughput { horizon: SimTime::from_secs(600) };
    cfg
}

/// One timed run of the cell under the given layout, reporting the
/// respawn count, final live-lane bytes/rows, and ns per respawn.
fn probe(nodes: usize, recycle: bool) -> u64 {
    let mut sim = ClusterSim::new(churn_cfg(nodes));
    sim.set_slot_reuse(recycle);
    let t0 = std::time::Instant::now();
    sim.run();
    let secs = t0.elapsed().as_secs_f64();
    let respawns = sim.completed() as u64;
    println!(
        "slot_reuse probe {nodes}n {}: {} respawns, {:.0} ns/respawn, \
         live lanes {} bytes ({} rows, {} archived)",
        if recycle { "recycled" } else { "append-only" },
        respawns,
        secs * 1e9 / respawns.max(1) as f64,
        sim.live_lane_bytes(),
        sim.live_job_rows(),
        sim.archived_jobs(),
    );
    respawns
}

fn bench_respawn_churn(c: &mut Criterion) {
    for nodes in [4096usize, 65_536] {
        probe(nodes, true);
        probe(nodes, false);
        let name = format!("respawn_churn_{nodes}n");
        let mut group = c.benchmark_group(&name);
        for (label, recycle) in [("recycled", true), ("append_only", false)] {
            group.bench_function(label, |b| {
                b.iter_batched(
                    || {
                        let mut sim = ClusterSim::new(churn_cfg(nodes));
                        sim.set_slot_reuse(recycle);
                        sim
                    },
                    |mut sim| {
                        sim.run();
                        black_box((sim.completed(), sim.live_lane_bytes()))
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_respawn_churn);
criterion_main!(benches);
