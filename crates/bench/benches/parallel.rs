//! Parallel-simulator benchmarks: BSP runs and the application models.

use criterion::{criterion_group, criterion_main, Criterion};
use linger_parallel::{run_bsp, App, BspConfig};
use std::hint::black_box;

fn bench_bsp(c: &mut Criterion) {
    c.bench_function("bsp_8proc_200phase", |b| {
        let cfg = BspConfig::fig9();
        let utils = [0.0, 0.2, 0.0, 0.0, 0.2, 0.0, 0.0, 0.2];
        b.iter(|| black_box(run_bsp(&cfg, &utils, 5, 1)))
    });
}

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("app_iteration");
    for app in App::ALL {
        g.bench_function(app.name(), |b| {
            let cfg = app.config(8, 8);
            let utils = [0.2; 8];
            b.iter(|| black_box(run_bsp(&cfg, &utils, 5, 2)))
        });
    }
    g.finish();
}

fn bench_parallel_cluster(c: &mut Criterion) {
    use linger_parallel::{simulate_parallel_cluster, ParallelClusterConfig, ParallelPolicy};
    use linger_sim_core::{SimDuration, SimTime};
    use linger_workload::CoarseTraceConfig;
    c.bench_function("parallel_cluster_throughput_1h", |b| {
        let cfg = ParallelClusterConfig {
            nodes: 16,
            width: 4,
            phases: 120,
            horizon: SimTime::from_secs(3600),
            trace: CoarseTraceConfig {
                duration: SimDuration::from_secs(3600),
                ..Default::default()
            },
            seed: 3,
            ..Default::default()
        };
        b.iter(|| black_box(simulate_parallel_cluster(&cfg, ParallelPolicy::Linger)))
    });
}

criterion_group!(benches, bench_bsp, bench_apps, bench_parallel_cluster);
criterion_main!(benches);
