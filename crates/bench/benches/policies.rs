//! Policy-level benchmarks: the four policies on identical workload
//! realizations (common random numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim};
use linger_sim_core::SimDuration;
use std::hint::black_box;

fn cfg(policy: Policy) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        policy,
        JobFamily::uniform(12, SimDuration::from_secs(120), 8 * 1024),
    );
    cfg.nodes = 12;
    cfg.trace.duration = SimDuration::from_secs(3600);
    cfg
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_family_run");
    for policy in Policy::ALL {
        g.bench_function(policy.abbrev(), |b| {
            b.iter(|| {
                let mut sim = ClusterSim::new(cfg(policy));
                sim.run();
                black_box(sim.foreign_cpu_delivered())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
