//! Scaling benchmarks of the cluster window loop: the same constant-load
//! throughput configuration the `ext_scaling` sweep runs, at 64 and 1024
//! nodes, isolating the per-window cost (setup excluded) so regressions
//! in the indexed node state or the window-major refresh show up as a
//! superlinear gap between the two sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim, RunMode};
use linger_sim_core::{SimDuration, SimTime};
use linger_workload::CoarseTraceConfig;
use std::hint::black_box;

fn throughput_cfg(policy: Policy, nodes: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        policy,
        JobFamily::uniform((2 * nodes) as u32, SimDuration::from_secs(300), 8 * 1024),
    );
    cfg.nodes = nodes;
    cfg.seed = 1998;
    cfg.trace = CoarseTraceConfig {
        duration: SimDuration::from_secs(3600),
        ..Default::default()
    };
    cfg.mode = RunMode::Throughput { horizon: SimTime::from_secs(600) };
    cfg
}

fn bench_window_loop(c: &mut Criterion) {
    for nodes in [64usize, 1024] {
        for policy in [Policy::LingerLonger, Policy::ImmediateEviction] {
            let name = format!("window_loop_{}n_{}", nodes, policy.abbrev());
            c.bench_function(&name, |b| {
                b.iter_batched(
                    || ClusterSim::new(throughput_cfg(policy, nodes)),
                    |mut sim| {
                        sim.run();
                        black_box(sim.completed())
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
}

fn bench_setup(c: &mut Criterion) {
    c.bench_function("cluster_setup_1024n", |b| {
        b.iter(|| black_box(ClusterSim::new(throughput_cfg(Policy::LingerLonger, 1024))))
    });
}

criterion_group!(benches, bench_window_loop, bench_setup);
criterion_main!(benches);
