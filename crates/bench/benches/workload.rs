//! Micro-benchmarks of the workload substrate: burst generation,
//! moment fitting, dispatch-trace synthesis and coarse-trace synthesis.

use criterion::{criterion_group, criterion_main, Criterion};
use linger_sim_core::{domains, RngFactory, SimDuration};
use linger_stats::fit_two_moments;
use linger_workload::{BurstGenerator, CoarseTraceConfig, DispatchTrace, FineGrainAnalysis};
use std::hint::black_box;

fn bench_bursts(c: &mut Criterion) {
    c.bench_function("burst_generation_100k", |b| {
        let f = RngFactory::new(1);
        b.iter(|| {
            let mut gen = BurstGenerator::paper(0.35);
            let mut rng = f.stream_for(domains::FINE_BURSTS, 0);
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(gen.next_burst(&mut rng).duration.as_nanos());
            }
            black_box(acc)
        })
    });
}

fn bench_bursts_changing_utilization(c: &mut Criterion) {
    // Drives the generator the way the cluster simulators do: the target
    // utilization is reset every window (often to the same value, as CPU
    // load tends to dwell in one trace bucket), with a burst drawn after
    // each reset. Exercises the set_utilization fast path that skips the
    // distribution rebuild when the interpolated parameters are unchanged.
    let f = RngFactory::new(1);
    let sweep: Vec<f64> = (0..64).map(|w| 0.2 + 0.5 * ((w / 8) % 2) as f64).collect();
    c.bench_function("burst_generation_changing_utilization", |b| {
        b.iter(|| {
            let mut gen = BurstGenerator::paper(sweep[0]);
            let mut rng = f.stream_for(domains::FINE_BURSTS, 1);
            let mut acc = 0u64;
            for _ in 0..256 {
                for &u in &sweep {
                    gen.set_utilization(u);
                    acc = acc.wrapping_add(gen.next_burst(&mut rng).duration.as_nanos());
                }
            }
            black_box(acc)
        })
    });
}

fn bench_fit(c: &mut Criterion) {
    c.bench_function("two_moment_fit_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..1000 {
                let mean = i as f64 * 1e-4;
                for cv2 in [0.3, 1.0, 4.0, 12.0] {
                    let f = fit_two_moments(mean, cv2 * mean * mean);
                    acc += linger_stats::Distribution::mean(&f);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_traces(c: &mut Criterion) {
    let f = RngFactory::new(2);
    c.bench_function("dispatch_trace_60s", |b| {
        b.iter(|| {
            black_box(DispatchTrace::synthesize_fixed(
                &f,
                0,
                0.5,
                SimDuration::from_secs(60),
            ))
        })
    });
    c.bench_function("coarse_trace_4h", |b| {
        let cfg = CoarseTraceConfig::default();
        b.iter(|| black_box(cfg.synthesize(&f, 0)))
    });
    c.bench_function("fine_grain_analysis_60s", |b| {
        let trace = DispatchTrace::synthesize_fixed(&f, 0, 0.5, SimDuration::from_secs(60));
        b.iter(|| {
            let mut an = FineGrainAnalysis::new(false);
            an.ingest(&trace);
            black_box(an.to_param_table())
        })
    });
}

criterion_group!(benches, bench_bursts, bench_bursts_changing_utilization, bench_fit, bench_traces);
criterion_main!(benches);
