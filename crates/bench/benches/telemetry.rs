//! Benchmarks of the telemetry recorder on the cluster window loop.
//!
//! * `fig07_cell_disabled` — a fig07-fast-scale cluster cell with a
//!   disabled recorder: every emission site costs one `Option` branch
//!   and the event closures never run. This is the default-path cost
//!   the ≤3% overhead contract is about.
//! * `fig07_cell_journaling` — the same cell journaling into a
//!   default-capacity ring: closures run, events are pushed under the
//!   journal mutex (uncontended here — one sim, one thread).
//! * `record_disabled` / `record_journaling` — the per-emission cost in
//!   isolation, outside any simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim};
use linger_sim_core::SimDuration;
use linger_telemetry::{Event, EventKind, Recorder, DEFAULT_CAPACITY};
use std::hint::black_box;

fn cell_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        Policy::LingerLonger,
        JobFamily::uniform(32, SimDuration::from_secs(300), 8 * 1024),
    );
    cfg.nodes = 16;
    cfg.seed = 1998;
    cfg
}

fn bench_cluster_cell(c: &mut Criterion) {
    c.bench_function("fig07_cell_disabled", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(cell_cfg()).with_recorder(Recorder::disabled());
            black_box(sim.run())
        })
    });
    c.bench_function("fig07_cell_journaling", |b| {
        b.iter(|| {
            let mut sim =
                ClusterSim::new(cell_cfg()).with_recorder(Recorder::with_capacity(DEFAULT_CAPACITY));
            black_box(sim.run())
        })
    });
}

fn bench_record(c: &mut Criterion) {
    const N: u64 = 4096;
    c.bench_function("record_disabled_4096", |b| {
        let recorder = Recorder::disabled();
        b.iter(|| {
            for i in 0..N {
                recorder.record(|| {
                    Event::new(i as u32, i, EventKind::WindowStart { queue_depth: i as u32 })
                });
            }
            black_box(&recorder).enabled()
        })
    });
    c.bench_function("record_journaling_4096", |b| {
        let recorder = Recorder::with_capacity(DEFAULT_CAPACITY);
        b.iter(|| {
            for i in 0..N {
                recorder.record(|| {
                    Event::new(i as u32, i, EventKind::WindowStart { queue_depth: i as u32 })
                });
            }
            black_box(recorder.journal().map(|j| j.len()))
        })
    });
}

criterion_group!(benches, bench_cluster_cell, bench_record);
criterion_main!(benches);
