//! Micro-benchmarks of the single-node scheduler: fine-grain execution
//! and the Fig 5 simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use linger_node::{simulate_single_node, FineGrainCpu, FixedUtilization, SingleNodeConfig};
use linger_sim_core::{domains, RngFactory, SimDuration};
use std::hint::black_box;

fn bench_consume(c: &mut Criterion) {
    let f = RngFactory::new(3);
    for u in [0.2, 0.8] {
        c.bench_function(&format!("fine_grain_consume_10s_u{}", (u * 100.0) as u32), |b| {
            b.iter(|| {
                let src = FixedUtilization::new(u, f.stream_for(domains::FINE_BURSTS, 0));
                let mut cpu = FineGrainCpu::new(src, SimDuration::from_micros(100));
                black_box(cpu.consume(SimDuration::from_secs(10)))
            })
        });
    }
}

fn bench_single_node(c: &mut Criterion) {
    c.bench_function("fig5_point_60s", |b| {
        let cfg = SingleNodeConfig {
            utilization: 0.5,
            context_switch: SimDuration::from_micros(100),
            duration: SimDuration::from_secs(60),
            seed: 1,
        };
        b.iter(|| black_box(simulate_single_node(&cfg)))
    });
}

fn bench_kernel(c: &mut Criterion) {
    use linger_node::{simulate_kernel, KernelConfig, LocalProcessSpec};
    c.bench_function("kernel_model_60s", |b| {
        let cfg = KernelConfig {
            processes: vec![LocalProcessSpec::from_bucket(0.3)],
            duration: SimDuration::from_secs(60),
            seed: 2,
            ..Default::default()
        };
        b.iter(|| black_box(simulate_kernel(&cfg)))
    });
}

criterion_group!(benches, bench_consume, bench_single_node, bench_kernel);
criterion_main!(benches);
