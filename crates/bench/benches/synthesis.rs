//! Workload-synthesis benchmarks: the parallel trace-library fan-out and
//! the streamed window pipeline's chunk build, at the node counts where
//! the `ext_scaling` sweep switches representations. Serial and parallel
//! synthesis run over the same seeds (the fan-out is index-keyed, so the
//! bytes are identical either way) — the gap between the two is the
//! speedup the worker pool buys, and a chunk-build regression shows up
//! directly as streamed-cell setup cost in the scaling sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use linger_sim_core::{set_default_jobs, RngFactory, SimDuration};
use linger_workload::{CoarseTraceConfig, WorkloadRealization};
use std::hint::black_box;

fn trace_cfg() -> CoarseTraceConfig {
    CoarseTraceConfig {
        duration: SimDuration::from_secs(3600),
        ..Default::default()
    }
}

fn bench_synthesize_library(c: &mut Criterion) {
    let cfg = trace_cfg();
    for nodes in [4096usize, 65_536] {
        for (mode, jobs) in [("serial", 1usize), ("parallel", 0)] {
            let name = format!("synthesize_library_{nodes}n_{mode}");
            c.bench_function(&name, |b| {
                set_default_jobs(jobs);
                let factory = RngFactory::new(1998);
                b.iter(|| black_box(cfg.synthesize_library(&factory, nodes)));
                set_default_jobs(0);
            });
        }
    }
}

fn bench_chunk_build(c: &mut Criterion) {
    let cfg = trace_cfg();
    for nodes in [4096usize, 65_536] {
        // 64-window chunks: the cursor rebuilds its arena once per
        // `ensure` past the current chunk, so stepping a fresh cursor
        // through the first four chunks times pure build throughput.
        let real = WorkloadRealization::synthesize_streamed(&cfg, 1998, nodes, 64);
        let name = format!("chunk_build_{nodes}n_64w");
        c.bench_function(&name, |b| {
            b.iter(|| {
                let mut cursor = real.cursor().expect("streamed realization");
                for w in (0..256).step_by(64) {
                    black_box(cursor.ensure(w).windows());
                }
                cursor.chunks_built()
            })
        });
    }
}

criterion_group!(benches, bench_synthesize_library, bench_chunk_build);
criterion_main!(benches);
