//! The parallel runner's headline guarantee: experiment output is
//! **byte-identical** at any worker count, and across repeated runs.
//!
//! Each check serializes the result with the exact JSON emitter the
//! harness uses, then compares strings — not floats with a tolerance —
//! because the contract is bytes, not approximation.

use linger::{JobFamily, Policy};
use linger_bench::{ext_service, fig03, fig05, fig10, Runner};
use linger_cluster::evaluate_policy_replicated;
use linger_sim_core::{set_default_jobs, SimDuration};
use std::sync::{Mutex, MutexGuard};

/// `set_default_jobs` is process-global; serialize the tests that flip it
/// so they can't observe each other's setting.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Render `make()`'s output under `jobs` workers.
fn json_at<T: serde::Serialize>(jobs: usize, make: impl Fn() -> T) -> String {
    set_default_jobs(jobs);
    let out = serde_json::to_string_pretty(&make()).expect("serialize");
    set_default_jobs(0);
    out
}

#[test]
fn replicated_policy_eval_is_identical_serial_and_parallel() {
    let _g = lock();
    let family = JobFamily::uniform(8, SimDuration::from_secs(120), 4 * 1024);
    let make = || {
        evaluate_policy_replicated(Policy::LingerLonger, family.clone(), 4, 1998, 4)
    };
    let serial = json_at(1, make);
    let parallel = json_at(4, make);
    assert_eq!(serial, parallel, "jobs=1 vs jobs=4 diverged");
    // And stable across repeated runs at the same width.
    assert_eq!(parallel, json_at(4, make), "repeated jobs=4 runs diverged");
}

#[test]
fn figure_sweeps_are_identical_serial_and_parallel() {
    let _g = lock();
    const SEED: u64 = 1998;
    // Fig 5 (27-point single-node grid) and Fig 10 (28-point BSP grid)
    // exercise both flattened-sweep shapes the runner parallelizes.
    let f5_serial = json_at(1, || fig05(SEED, true));
    assert_eq!(f5_serial, json_at(4, || fig05(SEED, true)), "fig05 diverged");
    let f10_serial = json_at(1, || fig10(SEED, true));
    assert_eq!(f10_serial, json_at(4, || fig10(SEED, true)), "fig10 diverged");
}

#[test]
fn fanned_out_synthesis_feeding_serial_ingest_is_identical() {
    let _g = lock();
    // Fig 3 fans out trace synthesis but aggregates serially; the rows
    // must not depend on which worker synthesized which trace.
    let serial = json_at(1, || fig03(1998, true));
    assert_eq!(serial, json_at(3, || fig03(1998, true)), "fig03 diverged");
}

#[test]
fn service_sweep_is_identical_serial_and_parallel() {
    let _g = lock();
    // The open-arrivals sweep draws its arrivals from per-window keyed
    // streams; the cells (4 loads x 4 admission policies) must not
    // depend on which worker ran which cell.
    let serial = json_at(1, || ext_service(1998, true, 0.95));
    assert_eq!(serial, json_at(4, || ext_service(1998, true, 0.95)), "ext_service diverged");
}

#[test]
fn runner_replication_matches_a_hand_rolled_serial_loop() {
    let _g = lock();
    let family = JobFamily::uniform(6, SimDuration::from_secs(90), 4 * 1024);
    let par: Vec<f64> = Runner::with_jobs(4)
        .replicate(7, 5, |seed| {
            linger_cluster::evaluate_policy(Policy::ImmediateEviction, family.clone(), 4, seed)
                .avg_completion_secs
        });
    let serial: Vec<f64> = (0..5u64)
        .map(|r| {
            linger_cluster::evaluate_policy(Policy::ImmediateEviction, family.clone(), 4, 7 + r)
                .avg_completion_secs
        })
        .collect();
    assert_eq!(par, serial);
}
