//! Extension: quality of the median-remaining-life predictor behind the
//! linger-duration cost model, versus alternative rules, across episode
//! populations (Pareto α=1, exponential, deterministic).

use linger::predictor::predictor_study;
use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{write_json, Table};

fn main() {
    let args = HarnessArgs::parse();
    let n = if args.fast { 2_000 } else { 50_000 };
    banner(
        "Extension: episode predictor study",
        "mean regret vs a clairvoyant oracle (h=40%, l=2%, 8 MB job)",
    );
    let rows = predictor_study(args.seed, n);
    let mut t = Table::new(vec![
        "episodes", "rule", "mean completion (s)", "regret vs oracle", "migrated",
    ]);
    for r in &rows {
        t.row(vec![
            r.episodes.clone(),
            r.rule.clone(),
            format!("{:.0}", r.mean_completion_secs),
            format!("{:.1}%", r.mean_regret * 100.0),
            format!("{:.0}%", r.migration_fraction * 100.0),
        ]);
    }
    t.print();
    println!(
        "\n(the paper's heuristic is near-optimal exactly on the Pareto lifetimes\n\
         Harchol-Balter & Downey measured; on memoryless episodes no age-based rule\n\
         can beat the best constant policy)"
    );
    note_artifact("ext_predictor", write_json("ext_predictor", &rows));
}
