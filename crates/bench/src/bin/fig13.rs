//! Fig 13: lingering (16 or 8 processes) versus power-of-two
//! reconfiguration for sor / water / fft on a 16-node cluster (non-idle
//! nodes at 20%).

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig13, write_json, AsciiChart, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 13", "Linger-Longer vs Reconfiguration for the applications (16-node cluster)");
    let pts = fig13(args.seed);
    for app in ["sor", "water", "fft"] {
        println!("\n-- {app} --");
        let mut t = Table::new(vec!["idle nodes", "reconfiguration", "16 node linger", "8 node linger"]);
        for idle in (0..=16usize).rev() {
            let get = |s: &str| {
                pts.iter()
                    .find(|p| p.app == app && p.idle == idle && p.strategy == s)
                    .map(|p| format!("{:.2}", p.slowdown))
                    .unwrap_or_default()
            };
            t.row(vec![
                format!("{idle}"),
                get("reconfiguration"),
                get("16 node linger"),
                get("8 node linger"),
            ]);
        }
        t.print();
    }
    let mut chart = AsciiChart::new(50, 10).labels("idle nodes (sor)", "slowdown");
    for (strategy, marker) in
        [("reconfiguration", 'r'), ("16 node linger", '1'), ("8 node linger", '8')]
    {
        chart = chart.series(
            marker,
            pts.iter()
                .filter(|p| p.app == "sor" && p.strategy == strategy)
                .map(|p| (p.idle as f64, p.slowdown))
                .collect(),
        );
    }
    println!("\n{}", chart.render());
    println!(
        "(paper: LL-16 beats reconfiguration when idle >= 12; see EXPERIMENTS.md for the\n\
         noted divergence on the LL-8 vs LL-16 ordering at low idle counts)"
    );
    note_artifact("fig13", write_json("fig13", &pts));
}
