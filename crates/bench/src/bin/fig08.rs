//! Fig 8: average per-job time breakdown (queued / running / lingering /
//! paused / migrating) for each policy on both workloads.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig07, write_json, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 8", "Average Completion Time breakdown by state");
    let r = fig07(args.seed, args.fast);
    for (name, metrics) in
        [("Workload-1 (many jobs)", &r.workload1), ("Workload-2 (few jobs)", &r.workload2)]
    {
        println!("\n== {name} ==");
        let mut t = Table::new(vec![
            "policy", "in-queue", "run", "linger", "paused", "migrating", "total (s)",
        ]);
        for m in metrics.iter() {
            let b = m.avg_breakdown;
            t.row(vec![
                m.policy.abbrev().to_string(),
                format!("{:.0}", b.queued),
                format!("{:.0}", b.running),
                format!("{:.0}", b.lingering),
                format!("{:.0}", b.paused),
                format!("{:.0}", b.migrating),
                format!("{:.0}", b.total()),
            ]);
        }
        t.print();
    }
    // ASCII rendition of the paper's stacked bars.
    println!("\nstacked bars (each char ~ 2% of the tallest total):");
    let max_total = r
        .workload1
        .iter()
        .chain(r.workload2.iter())
        .map(|m| m.avg_breakdown.total())
        .fold(0.0f64, f64::max);
    for (name, metrics) in
        [("workload-1", &r.workload1), ("workload-2", &r.workload2)]
    {
        println!("  {name}:");
        for m in metrics.iter() {
            let b = m.avg_breakdown;
            let seg = |v: f64, ch: char| {
                let n = (v / max_total * 50.0).round() as usize;
                ch.to_string().repeat(n)
            };
            println!(
                "    {:<3} |{}{}{}{}{}| {:.0}s",
                m.policy.abbrev(),
                seg(b.queued, 'Q'),
                seg(b.running, 'R'),
                seg(b.lingering, 'L'),
                seg(b.paused, 'P'),
                seg(b.migrating, 'M'),
                b.total()
            );
        }
    }
    println!("  legend: Q queued, R running, L lingering, P paused, M migrating");
    println!(
        "\n(paper: \"The major difference between the linger and non-linger \
         policies is due to the reduced queue time.\")"
    );
    note_artifact("fig08", write_json("fig08", &r));
}
