//! Fig 10: slowdown versus synchronization granularity (10 ms – 10 s)
//! with 1/2/4/8 non-idle nodes at 20% local utilization.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig10, write_json, AsciiChart, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 10", "Synchronization Granularity vs Slowdown (20% local load)");
    let pts = fig10(args.seed, args.fast);
    let gs: Vec<u64> = {
        let mut v: Vec<u64> = pts.iter().map(|p| p.granularity_ms).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut t = Table::new(vec!["granularity (ms)", "1 node", "2 nodes", "4 nodes", "8 nodes"]);
    for g in gs {
        let get = |k: usize| {
            pts.iter()
                .find(|p| p.granularity_ms == g && p.non_idle == k)
                .map(|p| format!("{:.2}", p.slowdown))
                .unwrap_or_default()
        };
        t.row(vec![format!("{g}"), get(1), get(2), get(4), get(8)]);
    }
    t.print();
    // Log-x chart, one marker per non-idle count (1/2/4/8).
    let mut chart = AsciiChart::new(56, 12).labels("log10 granularity (ms)", "slowdown");
    for (k, marker) in [(1usize, '1'), (2, '2'), (4, '4'), (8, '8')] {
        chart = chart.series(
            marker,
            pts.iter()
                .filter(|p| p.non_idle == k)
                .map(|p| ((p.granularity_ms as f64).log10(), p.slowdown))
                .collect(),
        );
    }
    println!("\n{}", chart.render());
    println!("(paper: larger granularity -> less slowdown; 4 non-idle nodes stay under ~1.5 at coarse grain)");
    note_artifact("fig10", write_json("fig10", &pts));
}
