//! Ablations of the design parameters DESIGN.md calls out: effective
//! context-switch cost, migration bandwidth, and the Pause-and-Migrate
//! grace period, each pushed through the full cluster pipeline.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{
    ablation_context_switch, ablation_memory_pressure, ablation_migration_bandwidth,
    ablation_pause_timeout, write_json, Table,
};

fn main() {
    let args = HarnessArgs::parse();
    let nodes = if args.fast { 12 } else { 24 };

    banner("Ablation 1", "effective context-switch cost (cluster-level effect)");
    let cs = ablation_context_switch(args.seed, nodes);
    let mut t = Table::new(vec!["cs (us)", "LL avg (s)", "LL tput", "LL delay %", "IE avg (s)"]);
    for r in &cs {
        t.row(vec![
            format!("{:.0}", r.value),
            format!("{:.0}", r.ll_avg_secs),
            format!("{:.1}", r.ll_throughput),
            format!("{:.2}", r.ll_delay * 100.0),
            format!("{:.0}", r.ie_avg_secs),
        ]);
    }
    t.print();
    note_artifact("ablation_context_switch", write_json("ablation_context_switch", &cs));

    println!();
    banner("Ablation 2", "migration bandwidth (Mbps)");
    let bw = ablation_migration_bandwidth(args.seed, nodes);
    let mut t = Table::new(vec!["Mbps", "LL avg (s)", "LL tput", "LL delay %", "IE avg (s)"]);
    for r in &bw {
        t.row(vec![
            format!("{:.0}", r.value),
            format!("{:.0}", r.ll_avg_secs),
            format!("{:.1}", r.ll_throughput),
            format!("{:.2}", r.ll_delay * 100.0),
            format!("{:.0}", r.ie_avg_secs),
        ]);
    }
    t.print();
    note_artifact("ablation_migration_bandwidth", write_json("ablation_migration_bandwidth", &bw));

    println!();
    banner("Ablation 3", "Pause-and-Migrate grace period (s; 'LL' columns show PM)");
    let pt = ablation_pause_timeout(args.seed, nodes);
    let mut t = Table::new(vec!["pause (s)", "PM avg (s)", "PM tput", "PM delay %", "IE avg (s)"]);
    for r in &pt {
        t.row(vec![
            format!("{:.0}", r.value),
            format!("{:.0}", r.ll_avg_secs),
            format!("{:.1}", r.ll_throughput),
            format!("{:.2}", r.ll_delay * 100.0),
            format!("{:.0}", r.ie_avg_secs),
        ]);
    }
    t.print();
    println!(
        "\n(a PM grace period beyond the recruitment threshold only delays the inevitable\n\
         migration — the paper's near-identical IE/PM rows imply a short suspend time)"
    );
    note_artifact("ablation_pause_timeout", write_json("ablation_pause_timeout", &pt));

    println!();
    banner("Ablation 4", "memory pressure (64 MB node, ~19 MB free; page-level simulation)");
    let mp = ablation_memory_pressure(args.seed);
    let mut t = Table::new(vec!["foreign WS (MB)", "residency", "efficiency"]);
    for r in &mp {
        t.row(vec![
            format!("{}", r.foreign_mb),
            format!("{:.0}%", r.residency * 100.0),
            format!("{:.1}%", r.efficiency * 100.0),
        ]);
    }
    t.print();
    println!(
        "(Sec 3.2: the ~14 MB typically free is \"sufficient to accommodate one\n\
         compute-bound foreign job of moderate size\" — efficiency collapses only\n\
         once the working set overflows the free pool)"
    );
    note_artifact("ablation_memory_pressure", write_json("ablation_memory_pressure", &mp));
}
