//! Fig 9: slowdown of an 8-process bulk-synchronous job (100 ms phases,
//! NEWS exchange) versus the local utilization of one non-idle node.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig09, write_json, AsciiChart, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 9", "Parallel Job slowdown vs local CPU utilization (1 non-idle node)");
    let pts = fig09(args.seed, args.fast);
    let mut t = Table::new(vec!["local cpu %", "slowdown"]);
    for p in &pts {
        t.row(vec![format!("{}", p.utilization_pct), format!("{:.2}", p.slowdown)]);
    }
    t.print();
    let chart = AsciiChart::new(50, 12)
        .labels("local CPU utilization (%)", "slowdown")
        .series('o', pts.iter().map(|p| (p.utilization_pct as f64, p.slowdown)).collect());
    println!("\n{}", chart.render());
    println!(
        "(paper: slowdown 1.1-1.5 below 40% load; \"so large\" above 50%; ~9 at 90%)"
    );
    note_artifact("fig09", write_json("fig09", &pts));
}
