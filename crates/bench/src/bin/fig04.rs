//! Fig 4: distribution of available memory (overall / idle / non-idle),
//! plus the Sec 3.2 idleness aggregates.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig04, write_json, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 4", "Distribution of Available Memory");
    let r = fig04(args.seed, args.fast);
    println!(
        "{} machines x {} h; non-idle fraction {:.2} (paper 0.46); \
         non-idle time below 10% cpu {:.2} (paper 0.76)",
        r.machines, r.hours, r.non_idle_fraction, r.non_idle_low_cpu_fraction
    );
    let mut t = Table::new(vec!["free KB >=", "all", "idle", "non-idle"]);
    for (i, (kb, f_all)) in r.cdf_all.iter().enumerate() {
        t.row(vec![
            format!("{kb:.0}"),
            format!("{f_all:.3}"),
            format!("{:.3}", r.cdf_idle[i].1),
            format!("{:.3}", r.cdf_non_idle[i].1),
        ]);
    }
    t.print();
    println!(
        "P90 free: {:.0} KB (paper >= ~14 MB); P95 free: {:.0} KB (paper >= ~10 MB)",
        r.p90_free_kb, r.p95_free_kb
    );
    note_artifact("fig04", write_json("fig04", &r));
}
