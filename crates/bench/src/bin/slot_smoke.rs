//! CI smoke for the job-slot recycler: a long-horizon throughput run at
//! 65,536 nodes with enough windows for ≥4× job turnover, asserting the
//! live hot-lane length stays pinned at the initial job count while the
//! archive absorbs every completion — then an in-process
//! recycled-vs-append-only determinism diff (records, counters, and the
//! telemetry journal) on a smaller cell with faults and migrations
//! active.
//!
//! `--fast` shrinks the turnover cell to 4096 nodes so the whole smoke
//! stays inside a couple of seconds; `--max-nodes <n>` caps the cell
//! directly.

use linger::{JobFamily, Policy};
use linger_bench::output::{banner, HarnessArgs};
use linger_cluster::{ClusterConfig, ClusterSim, FaultConfig, RunMode};
use linger_sim_core::{SimDuration, SimTime};
use linger_telemetry::Recorder;
use linger_workload::CoarseTraceConfig;

fn throughput_cfg(
    policy: Policy,
    nodes: usize,
    demand_s: u64,
    horizon_s: u64,
    seed: u64,
) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        policy,
        JobFamily::uniform((2 * nodes) as u32, SimDuration::from_secs(demand_s), 8 * 1024),
    );
    cfg.nodes = nodes;
    cfg.seed = seed;
    cfg.trace = CoarseTraceConfig {
        duration: SimDuration::from_secs(3600),
        ..Default::default()
    };
    cfg.mode = RunMode::Throughput { horizon: SimTime::from_secs(horizon_s) };
    cfg
}

/// The run's complete observable outcome as one string — the same shape
/// the slot-reuse proptest pins, so a CI diff failure here reproduces
/// locally under the test harness.
fn signature(mut sim: ClusterSim) -> String {
    sim.set_recorder(Recorder::with_capacity(1 << 16));
    sim.run();
    let events = sim
        .recorder()
        .journal()
        .map(|j| serde_json::to_string(&j.snapshot()).unwrap())
        .unwrap_or_default();
    format!(
        "{:?}|{}|{}|{:?}|{}",
        sim.jobs(),
        sim.foreign_cpu_delivered().as_nanos(),
        sim.foreground_delay_ratio().to_bits(),
        sim.fault_stats(),
        events,
    )
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Slot-recycling smoke",
        "long-horizon turnover bound + recycled-vs-append-only determinism",
    );

    // 1. Turnover bound: short demands against a long horizon cycle
    //    every slot several times; the recycler must keep the hot lanes
    //    at exactly the initial job count the whole way.
    let nodes = args
        .max_nodes
        .unwrap_or(if args.fast { 4096 } else { 65_536 });
    let initial_jobs = 2 * nodes;
    let mut sim = ClusterSim::new(throughput_cfg(Policy::LingerLonger, nodes, 30, 600, args.seed));
    assert!(sim.slot_reuse(), "recycling must be the default layout");
    let t0 = std::time::Instant::now();
    sim.run();
    let turnover = sim.completed() as f64 / initial_jobs as f64;
    println!(
        "turnover cell: {} nodes, {} initial jobs, {} completed ({:.1}x turnover) \
         in {:.1}s",
        nodes,
        initial_jobs,
        sim.completed(),
        turnover,
        t0.elapsed().as_secs_f64(),
    );
    println!(
        "live-lanes: rows={} bytes={} archived={}",
        sim.live_job_rows(),
        sim.live_lane_bytes(),
        sim.archived_jobs(),
    );
    assert!(
        turnover >= 4.0,
        "smoke horizon must produce >=4x job turnover (got {turnover:.2}x)"
    );
    assert_eq!(
        sim.live_job_rows(),
        initial_jobs,
        "live hot-lane length must stay pinned at the initial job count"
    );
    assert_eq!(
        sim.archived_jobs(),
        sim.completed(),
        "every completion must retire into the archive"
    );
    println!("[PASS] live hot lanes pinned at {initial_jobs} rows through {turnover:.1}x turnover");

    // 2. Determinism diff: recycled and append-only runs of a cell with
    //    faults and migrations active must be byte-identical in every
    //    observable — records in id order, accumulators, fault counters,
    //    and the telemetry journal.
    let mk = || {
        let mut cfg = throughput_cfg(Policy::ImmediateEviction, 512, 60, 900, args.seed);
        cfg.faults = FaultConfig {
            crash_rate_per_hour: 2.0,
            mean_reboot_secs: 120.0,
            migration_failure_prob: 0.1,
        };
        ClusterSim::new(cfg)
    };
    let mut recycled = mk();
    recycled.set_slot_reuse(true);
    let mut append_only = mk();
    append_only.set_slot_reuse(false);
    let a = signature(recycled);
    let b = signature(append_only);
    assert_eq!(a, b, "recycled and append-only signatures diverged");
    println!("[PASS] recycled vs append-only determinism diff ({} signature bytes)", a.len());
}
