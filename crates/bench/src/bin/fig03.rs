//! Fig 3: burst parameter table (mean/variance of run and idle bursts
//! per utilization bucket), re-derived from synthetic dispatch traces.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig03, write_json, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 3", "Workload Parameters (burst moments vs utilization)");
    let rows = fig03(args.seed, args.fast);
    let mut t = Table::new(vec![
        "cpu %", "run mean", "run var", "idle mean", "idle var", "model run", "model idle",
        "windows",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{}", r.level_pct),
            format!("{:.4}", r.run_mean),
            format!("{:.2e}", r.run_var),
            format!("{:.4}", r.idle_mean),
            format!("{:.2e}", r.idle_var),
            format!("{:.4}", r.model_run_mean),
            format!("{:.4}", r.model_idle_mean),
            format!("{}", r.windows),
        ]);
    }
    t.print();
    note_artifact("fig03", write_json("fig03", &rows));
}
