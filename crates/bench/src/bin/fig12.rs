//! Fig 12: slowdown of sor / water / fft under lingering as the number
//! of non-idle nodes (0–8) and their local utilization (10–40%) vary.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig12, write_json, AsciiChart, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 12", "Slowdown by Non-idle nodes and their Local CPU Usage (apps)");
    let pts = fig12(args.seed);
    for app in ["sor", "water", "fft"] {
        println!("\n-- {app} --");
        let mut t = Table::new(vec![
            "non-idle", "lusg 10%", "lusg 20%", "lusg 30%", "lusg 40%",
        ]);
        for k in 0..=8usize {
            let get = |u: f64| {
                pts.iter()
                    .find(|p| p.app == app && p.non_idle == k && (p.local_util - u).abs() < 1e-9)
                    .map(|p| format!("{:.2}", p.slowdown))
                    .unwrap_or_default()
            };
            t.row(vec![format!("{k}"), get(0.1), get(0.2), get(0.3), get(0.4)]);
        }
        t.print();
    }
    let mut chart = AsciiChart::new(50, 10).labels("non-idle nodes (lusg 40%)", "slowdown");
    for (app, marker) in [("sor", 's'), ("water", 'w'), ("fft", 'f')] {
        chart = chart.series(
            marker,
            pts.iter()
                .filter(|p| p.app == app && (p.local_util - 0.4).abs() < 1e-9)
                .map(|p| (p.non_idle as f64, p.slowdown))
                .collect(),
        );
    }
    println!("\n{}", chart.render());
    println!(
        "(paper: sor most sensitive, fft least; 1 non-idle @40% ~1.7; all 8 @20% just above 2)"
    );
    note_artifact("fig12", write_json("fig12", &pts));
}
