//! Extension: end-to-end cluster throughput for parallel jobs (the
//! paper's conclusion lists this evaluation as ongoing work) — rigid
//! idle-only placement vs. lingering placement across offered loads.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{ext_parallel_throughput, write_json, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Extension: parallel cluster throughput",
        "rigid idle-only vs lingering placement",
    );
    let rows = ext_parallel_throughput(args.seed, args.fast);
    let mut t = Table::new(vec![
        "interarrival (s)",
        "rigid jobs/h",
        "linger jobs/h",
        "rigid resp (s)",
        "linger resp (s)",
        "rigid stall %",
        "linger slowdown",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{:.0}", r.interarrival_secs),
            format!("{:.1}", r.rigid.jobs_per_hour),
            format!("{:.1}", r.linger.jobs_per_hour),
            format!("{:.0}", r.rigid.mean_response_secs),
            format!("{:.0}", r.linger.mean_response_secs),
            format!("{:.1}", r.rigid.stall_fraction * 100.0),
            format!("{:.2}", r.linger.mean_slowdown),
        ]);
    }
    t.print();
    println!(
        "\n(lingering admits jobs the rigid social contract must queue; the gain grows\n\
         with offered load, at the cost of per-job slowdown — the trade-off the paper\n\
         predicted its end-to-end study would show)"
    );
    note_artifact("ext_throughput", write_json("ext_throughput", &rows));
}
