//! Run the whole evaluation suite (Figs 2–13), write every result into
//! `results/`, and print a paper-versus-measured scorecard.
//!
//! `--fast` scales every experiment down for a quick smoke run;
//! `--seed <n>` selects the master seed (default 1998); `--jobs <n>`
//! sets the parallel runner's worker count (0 = one per core; results
//! are byte-identical at any value). Per-figure wall-clock lands in
//! `BENCH_runall.json` next to the working directory.
//!
//! Every section runs under [`RunTimings::time_caught`]: a section that
//! panics is recorded (name + payload) in the ledger's
//! `failed_sections`, its scorecard checks turn into failures, and the
//! remaining sections still run and write their results.

use linger_bench::output::{note_artifact, HarnessArgs};
use linger_bench::*;
use linger_workload::TraceLibrary;

struct Check {
    name: &'static str,
    paper: String,
    measured: String,
    ok: bool,
}

/// The scorecard entry a panicked section leaves behind.
fn section_panicked(name: &'static str) -> Check {
    Check {
        name,
        paper: "section completes".into(),
        measured: "PANICKED — see failed_sections in BENCH_runall.json".into(),
        ok: false,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let t0 = std::time::Instant::now();
    let mut checks: Vec<Check> = Vec::new();
    let mut timings = RunTimings::new(args.jobs, args.seed, args.fast);

    println!("running Fig 2 …");
    match timings.time_caught("fig02", || fig02(args.seed, args.fast)) {
        None => checks.push(section_panicked("fig02")),
        Some(f2) => {
            note_artifact("fig02", write_json("fig02", &f2));
            let ks_worst =
                f2.iter().map(|b| b.ks_run.max(b.ks_idle)).fold(0.0f64, f64::max);
            checks.push(Check {
                name: "Fig 2: fitted vs empirical burst CDFs",
                paper: "curves almost exactly match".into(),
                measured: format!("worst KS distance {ks_worst:.3}"),
                ok: ks_worst < 0.1,
            });
        }
    }

    println!("running Fig 3 …");
    match timings.time_caught("fig03", || fig03(args.seed, args.fast)) {
        None => checks.push(section_panicked("fig03")),
        Some(f3) => {
            note_artifact("fig03", write_json("fig03", &f3));
            let mid_err = f3
                .iter()
                .filter(|r| {
                    (20..=80).contains(&r.level_pct) && r.model_run_mean > 0.0 && r.windows > 50
                })
                .map(|r| (r.run_mean - r.model_run_mean).abs() / r.model_run_mean)
                .fold(0.0f64, f64::max);
            checks.push(Check {
                name: "Fig 3: burst moments re-derived per bucket",
                paper: "monotone run-burst growth to ~0.28 s".into(),
                measured: format!("worst mid-bucket run-mean error {:.0}%", mid_err * 100.0),
                ok: mid_err < 0.5,
            });
        }
    }

    println!("running Fig 4 …");
    match timings.time_caught("fig04", || fig04(args.seed, args.fast)) {
        None => checks.push(section_panicked("fig04")),
        Some(f4) => {
            note_artifact("fig04", write_json("fig04", &f4));
            checks.push(Check {
                name: "Fig 4 / Sec 3.2: idleness + memory anchors",
                paper: "46% non-idle; 76% low-cpu; >=14MB @P90".into(),
                measured: format!(
                    "{:.0}% non-idle; {:.0}% low-cpu; {:.1}MB @P90",
                    f4.non_idle_fraction * 100.0,
                    f4.non_idle_low_cpu_fraction * 100.0,
                    f4.p90_free_kb / 1024.0
                ),
                ok: (f4.non_idle_fraction - 0.46).abs() < 0.10
                    && (f4.non_idle_low_cpu_fraction - 0.76).abs() < 0.10
                    && f4.p90_free_kb >= 12_000.0,
            });
        }
    }

    println!("running Fig 5 …");
    match timings.time_caught("fig05", || fig05(args.seed, args.fast)) {
        None => checks.push(section_panicked("fig05")),
        Some(f5) => {
            note_artifact("fig05", write_json("fig05", &f5));
            let peak_100 = f5[..9].iter().map(|r| r.ldr).fold(0.0f64, f64::max);
            let peak_500 = f5[18..].iter().map(|r| r.ldr).fold(0.0f64, f64::max);
            let min_fcsr = f5.iter().map(|r| r.fcsr).fold(1.0f64, f64::min);
            checks.push(Check {
                name: "Fig 5: LDR ~1% @100us, ~8% @500us; FCSR >90%",
                paper: "1% / 8% / >90%".into(),
                measured: format!(
                    "{:.1}% / {:.1}% / {:.0}%",
                    peak_100 * 100.0,
                    peak_500 * 100.0,
                    min_fcsr * 100.0
                ),
                ok: peak_100 < 0.02 && (0.03..0.10).contains(&peak_500) && min_fcsr > 0.90,
            });
        }
    }

    println!("running Fig 6 …");
    match timings.time_caught("fig06", || fig06(args.seed, args.fast)) {
        None => checks.push(section_panicked("fig06")),
        Some(f6) => {
            note_artifact("fig06", write_json("fig06", &f6));
            checks.push(Check {
                name: "Fig 6: two-level pipeline coherence",
                paper: "fine-grain stream realizes coarse trace".into(),
                measured: format!("corr {:.2}, MAE {:.3}", f6.correlation, f6.mean_abs_error),
                ok: f6.correlation > 0.8 && f6.mean_abs_error < 0.08,
            });
        }
    }

    println!("running Figs 7+8 (cluster; this is the long one) …");
    let cache_before_f7 = TraceLibrary::global().stats();
    match timings.time_caught("fig07", || fig07(args.seed, args.fast)) {
        None => checks.push(section_panicked("fig07")),
        Some(f7) => {
            note_artifact("fig07", write_json("fig07", &f7));
            let (ll, lf, ie, pm) =
                (&f7.workload1[0], &f7.workload1[1], &f7.workload1[2], &f7.workload1[3]);
            checks.push(Check {
                name: "Fig 7 w1: LL/LF cut avg completion vs IE/PM",
                paper: "1044/1026 vs 1531/1531 s (-32%)".into(),
                measured: format!(
                    "{:.0}/{:.0} vs {:.0}/{:.0} s",
                    ll.avg_completion_secs,
                    lf.avg_completion_secs,
                    ie.avg_completion_secs,
                    pm.avg_completion_secs
                ),
                ok: ll.avg_completion_secs < 0.8 * ie.avg_completion_secs,
            });
            checks.push(Check {
                name: "Fig 7 w1: throughput gain (headline '60%')",
                paper: "LL 52.2 / LF 55.5 vs IE,PM 34.6 (+51-60%)".into(),
                measured: format!(
                    "LL {:.1} / LF {:.1} vs IE {:.1}, PM {:.1} (+{:.0}%)",
                    ll.throughput,
                    lf.throughput,
                    ie.throughput,
                    pm.throughput,
                    (lf.throughput / pm.throughput - 1.0) * 100.0
                ),
                ok: lf.throughput > 1.4 * pm.throughput,
            });
            checks.push(Check {
                name: "Fig 7: foreground slowdown (headline '0.5%')",
                paper: "<0.5%".into(),
                measured: format!("{:.2}%", ll.foreground_delay * 100.0),
                ok: ll.foreground_delay < 0.006,
            });
            let w2 = &f7.workload2;
            let spread = {
                let avgs: Vec<f64> = w2.iter().map(|m| m.avg_completion_secs).collect();
                let lo = avgs.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = avgs.iter().cloned().fold(0.0f64, f64::max);
                (hi - lo) / lo
            };
            checks.push(Check {
                name: "Fig 7 w2: light load — policies nearly identical",
                paper: "1859-1862 s (all within 0.2%)".into(),
                measured: format!("spread {:.1}%", spread * 100.0),
                ok: spread < 0.10,
            });
            checks.push(Check {
                name: "Fig 8: queue time drives the w1 gap",
                paper: "linger policies cut queue time".into(),
                measured: format!(
                    "queued: LL {:.0}s vs IE {:.0}s",
                    ll.avg_breakdown.queued, ie.avg_breakdown.queued
                ),
                ok: ie.avg_breakdown.queued > 1.5 * ll.avg_breakdown.queued,
            });
        }
    }
    let cache_after_f7 = TraceLibrary::global().stats();

    println!("running Fig 9 …");
    match timings.time_caught("fig09", || fig09(args.seed, args.fast)) {
        None => checks.push(section_panicked("fig09")),
        Some(f9) => {
            note_artifact("fig09", write_json("fig09", &f9));
            let low_ok = f9[1..=4].iter().all(|p| p.slowdown < 2.0);
            checks.push(Check {
                name: "Fig 9: BSP slowdown vs one node's load",
                paper: "1.1-1.5 below 40%; ~9 at 90%".into(),
                measured: format!(
                    "{:.2} at 20%, {:.2} at 40%, {:.1} at 90%",
                    f9[2].slowdown, f9[4].slowdown, f9[9].slowdown
                ),
                ok: low_ok && f9[9].slowdown > 4.0,
            });
        }
    }

    println!("running Fig 10 …");
    match timings.time_caught("fig10", || fig10(args.seed, args.fast)) {
        None => checks.push(section_panicked("fig10")),
        Some(f10) => {
            note_artifact("fig10", write_json("fig10", &f10));
            let fine = f10
                .iter()
                .find(|p| p.granularity_ms == 10 && p.non_idle == 4)
                .map(|p| p.slowdown);
            let coarse = f10
                .iter()
                .find(|p| p.granularity_ms == 10_000 && p.non_idle == 4)
                .map(|p| p.slowdown);
            match (fine, coarse) {
                (Some(fine), Some(coarse)) => checks.push(Check {
                    name: "Fig 10: coarser sync granularity -> less slowdown",
                    paper: "4 non-idle: ~2+ at 10ms falling under 1.5".into(),
                    measured: format!("{fine:.2} at 10ms vs {coarse:.2} at 10s"),
                    ok: fine > coarse && coarse < 1.8,
                }),
                _ => checks.push(Check {
                    name: "Fig 10: coarser sync granularity -> less slowdown",
                    paper: "4 non-idle: ~2+ at 10ms falling under 1.5".into(),
                    measured: "expected grid points missing".into(),
                    ok: false,
                }),
            }
        }
    }

    println!("running Fig 11 …");
    match timings.time_caught("fig11", || fig11(args.seed)) {
        None => checks.push(section_panicked("fig11")),
        Some(f11) => {
            note_artifact("fig11", write_json("fig11", &f11));
            let ll16_beats = [20usize, 14, 10].iter().all(|&i| {
                let ll = f11.iter().find(|p| p.idle == i && p.strategy == "16 nodes");
                let rc = f11.iter().find(|p| p.idle == i && p.strategy == "reconfig");
                match (ll, rc) {
                    (Some(ll), Some(rc)) => ll.completion_secs <= rc.completion_secs * 1.05,
                    _ => false,
                }
            });
            checks.push(Check {
                name: "Fig 11: LL-8/LL-16 beat reconfiguration",
                paper: "LL outperforms reconfig at 8 or 16 nodes".into(),
                measured: format!("LL-16 <= reconfig at 20/14/10 idle: {ll16_beats}"),
                ok: ll16_beats,
            });
        }
    }

    println!("running Fig 12 …");
    match timings.time_caught("fig12", || fig12(args.seed)) {
        None => checks.push(section_panicked("fig12")),
        Some(f12) => {
            note_artifact("fig12", write_json("fig12", &f12));
            let pick = |app: &str, k: usize, u: f64| {
                f12.iter()
                    .find(|p| p.app == app && p.non_idle == k && (p.local_util - u).abs() < 1e-9)
                    .map(|p| p.slowdown)
                    .unwrap_or(f64::NAN)
            };
            let ordered = pick("sor", 8, 0.4) > pick("water", 8, 0.4)
                && pick("water", 8, 0.4) > pick("fft", 8, 0.4);
            checks.push(Check {
                name: "Fig 12: app sensitivity ordering sor > water > fft",
                paper: "sor most sensitive; fft least".into(),
                measured: format!(
                    "@8x40%: sor {:.2}, water {:.2}, fft {:.2}",
                    pick("sor", 8, 0.4),
                    pick("water", 8, 0.4),
                    pick("fft", 8, 0.4)
                ),
                ok: ordered,
            });
            checks.push(Check {
                name: "Fig 12: all-8-non-idle @20% roughly doubles",
                paper: "just above a factor of 2".into(),
                measured: format!("sor {:.2}", pick("sor", 8, 0.2)),
                ok: (1.3..2.8).contains(&pick("sor", 8, 0.2)),
            });
        }
    }

    println!("running Fig 13 …");
    match timings.time_caught("fig13", || fig13(args.seed)) {
        None => checks.push(section_panicked("fig13")),
        Some(f13) => {
            note_artifact("fig13", write_json("fig13", &f13));
            let ll16_wins = ["sor", "water", "fft"].iter().all(|&app| {
                [15usize, 13, 12].iter().all(|&i| {
                    let ll = f13.iter().find(|p| {
                        p.app == app && p.idle == i && p.strategy == "16 node linger"
                    });
                    let rc = f13.iter().find(|p| {
                        p.app == app && p.idle == i && p.strategy == "reconfiguration"
                    });
                    match (ll, rc) {
                        (Some(ll), Some(rc)) => ll.slowdown < rc.slowdown,
                        _ => false,
                    }
                })
            });
            checks.push(Check {
                name: "Fig 13: LL-16 beats reconfiguration at >=12 idle",
                paper: "LL-16 wins when idle >= 12".into(),
                measured: format!("holds for all apps: {ll16_wins}"),
                ok: ll16_wins,
            });
        }
    }

    println!("running extensions (hybrid, throughput, predictor) …");
    match timings.time_caught("ext_hybrid", || ext_hybrid(args.seed)) {
        None => checks.push(section_panicked("ext_hybrid")),
        Some(eh) => {
            note_artifact("ext_hybrid", write_json("ext_hybrid", &eh));
            let worst_regret =
                eh.iter().map(|p| p.hybrid_secs / p.oracle_secs).fold(0.0f64, f64::max);
            checks.push(Check {
                name: "Ext: hybrid width predictor vs oracle",
                paper: "Sec 5.2: 'a hybrid strategy … may be the best approach'".into(),
                measured: format!("worst regret {:.1}%", (worst_regret - 1.0) * 100.0),
                ok: worst_regret < 1.25,
            });
        }
    }
    match timings.time_caught("ext_throughput", || ext_parallel_throughput(args.seed, args.fast))
    {
        None => checks.push(section_panicked("ext_throughput")),
        Some(et) => {
            note_artifact("ext_throughput", write_json("ext_throughput", &et));
            let heavy = &et[0];
            checks.push(Check {
                name: "Ext: parallel cluster throughput under saturation",
                paper: "conclusion: lingering should offset per-job slowdown".into(),
                measured: format!(
                    "linger {:.1} vs rigid {:.1} jobs/h at heaviest load",
                    heavy.linger.jobs_per_hour, heavy.rigid.jobs_per_hour
                ),
                ok: heavy.linger.jobs_per_hour > 1.2 * heavy.rigid.jobs_per_hour,
            });
        }
    }

    // Fast mode stops the sweep at 65,536; full mode runs the streamed
    // 262,144- and 1,048,576-node cells too.
    let scaling_counts: Vec<usize> = if args.fast {
        SCALING_NODE_COUNTS.iter().copied().filter(|&n| n <= 65_536).collect()
    } else {
        SCALING_NODE_COUNTS.to_vec()
    };
    let scaling_hi = *scaling_counts.last().unwrap();
    println!("running extension scaling sweep (64-{scaling_hi} nodes) …");
    match timings
        .time_caught("ext_scaling", || ext_scaling_at(args.seed, &scaling_counts, args.fast))
    {
        None => checks.push(section_panicked("ext_scaling")),
        Some((es, es_t)) => {
            note_artifact("ext_scaling", write_json("ext_scaling", &es));
            let lo_nodes = scaling_counts[0];
            let hi_nodes = scaling_hi;
            // Per-policy flatness at the largest count. The bound is an
            // absolute ceiling (same reference-machine convention as
            // `scaling_baselines`) rather than a ratio to the 64-node
            // cell: a 64-node replicate runs ~10 ms and its cost swings
            // tens of percent run-to-run, which makes any ratio against
            // it flaky, while a reintroduced per-window O(nodes) or
            // O(jobs) scan lands microseconds over the cap either way.
            // Slot recycling pins the hot job lanes at O(active jobs)
            // (2·nodes rows — ~2M at the top count, not the ~13M an
            // append-only slab reaches after respawns), and the re-
            // measured post-recycling band tightens the full ceiling
            // 400 → 320: worst policy at 1,048,576 nodes is LL at
            // 247.5 ns/node-window (seed 1998, reference machine)
            // + ~30% margin. The remaining gap over the 64-node cells
            // is the *active* set: 2M live jobs dwarf L2, so busy-node
            // visits miss where the 64-node denominator runs from L1.
            let flat_cap_ns = if args.fast { 250.0 } else { 320.0 };
            let per_policy: Vec<(String, f64, f64)> = ["LL", "LF", "IE", "PM"]
                .iter()
                .filter_map(|&p| {
                    let at = |n: usize| {
                        es_t.iter()
                            .find(|t| t.nodes == n && t.policy == p)
                            .map(|t| t.ns_per_node_window)
                    };
                    Some((p.to_string(), at(lo_nodes)?, at(hi_nodes)?))
                })
                .collect();
            let worst_ns =
                per_policy.iter().map(|&(_, _, hi)| hi).fold(0.0f64, f64::max);
            checks.push(Check {
                name: "Ext: per-policy window-loop cost flat at scale",
                paper: format!(
                    "SoA + sharded sweep + streamed windows: <= {flat_cap_ns:.0} \
                     ns/node-window at {hi_nodes} nodes"
                ),
                measured: per_policy
                    .iter()
                    .map(|(p, lo, hi)| format!("{p} {lo:.0}->{hi:.0}ns ({:.2}x)", hi / lo.max(1e-12)))
                    .collect::<Vec<_>>()
                    .join(", "),
                ok: !per_policy.is_empty() && worst_ns <= flat_cap_ns,
            });
            // Setup (trace synthesis + construction) must stay near
            // linear in cluster size. In full mode the step crosses the
            // streaming threshold (65,536 -> 1,048,576), where setup is
            // stream construction instead of a monolithic table, so the
            // bound tightens to the acceptance exponent 1.15.
            let mean_setup = |n: usize| {
                let cells: Vec<f64> =
                    es_t.iter().filter(|t| t.nodes == n).map(|t| t.setup_secs).collect();
                cells.iter().sum::<f64>() / cells.len().max(1) as f64
            };
            let mean_run = |n: usize| {
                let cells: Vec<f64> =
                    es_t.iter().filter(|t| t.nodes == n).map(|t| t.run_secs).collect();
                cells.iter().sum::<f64>() / cells.len().max(1) as f64
            };
            let (mid_nodes, exp_limit) = if hi_nodes > 65_536 {
                (65_536, 1.15)
            } else {
                (scaling_counts[scaling_counts.len() - 2], 2.0)
            };
            let (setup_mid, setup_hi) = (mean_setup(mid_nodes), mean_setup(hi_nodes));
            let exponent = (setup_hi / setup_mid.max(1e-12)).ln()
                / (hi_nodes as f64 / mid_nodes as f64).ln();
            checks.push(Check {
                name: "Ext: setup vs run split; setup scales near-linearly",
                paper: format!(
                    "setup growth exponent <= {exp_limit} over {mid_nodes}->{hi_nodes}"
                ),
                measured: format!(
                    "at {hi_nodes}: setup {setup_hi:.2}s / run {:.2}s; \
                     setup exponent {exponent:.2} over {mid_nodes}->{hi_nodes}",
                    mean_run(hi_nodes)
                ),
                ok: setup_hi > 0.0 && exponent <= exp_limit,
            });
            if hi_nodes >= 1_048_576 {
                // The million-node row must actually finish for all four
                // policies within a bounded footprint — the point of the
                // chunked window pipeline (a monolithic table alone
                // would need ~52 GiB).
                let million: Vec<_> = es.iter().filter(|p| p.nodes == 1_048_576).collect();
                let all_ran =
                    million.len() == 4 && million.iter().all(|p| p.completed > 0);
                let rss_gib = peak_rss_kb().map(|kb| kb as f64 / (1024.0 * 1024.0));
                let rss_ok = rss_gib.is_none_or(|g| g <= 12.0);
                checks.push(Check {
                    name: "Ext: million-node row completes within memory budget",
                    paper: "streamed windows: 1,048,576 nodes in <= 12 GiB peak RSS"
                        .into(),
                    measured: format!(
                        "{} policies completed; peak RSS {}",
                        million.len(),
                        rss_gib
                            .map(|g| format!("{g:.1} GiB"))
                            .unwrap_or_else(|| "unavailable".into())
                    ),
                    ok: all_ran && rss_ok,
                });
            }
            timings.scaling = es_t;
        }
    }

    println!("running extension fault-injection sweep …");
    match timings.time_caught("ext_faults", || ext_faults(args.seed, args.fast)) {
        None => checks.push(section_panicked("ext_faults")),
        Some(ef) => {
            note_artifact("ext_faults", write_json("ext_faults", &ef));
            let quiet_ok = ef
                .iter()
                .filter(|p| p.crash_rate_per_hour == 0.0 && p.migration_failure_prob == 0.0)
                .all(|p| {
                    p.crashes == 0 && p.migration_failures == 0 && p.migrations_abandoned == 0
                });
            let (heaviest, _) = FAULT_RATES[FAULT_RATES.len() - 1];
            let heavy: Vec<_> =
                ef.iter().filter(|p| p.crash_rate_per_hour == heaviest).collect();
            let heavy_fires =
                !heavy.is_empty() && heavy.iter().all(|p| p.crashes > 0 && p.completed > 0);
            let ll0 = ef
                .iter()
                .find(|p| p.policy == "LL" && p.crash_rate_per_hour == 0.0)
                .map(|p| p.foreign_cpu_secs)
                .unwrap_or(0.0);
            let ll_heavy = ef
                .iter()
                .find(|p| p.policy == "LL" && p.crash_rate_per_hour == heaviest)
                .map(|p| p.foreign_cpu_secs)
                .unwrap_or(f64::INFINITY);
            checks.push(Check {
                name: "Ext: fault injection — crashes fire, jobs still flow",
                paper: "extension: graceful degradation under crash/reboot".into(),
                measured: format!(
                    "quiet grid clean: {quiet_ok}; LL foreign CPU {ll0:.0}s fault-free \
                     vs {ll_heavy:.0}s at {heaviest} crashes/node-hour",
                ),
                ok: quiet_ok && heavy_fires && ll_heavy <= ll0,
            });
        }
    }

    println!("running extension open-arrivals service sweep …");
    match timings.time_caught("ext_service", || ext_service(args.seed, args.fast, args.ci_level))
    {
        None => checks.push(section_panicked("ext_service")),
        Some(es) => {
            note_artifact("ext_service", write_json("ext_service", &es));
            let svc_nodes = if args.fast { 16 } else { 64 };
            let horizon_windows = if args.fast { 3600 } else { 86_400 };
            let bounded = |p: &ServicePoint| p.admission != "open";
            // Undersaturated bounded cells must serve everything.
            let light_ok = es
                .iter()
                .filter(|p| p.offered_load < 1.0 && bounded(p))
                .all(|p| p.shed == 0 && p.deadline_dropped == 0 && p.deficit == 0);
            // Every oversaturated cell must finish the full horizon, and
            // the bounded ones must pin the queue at its capacity with
            // loss accounting exact to the last job and the hot job
            // lanes held at O(capacity + cluster), not O(arrivals).
            let heaviest = SERVICE_LOADS[SERVICE_LOADS.len() - 1];
            let heavy: Vec<_> = es.iter().filter(|p| p.offered_load == heaviest).collect();
            let heavy_runs = heavy.len() == 4
                && heavy.iter().all(|p| p.windows == horizon_windows && p.completed > 0);
            let heavy_bounded_ok = heavy.iter().filter(|p| bounded(p)).all(|p| {
                p.saturated_windows > 0
                    && p.peak_queue_depth <= p.queue_capacity
                    && p.peak_live_rows <= p.queue_capacity + 2 * svc_nodes
                    && p.generated == p.admitted + p.shed + p.deficit
            });
            let heavy_shed = heavy
                .iter()
                .find(|p| p.admission == "shed")
                .is_some_and(|p| p.shed > 0 && p.generated == p.admitted + p.shed);
            checks.push(Check {
                name: "Ext: open service — admission control degrades gracefully",
                paper: "saturated cells finish with bounded queue + exact loss counts"
                    .into(),
                measured: format!(
                    "light cells clean: {light_ok}; load {heaviest} cells full-horizon: \
                     {heavy_runs}; bounded depth/rows/accounting: {heavy_bounded_ok}; \
                     shed fires: {heavy_shed}",
                ),
                ok: light_ok && heavy_runs && heavy_bounded_ok && heavy_shed,
            });
        }
    }

    // Workload-realization cache: the fig07 policy sweeps must reuse one
    // synthesis across their 4 policies × 2 workloads (the tentpole claim
    // of the realization cache — 1 miss + 7 hits when warm from scratch).
    let f7_hits = cache_after_f7.hits - cache_before_f7.hits;
    let f7_misses = cache_after_f7.misses - cache_before_f7.misses;
    let f7_lookups = (f7_hits + f7_misses).max(1);
    let f7_hit_rate = f7_hits as f64 / f7_lookups as f64;
    checks.push(Check {
        name: "Perf: realization cache hit rate on the fig07 policy sweeps",
        paper: ">=75% hits (CRN: policies share one realization)".into(),
        measured: format!(
            "{f7_hits} hits / {f7_misses} misses ({:.0}%)",
            f7_hit_rate * 100.0
        ),
        ok: f7_hit_rate >= 0.75 || cache_after_f7.bypasses > cache_before_f7.bypasses,
    });

    println!("running telemetry overhead A/B …");
    match timings.time_caught("telemetry_ab", || {
        use linger::{JobFamily, Policy};
        use linger_cluster::{ClusterConfig, ClusterSim};
        use linger_sim_core::SimDuration;
        use linger_telemetry::Recorder;
        let mk = || {
            let mut cfg = ClusterConfig::paper(
                Policy::LingerLonger,
                JobFamily::uniform(32, SimDuration::from_secs(300), 8 * 1024),
            );
            cfg.nodes = 16;
            cfg.seed = args.seed;
            cfg
        };
        let run = |recorder: Recorder| {
            let t = std::time::Instant::now();
            let mut sim = ClusterSim::new(mk()).with_recorder(recorder);
            sim.run();
            t.elapsed().as_secs_f64()
        };
        let disabled_secs = run(Recorder::disabled());
        let journaling_secs = run(Recorder::with_capacity(linger_telemetry::DEFAULT_CAPACITY));
        TelemetryOverhead {
            disabled_secs,
            journaling_secs,
            ratio: if disabled_secs > 0.0 { journaling_secs / disabled_secs } else { 0.0 },
        }
    }) {
        None => checks.push(section_panicked("telemetry_ab")),
        Some(ab) => {
            // Machine-dependent; the CI gate is the byte-identical figure
            // diff, this check just surfaces gross regressions.
            checks.push(Check {
                name: "Perf: telemetry journaling cost on a fig07-scale cell",
                paper: "journaling within 2x of the disabled path".into(),
                measured: format!(
                    "disabled {:.4}s vs journaling {:.4}s ({:.2}x)",
                    ab.disabled_secs, ab.journaling_secs, ab.ratio
                ),
                ok: ab.journaling_secs <= 2.0 * ab.disabled_secs + 0.01,
            });
            timings.telemetry_overhead = Some(ab);
        }
    }
    // fig07 wall-clock against the pre-telemetry reference measurement
    // (seed 1998, --jobs default, telemetry disabled): the disabled path
    // must stay within 3% plus a small absolute noise guard. Machine-
    // dependent — informational, like the baselines above.
    let fig07_pre_telemetry = if args.fast { 0.0199 } else { 0.0902 };
    if let Some(f7_secs) = timings.sections.iter().find(|s| s.name == "fig07").map(|s| s.secs) {
        checks.push(Check {
            name: "Perf: telemetry disabled-path fig07 wall-clock",
            paper: "<= pre-telemetry baseline x 1.03 (+50ms noise guard)".into(),
            measured: format!("{f7_secs:.4}s vs {fig07_pre_telemetry:.4}s reference"),
            ok: f7_secs <= fig07_pre_telemetry * 1.03 + 0.05,
        });
    }

    match timings.time_caught("ext_predictor", || {
        linger::predictor::predictor_study(args.seed, if args.fast { 2_000 } else { 30_000 })
    }) {
        None => checks.push(section_panicked("ext_predictor")),
        Some(ep) => {
            note_artifact("ext_predictor", write_json("ext_predictor", &ep));
            let pareto_best = ep
                .iter()
                .filter(|r| r.episodes.starts_with("pareto"))
                .min_by(|a, b| a.mean_regret.partial_cmp(&b.mean_regret).unwrap());
            checks.push(Check {
                name: "Ext: median-remaining-life optimal on Pareto episodes",
                paper: "heuristic after Harchol-Balter & Downey".into(),
                measured: format!(
                    "best Pareto rule: {}",
                    pareto_best.map(|r| r.rule.as_str()).unwrap_or("<none>")
                ),
                ok: pareto_best.is_some_and(|r| r.rule == "median-remaining-life"),
            });
        }
    }

    // Pre-cache wall-clock of the sections the realization cache targets,
    // recorded on the reference machine immediately before the change
    // (seed 1998, --jobs default). Machine-dependent — informational.
    let (fig07_before, scaling_before) =
        if args.fast { (0.1304, 2.6524) } else { (0.5604, 5.1005) };
    timings.baselines = [
        SectionBaseline::compare("fig07", &timings.sections, fig07_before),
        SectionBaseline::compare("ext_scaling", &timings.sections, scaling_before),
    ]
    .into_iter()
    .flatten()
    .collect();
    // Per-cell window-loop costs (ns per node-window) measured on the
    // reference machine immediately after the job-slot-recycling change
    // (seed 1998, --jobs default, timing_reps as recorded: 1 at
    // >=262,144, >=3 elsewhere). Machine-dependent — informational,
    // except that the scorecard guard below requires every cell to be
    // no slower than this recording. Re-record whenever a PR moves the
    // window loop: the guard compares against the *current* lever, not
    // a historical one.
    let scaling_before_ns: &[(usize, &str, f64)] = if args.fast {
        &[
            (64, "LL", 57.7), (64, "LF", 53.7), (64, "IE", 29.2), (64, "PM", 30.9),
            (1024, "LL", 81.1), (1024, "LF", 81.2), (1024, "IE", 44.2), (1024, "PM", 46.3),
            (4096, "LL", 73.5), (4096, "LF", 69.4), (4096, "IE", 34.6), (4096, "PM", 35.2),
            (16_384, "LL", 93.5), (16_384, "LF", 77.6), (16_384, "IE", 43.5),
            (16_384, "PM", 48.5),
            (65_536, "LL", 97.5), (65_536, "LF", 85.3), (65_536, "IE", 60.3),
            (65_536, "PM", 58.2),
        ]
    } else {
        &[
            (64, "LL", 132.1), (64, "LF", 71.8), (64, "IE", 32.2), (64, "PM", 35.6),
            (1024, "LL", 70.8), (1024, "LF", 70.6), (1024, "IE", 30.2), (1024, "PM", 30.6),
            (4096, "LL", 88.0), (4096, "LF", 67.8), (4096, "IE", 37.6), (4096, "PM", 30.4),
            (16_384, "LL", 123.6), (16_384, "LF", 110.5), (16_384, "IE", 52.6),
            (16_384, "PM", 53.0),
            (65_536, "LL", 96.6), (65_536, "LF", 89.1), (65_536, "IE", 50.8),
            (65_536, "PM", 60.6),
            (262_144, "LL", 160.6), (262_144, "LF", 108.7), (262_144, "IE", 62.4),
            (262_144, "PM", 67.6),
            (1_048_576, "LL", 247.5), (1_048_576, "LF", 153.0), (1_048_576, "IE", 125.7),
            (1_048_576, "PM", 131.3),
        ]
    };
    timings.scaling_baselines = ScalingBaseline::compare(&timings.scaling, scaling_before_ns);
    // Regression guard: no scaling cell may run slower than its recorded
    // baseline (PR 6 shipped a 0.83x LF/4096 regression that only the
    // ledger noticed — this check makes the scorecard notice). 64-node
    // cells run in about a millisecond and their per-run cost is timer
    // and cache noise, so the guard covers the cells big enough to time
    // reliably; the small cells stay in the ledger informationally.
    // The guard only runs in full mode: full-mode cells run for seconds
    // and average over host jitter, so 0.9 still trips on real
    // regressions like PR 6's 0.83x. Fast-mode mid-size cells finish in
    // 10-50 ms and this shared host swings them up to ~1.8x between
    // back-to-back idle runs (0.55x observed against a minutes-old
    // recording) — no floor separates noise from regression at that
    // variance, so fast mode keeps the per-cell ledger informational
    // and relies on the absolute flat-ceiling check above for gross
    // regressions.
    let floor = 0.9;
    let guarded: Vec<&ScalingBaseline> =
        timings.scaling_baselines.iter().filter(|b| b.nodes >= 1024).collect();
    if !args.fast && !guarded.is_empty() {
        let worst = guarded
            .iter()
            .min_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite speedups"))
            .expect("non-empty");
        checks.push(Check {
            name: "Ext: no per-cell scaling regression vs recorded baseline",
            paper: format!(
                "every >=1024-node cell's speedup vs post-recycling recording >= {floor}"
            ),
            measured: format!(
                "worst cell {}/{}: {:.2}x ({:.1} -> {:.1} ns/node-window)",
                worst.nodes, worst.policy, worst.speedup, worst.before_ns, worst.after_ns
            ),
            ok: guarded.iter().all(|b| b.speedup >= floor),
        });
    }

    println!("\n================= paper-vs-measured scorecard =================");
    let mut pass = 0;
    for c in &checks {
        println!(
            "[{}] {}\n      paper:    {}\n      measured: {}",
            if c.ok { "PASS" } else { "WARN" },
            c.name,
            c.paper,
            c.measured
        );
        if c.ok {
            pass += 1;
        }
    }
    println!(
        "\n{pass}/{} checks within band; total time {:?}; seed {}{}",
        checks.len(),
        t0.elapsed(),
        args.seed,
        if args.fast { " (fast mode)" } else { "" }
    );
    if !timings.failed_sections.is_empty() {
        let names: Vec<&str> =
            timings.failed_sections.iter().map(|f| f.name.as_str()).collect();
        eprintln!("[warn: {} section(s) panicked: {}]", names.len(), names.join(", "));
    }
    timings.trace_cache = Some(TraceLibrary::global().stats());
    if linger_telemetry::Recorder::from_env().enabled() {
        timings.telemetry = Some(linger_telemetry::metrics::global().summary());
    }
    timings.peak_rss_kb = peak_rss_kb();
    match timings.write("BENCH_runall.json") {
        Ok(()) => println!("[wrote BENCH_runall.json]"),
        Err(e) => eprintln!("[warn: could not write BENCH_runall.json: {e}]"),
    }
    if !timings.failed_sections.is_empty() {
        std::process::exit(1);
    }
}
