//! Extension: open-arrivals service sweep — the four admission policies
//! under Poisson offered loads from light traffic to deep overload. The
//! paper replays a fixed batch; this sweep runs the cluster as an open
//! service and shows graceful degradation at saturation: bounded queue
//! depth, exact shed/defer/drop accounting, flat hot-state memory.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{ext_service, write_json, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Extension: open-arrivals service",
        "admission control and backpressure across offered loads",
    );
    let points = ext_service(args.seed, args.fast, args.ci_level);
    let mut t = Table::new(vec![
        "load",
        "admission",
        "generated",
        "admitted",
        "shed",
        "dropped",
        "deficit",
        "completed",
        "peak depth",
        "thru/win",
        "latency (s)",
    ]);
    for p in &points {
        t.row(vec![
            format!("{:.1}", p.offered_load),
            p.admission.clone(),
            format!("{}", p.generated),
            format!("{}", p.admitted),
            format!("{}", p.shed),
            format!("{}", p.deadline_dropped),
            format!("{}", p.deficit),
            format!("{}", p.completed),
            if p.queue_capacity == usize::MAX {
                format!("{}", p.peak_queue_depth)
            } else {
                format!("{}/{}", p.peak_queue_depth, p.queue_capacity)
            },
            format!("{:.2} ±{:.2}", p.throughput_per_window, p.throughput_ci),
            format!("{:.1} ±{:.1}", p.latency_secs, p.latency_ci),
        ]);
    }
    t.print();
    note_artifact("ext_service", write_json("ext_service", &points));
}
