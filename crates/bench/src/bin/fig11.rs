//! Fig 11: Linger-Longer (8/16/32 processes) versus power-of-two
//! reconfiguration on a 32-node cluster — completion time versus the
//! number of idle nodes (non-idle nodes at 20% local utilization).

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig11, write_json, AsciiChart, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 11", "Linger Longer vs Reconfiguration (synthetic BSP, 32-node cluster)");
    let pts = fig11(args.seed);
    let strategies = ["32 nodes", "16 nodes", "8 nodes", "reconfig"];
    let mut t = Table::new(vec!["idle nodes", "32 nodes", "16 nodes", "8 nodes", "reconfig"]);
    for idle in (0..=32usize).rev().step_by(2) {
        let mut cells = vec![format!("{idle}")];
        for s in strategies {
            let v = pts
                .iter()
                .find(|p| p.idle == idle && p.strategy == s)
                .map(|p| format!("{:.2}", p.completion_secs))
                .unwrap_or_default();
            cells.push(v);
        }
        t.row(cells);
    }
    t.print();
    let mut chart = AsciiChart::new(56, 12).labels("idle nodes", "completion (s)");
    for (strategy, marker) in
        [("32 nodes", '3'), ("16 nodes", '1'), ("8 nodes", '8'), ("reconfig", 'r')]
    {
        chart = chart.series(
            marker,
            pts.iter()
                .filter(|p| p.strategy == strategy)
                .map(|p| (p.idle as f64, p.completion_secs))
                .collect(),
        );
    }
    println!("\n{}", chart.render());
    // Crossover: first idle count (descending) where reconfiguration
    // beats LL-32.
    let cross = (0..=32usize)
        .rev()
        .find(|&i| {
            let ll = pts.iter().find(|p| p.idle == i && p.strategy == "32 nodes").unwrap();
            let rc = pts.iter().find(|p| p.idle == i && p.strategy == "reconfig").unwrap();
            rc.completion_secs < ll.completion_secs
        });
    match cross {
        Some(i) => println!(
            "\nreconfiguration first beats LL-32 at {} idle nodes ({} non-idle; paper: 6+ non-idle)",
            i,
            32 - i
        ),
        None => println!("\nLL-32 never loses to reconfiguration in this run (paper: crossover at ~6 non-idle)"),
    }
    note_artifact("fig11", write_json("fig11", &pts));
}
