//! Fig 7 (table): cluster performance of LL / LF / IE / PM on the two
//! sequential-job workloads — Avg Job, Variation, Family Time,
//! Throughput — with the paper's values for comparison.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig07, fig07_paper_reference, write_json, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 7", "Cluster Performance (sequential jobs, 4 policies x 2 workloads)");
    if args.reps >= 2 {
        replicated(&args);
        return;
    }
    let r = fig07(args.seed, args.fast);
    let refs = fig07_paper_reference();
    println!("cluster: {} nodes{}", r.nodes, if args.fast { " (fast mode)" } else { "" });
    for (wi, (name, metrics)) in
        [("Workload-1 (many jobs)", &r.workload1), ("Workload-2 (few jobs)", &r.workload2)]
            .into_iter()
            .enumerate()
    {
        println!("\n== {name} ==");
        let mut t = Table::new(vec!["metric", "LL", "LF", "IE", "PM", "paper (LL/LF/IE/PM)"]);
        let row_ref = |i: usize| {
            let rr = refs[wi * 4 + i];
            format!("{:.0}/{:.0}/{:.0}/{:.0}", rr[0], rr[1], rr[2], rr[3])
        };
        t.row(vec![
            "Avg. Job (s)".to_string(),
            format!("{:.0}", metrics[0].avg_completion_secs),
            format!("{:.0}", metrics[1].avg_completion_secs),
            format!("{:.0}", metrics[2].avg_completion_secs),
            format!("{:.0}", metrics[3].avg_completion_secs),
            row_ref(0),
        ]);
        t.row(vec![
            "Variation (%)".to_string(),
            format!("{:.1}", metrics[0].variation * 100.0),
            format!("{:.1}", metrics[1].variation * 100.0),
            format!("{:.1}", metrics[2].variation * 100.0),
            format!("{:.1}", metrics[3].variation * 100.0),
            row_ref(1),
        ]);
        t.row(vec![
            "Family Time (s)".to_string(),
            format!("{:.0}", metrics[0].family_time_secs),
            format!("{:.0}", metrics[1].family_time_secs),
            format!("{:.0}", metrics[2].family_time_secs),
            format!("{:.0}", metrics[3].family_time_secs),
            row_ref(2),
        ]);
        t.row(vec![
            "Throughput (cpu-s/s)".to_string(),
            format!("{:.1}", metrics[0].throughput),
            format!("{:.1}", metrics[1].throughput),
            format!("{:.1}", metrics[2].throughput),
            format!("{:.1}", metrics[3].throughput),
            row_ref(3),
        ]);
        t.print();
    }
    let (ll, pm) = (&r.workload1[0], &r.workload1[3]);
    println!(
        "\nheadlines: LL throughput/PM = {:.2}x (paper ~1.5-1.6x); \
         foreground delay under LL = {:.3}% (paper < 0.5%)",
        ll.throughput / pm.throughput,
        ll.foreground_delay * 100.0
    );
    note_artifact("fig07", write_json("fig07", &r));
}

/// `--reps N`: rerun over N master seeds and print means ± 95% CIs — the
/// error bars the paper's table lacks.
fn replicated(args: &HarnessArgs) {
    use linger::{JobFamily, Policy};
    use linger_cluster::evaluate_policy_replicated;
    let nodes = if args.fast { 16 } else { 64 };
    for (name, family) in [
        ("Workload-1 (many jobs)", JobFamily::workload_1()),
        ("Workload-2 (few jobs)", JobFamily::workload_2()),
    ] {
        println!("\n== {name}, {} replications, {nodes} nodes ==", args.reps);
        let mut t = Table::new(vec!["policy", "avg job (s)", "throughput", "family (s)", "delay %"]);
        let mut rows = Vec::new();
        for policy in Policy::ALL {
            let r = evaluate_policy_replicated(policy, family.clone(), nodes, args.seed, args.reps);
            t.row(vec![
                policy.abbrev().to_string(),
                format!("{:.0} ± {:.0}", r.avg_completion_secs.mean, r.avg_completion_secs.ci95),
                format!("{:.1} ± {:.1}", r.throughput.mean, r.throughput.ci95),
                format!("{:.0} ± {:.0}", r.family_time_secs.mean, r.family_time_secs.ci95),
                format!(
                    "{:.2} ± {:.2}",
                    r.foreground_delay.mean * 100.0,
                    r.foreground_delay.ci95 * 100.0
                ),
            ]);
            rows.push(r);
        }
        t.print();
        note_artifact("fig07_replicated", write_json("fig07_replicated", &rows));
    }
}
