//! Fig 6: the two-level workload generation pipeline — self-check that
//! the fine-grain stream realizes the coarse trace's utilization.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig06, write_json};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 6", "Local Workload Generation (pipeline self-check)");
    let r = fig06(args.seed, args.fast);
    println!(
        "windows compared: {}; mean |coarse - realized| utilization: {:.4}; \
         correlation: {:.3}",
        r.windows, r.mean_abs_error, r.correlation
    );
    println!("(the fine-grain generator is driven by coarse samples as in the paper's Fig 6)");
    note_artifact("fig06", write_json("fig06", &r));
}
