//! Fig 2: run/idle burst duration CDFs at 10% and 50% utilization —
//! empirical versus the method-of-moments hyper-exponential fit.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig02, write_json, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 2", "Run and Idle Burst Histograms (CDFs, empirical vs fitted)");
    let result = fig02(args.seed, args.fast);
    for bucket in &result {
        println!("\n-- {}% utilization --", bucket.level_pct);
        let mut t = Table::new(vec!["time (s)", "run emp", "run fit", "idle emp", "idle fit"]);
        for (i, (x, re, rf)) in bucket.run_points.iter().enumerate() {
            if i % 5 != 4 {
                continue; // print every 10 ms like the paper's axis ticks
            }
            let (_, ie, if_) = bucket.idle_points[i];
            t.row(vec![
                format!("{x:.3}"),
                format!("{re:.3}"),
                format!("{rf:.3}"),
                format!("{ie:.3}"),
                format!("{if_:.3}"),
            ]);
        }
        t.print();
        println!(
            "KS distance: run {:.4}, idle {:.4}  (paper: \"curves almost exactly match\")",
            bucket.ks_run, bucket.ks_idle
        );
    }
    note_artifact("fig02", write_json("fig02", &result));
}
