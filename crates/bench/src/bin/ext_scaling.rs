//! Extension: simulator scaling sweep — all four policies at 64–4096
//! nodes in constant-load throughput mode, with wall-clock per
//! node-window. The paper's evaluation stops at 64 workstations; this
//! sweep shows the indexed-node-state window loop holds its
//! per-node-window cost out to thousands.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{
    ext_scaling, scaling_ns_per_node_window, write_json, Table, SCALING_NODE_COUNTS,
};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Extension: scaling sweep",
        "four policies, 64-4096 nodes, cost per node-window",
    );
    let (points, timings) = ext_scaling(args.seed, args.fast);
    let mut t = Table::new(vec![
        "nodes",
        "policy",
        "windows",
        "completed",
        "foreign cpu (s)",
        "setup (s)",
        "window loop (s)",
        "ns/node-window",
    ]);
    for (p, tm) in points.iter().zip(&timings) {
        t.row(vec![
            format!("{}", p.nodes),
            p.policy.clone(),
            format!("{}", p.windows),
            format!("{}", p.completed),
            format!("{:.0}", p.foreign_cpu_secs),
            format!("{:.3}", tm.setup_secs),
            format!("{:.3}", tm.run_secs),
            format!("{:.1}", tm.ns_per_node_window),
        ]);
    }
    t.print();
    let lo = SCALING_NODE_COUNTS[0];
    let hi = *SCALING_NODE_COUNTS.last().unwrap();
    let base = scaling_ns_per_node_window(&timings, lo);
    let top = scaling_ns_per_node_window(&timings, hi);
    println!(
        "\nper-node-window cost: {base:.0} ns at {lo} nodes vs {top:.0} ns at {hi} nodes \
         ({:.2}x; flat means the window loop scales linearly in cluster size)",
        top / base.max(1e-12)
    );
    note_artifact("ext_scaling", write_json("ext_scaling", &points));
}
