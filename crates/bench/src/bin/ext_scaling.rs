//! Extension: simulator scaling sweep — all four policies at 64–65,536
//! nodes in constant-load throughput mode, with wall-clock per
//! node-window. The paper's evaluation stops at 64 workstations; this
//! sweep shows the struct-of-arrays window loop holds its
//! per-node-window cost out to the full building.
//!
//! Beyond the shared harness flags, `--max-nodes <n>` truncates the
//! sweep (e.g. `--max-nodes 16384` for a CI smoke run that skips the
//! 65,536-node cells).

use linger_bench::output::{banner, note_artifact, HarnessArgs, USAGE};
use linger_bench::{
    ext_scaling_at, scaling_ns_per_node_window, write_json, Table, SCALING_NODE_COUNTS,
};

fn main() {
    // Extract the bin-local `--max-nodes` before the shared parser (which
    // rejects flags it does not know) sees the argument list.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut max_nodes = usize::MAX;
    while let Some(i) = raw.iter().position(|a| a == "--max-nodes") {
        raw.remove(i);
        if i >= raw.len() {
            eprintln!("error: --max-nodes requires a value\n{USAGE}");
            std::process::exit(2);
        }
        let v = raw.remove(i);
        max_nodes = match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: --max-nodes requires an integer, got '{v}'\n{USAGE}");
                std::process::exit(2);
            }
        };
    }
    let args = match HarnessArgs::try_parse(raw) {
        Ok(args) => {
            linger_sim_core::set_default_jobs(args.jobs);
            args
        }
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}\n     --max-nodes <n>  truncate the node-count sweep");
            std::process::exit(2);
        }
    };
    let counts: Vec<usize> =
        SCALING_NODE_COUNTS.iter().copied().filter(|&n| n <= max_nodes).collect();
    banner(
        "Extension: scaling sweep",
        "four policies, 64-65,536 nodes, cost per node-window",
    );
    let (points, timings) = ext_scaling_at(args.seed, &counts, args.fast);
    let mut t = Table::new(vec![
        "nodes",
        "policy",
        "windows",
        "completed",
        "foreign cpu (s)",
        "setup (s)",
        "window loop (s)",
        "ns/node-window",
    ]);
    for (p, tm) in points.iter().zip(&timings) {
        t.row(vec![
            format!("{}", p.nodes),
            p.policy.clone(),
            format!("{}", p.windows),
            format!("{}", p.completed),
            format!("{:.0}", p.foreign_cpu_secs),
            format!("{:.3}", tm.setup_secs),
            format!("{:.3}", tm.run_secs),
            format!("{:.1}", tm.ns_per_node_window),
        ]);
    }
    t.print();
    let lo = counts[0];
    let hi = *counts.last().unwrap();
    let base = scaling_ns_per_node_window(&timings, lo);
    let top = scaling_ns_per_node_window(&timings, hi);
    println!(
        "\nper-node-window cost: {base:.0} ns at {lo} nodes vs {top:.0} ns at {hi} nodes \
         ({:.2}x; flat means the window loop scales linearly in cluster size)",
        top / base.max(1e-12)
    );
    note_artifact("ext_scaling", write_json("ext_scaling", &points));
}
