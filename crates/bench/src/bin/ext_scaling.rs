//! Extension: simulator scaling sweep — all four policies at 64 to
//! 1,048,576 nodes in constant-load throughput mode, with wall-clock per
//! node-window. The paper's evaluation stops at 64 workstations; this
//! sweep shows the struct-of-arrays window loop holds its
//! per-node-window cost out to a million machines, switching to the
//! memory-bounded streamed window pipeline once a monolithic table would
//! blow the byte budget (`LINGER_WINDOW_BUDGET_BYTES`, default 4 GiB;
//! `LINGER_WINDOW_CHUNK` forces chunked streaming at any size).
//!
//! Beyond the shared harness flags, `--max-nodes <n>` truncates the
//! sweep (e.g. `--max-nodes 16384` for a CI smoke run that skips the
//! larger cells).

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{
    ext_scaling_at, peak_rss_kb, scaling_ns_per_node_window, write_json, Table,
    SCALING_NODE_COUNTS,
};

fn main() {
    let args = HarnessArgs::parse();
    let max_nodes = args.max_nodes.unwrap_or(usize::MAX);
    let counts: Vec<usize> =
        SCALING_NODE_COUNTS.iter().copied().filter(|&n| n <= max_nodes).collect();
    banner(
        "Extension: scaling sweep",
        "four policies, 64-1,048,576 nodes, cost per node-window",
    );
    let (points, timings) = ext_scaling_at(args.seed, &counts, args.fast);
    let mut t = Table::new(vec![
        "nodes",
        "policy",
        "windows",
        "completed",
        "foreign cpu (s)",
        "setup (s)",
        "chunk build (s)",
        "window loop (s)",
        "ns/node-window",
        "live rows",
    ]);
    for (p, tm) in points.iter().zip(&timings) {
        t.row(vec![
            format!("{}", p.nodes),
            p.policy.clone(),
            format!("{}", p.windows),
            format!("{}", p.completed),
            format!("{:.0}", p.foreign_cpu_secs),
            format!("{:.3}", tm.setup_secs),
            format!("{:.3}", tm.stream_build_secs),
            format!("{:.3}", tm.run_secs),
            format!("{:.1}", tm.ns_per_node_window),
            format!("{}", tm.live_job_rows),
        ]);
    }
    t.print();
    // One grep-able line per node count for the CI live-lane assertion:
    // with slot recycling the live rows equal the initial job count
    // (2 jobs per node) regardless of turnover.
    for tm in timings.iter().filter(|tm| tm.policy == "LL") {
        println!(
            "live-lanes: nodes={} live_rows={} archived={}",
            tm.nodes, tm.live_job_rows, tm.archived_jobs
        );
    }
    let lo = counts[0];
    let hi = *counts.last().unwrap();
    let base = scaling_ns_per_node_window(&timings, lo);
    let top = scaling_ns_per_node_window(&timings, hi);
    println!(
        "\nper-node-window cost: {base:.0} ns at {lo} nodes vs {top:.0} ns at {hi} nodes \
         ({:.2}x; flat means the window loop scales linearly in cluster size)",
        top / base.max(1e-12)
    );
    if let Some(kb) = peak_rss_kb() {
        println!("peak RSS: {} MiB", kb / 1024);
    }
    note_artifact("ext_scaling", write_json("ext_scaling", &points));
}
