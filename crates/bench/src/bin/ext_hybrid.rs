//! Extension: the hybrid linger/reconfigure strategy the paper proposes
//! as future work (Sec 5.2) — model-predicted width vs. a simulation
//! oracle, against both pure strategies.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{ext_hybrid, write_json, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Extension: hybrid strategy", "predicted width vs oracle (32-node BSP, 20% load)");
    let pts = ext_hybrid(args.seed);
    let mut t = Table::new(vec![
        "idle", "reconfig (s)", "linger-32 (s)", "hybrid k", "hybrid (s)", "oracle k", "oracle (s)",
    ]);
    for p in pts.iter().filter(|p| p.idle % 2 == 0) {
        t.row(vec![
            format!("{}", p.idle),
            format!("{:.2}", p.reconfig_secs),
            format!("{:.2}", p.linger_full_secs),
            format!("{}", p.hybrid_k),
            format!("{:.2}", p.hybrid_secs),
            format!("{}", p.oracle_k),
            format!("{:.2}", p.oracle_secs),
        ]);
    }
    t.print();
    let regret: f64 = pts
        .iter()
        .map(|p| p.hybrid_secs / p.oracle_secs)
        .fold(0.0f64, f64::max);
    println!("\nworst predictor regret vs oracle: {:.1}%", (regret - 1.0) * 100.0);
    note_artifact("ext_hybrid", write_json("ext_hybrid", &pts));
}
