//! Fig 5: Local-job Delay Ratio (a) and Fine-grain Cycle Stealing Ratio
//! (b) versus local CPU usage, for 100/300/500 µs context switches.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{fig05, write_json, AsciiChart, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner("Fig 5", "LDR and FCSR vs local CPU usage");
    let grid = fig05(args.seed, args.fast);
    for (label, metric) in [("(a) Local job Delay Ratio", 0), ("(b) Cycle Stealing Ratio", 1)] {
        println!("\n{label}");
        let mut t = Table::new(vec!["cpu %", "100 usec", "300 usec", "500 usec"]);
        for ui in 0..9 {
            let cells: Vec<String> = (0..3)
                .map(|ci| {
                    let r = &grid[ci * 9 + ui];
                    if metric == 0 {
                        format!("{:.4}", r.ldr)
                    } else {
                        format!("{:.1}%", r.fcsr * 100.0)
                    }
                })
                .collect();
            t.row(vec![
                format!("{}", (ui + 1) * 10),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
        t.print();
    }
    for (title, metric) in [("LDR", 0usize), ("FCSR", 1)] {
        let mut chart = AsciiChart::new(54, 10).labels(
            "local CPU usage (%)",
            if metric == 0 { "delay ratio" } else { "stealing ratio" },
        );
        for (ci, marker) in [(0usize, '1'), (1, '3'), (2, '5')] {
            chart = chart.series(
                marker,
                (0..9)
                    .map(|ui| {
                        let r = &grid[ci * 9 + ui];
                        let y = if metric == 0 { r.ldr } else { r.fcsr };
                        (((ui + 1) * 10) as f64, y)
                    })
                    .collect(),
            );
        }
        println!("\n{title} (markers: 1=100us, 3=300us, 5=500us)");
        println!("{}", chart.render());
    }
    let peak_100 = grid[..9].iter().map(|r| r.ldr).fold(0.0f64, f64::max);
    let peak_500 = grid[18..].iter().map(|r| r.ldr).fold(0.0f64, f64::max);
    let min_fcsr = grid.iter().map(|r| r.fcsr).fold(1.0f64, f64::min);
    println!(
        "\npeak LDR: {:.2}% @100us (paper ~1%), {:.2}% @500us (paper ~8%); \
         min FCSR {:.1}% (paper >90%)",
        peak_100 * 100.0,
        peak_500 * 100.0,
        min_fcsr * 100.0
    );
    note_artifact("fig05", write_json("fig05", &grid));
}
