//! Extension: fault-injection sweep — all four policies under node
//! crash/reboot processes and in-transit migration failures. The
//! paper's cluster is fault-free; this sweep shows how each policy
//! degrades as nodes crash and transfers fail, and that the fault
//! machinery at rate zero is bit-identical to the fault-free simulator.

use linger_bench::output::{banner, note_artifact, HarnessArgs};
use linger_bench::{ext_faults, write_json, Table};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Extension: fault injection",
        "crash/reboot + migration failures across the policy grid",
    );
    let points = ext_faults(args.seed, args.fast);
    let mut t = Table::new(vec![
        "crashes/node-h",
        "p(mig fail)",
        "policy",
        "completed",
        "foreign cpu (s)",
        "crashes",
        "evictions",
        "mig failures",
        "retries",
        "abandoned",
    ]);
    for p in &points {
        t.row(vec![
            format!("{:.1}", p.crash_rate_per_hour),
            format!("{:.2}", p.migration_failure_prob),
            p.policy.clone(),
            format!("{}", p.completed),
            format!("{:.0}", p.foreign_cpu_secs),
            format!("{}", p.crashes),
            format!("{}", p.crash_evictions),
            format!("{}", p.migration_failures),
            format!("{}", p.migration_retries),
            format!("{}", p.migrations_abandoned),
        ]);
    }
    t.print();
    note_artifact("ext_faults", write_json("ext_faults", &points));
}
