//! Figure-by-figure experiment drivers.
//!
//! Each function regenerates the data behind one figure or table of the
//! paper's evaluation, scaled by the `fast` flag for smoke runs. The
//! binaries in `src/bin/` print these results in the paper's layout; the
//! integration tests assert their shape.

use linger::{JobFamily, Policy};
use linger_cluster::{policy_comparison, PolicyMetrics};
use linger_node::{fig5_paper_grid, SingleNodeReport};
use linger_sim_core::{domains, par_map_indexed, RngFactory, SimDuration, SimTime};
use linger_stats::Distribution;
use linger_workload::{
    analysis::{CoarseAggregates, FineGrainAnalysis},
    BurstFitTable, BurstKind, BurstParamTable, CoarseTraceConfig, DispatchTrace, LocalWorkload,
    TraceLibrary,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

// ---------------------------------------------------------------- fig 2

/// CDF overlay for one utilization bucket (Fig 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Bucket {
    /// Bucket utilization (percent).
    pub level_pct: u32,
    /// `(duration s, empirical CDF, fitted CDF)` for run bursts.
    pub run_points: Vec<(f64, f64, f64)>,
    /// Same for idle bursts.
    pub idle_points: Vec<(f64, f64, f64)>,
    /// Kolmogorov–Smirnov distance, run bursts.
    pub ks_run: f64,
    /// Kolmogorov–Smirnov distance, idle bursts.
    pub ks_idle: f64,
}

/// Fig 2: empirical vs. method-of-moments-fitted burst CDFs at 10% and
/// 50% utilization.
pub fn fig02(seed: u64, fast: bool) -> Vec<Fig2Bucket> {
    let minutes = if fast { 5 } else { 40 };
    let factory = RngFactory::new(seed);
    // The two buckets are independent analyses; fan out, output in order.
    let buckets = [(0u64, 10u32), (1, 50)];
    par_map_indexed(buckets.len(), None, |k| {
        let (id, pct) = buckets[k];
        let trace = DispatchTrace::synthesize_fixed(
            &factory,
            id,
            pct as f64 / 100.0,
            SimDuration::from_secs(minutes * 60),
        );
        let mut an = FineGrainAnalysis::new(true);
        an.ingest(&trace);
        let bucket = (pct / 5) as usize;
        let (run_fit, idle_fit) = an.fitted(bucket);
        let run_fit = run_fit.expect("run fit");
        let idle_fit = idle_fit.expect("idle fit");
        let run_ecdf = an.ecdf(bucket, BurstKind::Run);
        let idle_ecdf = an.ecdf(bucket, BurstKind::Idle);
        // The paper plots 0–0.1 s.
        let xs: Vec<f64> = (1..=50).map(|i| i as f64 * 0.002).collect();
        let run_points =
            xs.iter().map(|&x| (x, run_ecdf.eval(x), run_fit.cdf(x))).collect();
        let idle_points =
            xs.iter().map(|&x| (x, idle_ecdf.eval(x), idle_fit.cdf(x))).collect();
        Fig2Bucket {
            level_pct: pct,
            run_points,
            idle_points,
            ks_run: run_ecdf.ks_distance(|x| run_fit.cdf(x)),
            ks_idle: idle_ecdf.ks_distance(|x| idle_fit.cdf(x)),
        }
    })
}

// ---------------------------------------------------------------- fig 3

/// One bucket row of Fig 3: measured vs. generating-model moments.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Bucket level (percent).
    pub level_pct: u32,
    /// Measured mean run-burst duration (s).
    pub run_mean: f64,
    /// Measured run-burst variance (s²).
    pub run_var: f64,
    /// Measured mean idle-burst duration (s).
    pub idle_mean: f64,
    /// Measured idle-burst variance (s²).
    pub idle_var: f64,
    /// Model (ground truth) run mean.
    pub model_run_mean: f64,
    /// Model idle mean.
    pub model_idle_mean: f64,
    /// Number of 2-second windows observed in this bucket.
    pub windows: u64,
}

/// Fig 3: re-derive the burst parameter table from synthetic dispatch
/// traces spanning every utilization level.
pub fn fig03(seed: u64, fast: bool) -> Vec<Fig3Row> {
    let factory = RngFactory::new(seed);
    let minutes: u64 = if fast { 3 } else { 20 };
    let mut an = FineGrainAnalysis::new(false);
    // One fixed-level trace per bucket (the paper's "several twenty-minute
    // intervals … at various level of utilization"). Each trace's stream
    // is keyed by its bucket id, so synthesis fans out; ingestion stays
    // serial in bucket order to keep the accumulators byte-identical.
    let traces = par_map_indexed(19, None, |j| {
        let i = j as u64 + 1;
        DispatchTrace::synthesize_fixed(
            &factory,
            i,
            i as f64 * 0.05,
            SimDuration::from_secs(minutes * 60),
        )
    });
    for trace in &traces {
        an.ingest(trace);
    }
    let measured = an.to_param_table();
    let model = BurstParamTable::paper_calibrated();
    (0..linger_workload::NUM_BUCKETS)
        .map(|i| {
            let m = measured.buckets()[i];
            let g = model.buckets()[i];
            Fig3Row {
                level_pct: (i * 5) as u32,
                run_mean: m.run_mean,
                run_var: m.run_var,
                idle_mean: m.idle_mean,
                idle_var: m.idle_var,
                model_run_mean: g.run_mean,
                model_idle_mean: g.idle_mean,
                windows: an.buckets()[i].windows,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- fig 4

/// Fig 4 plus the Sec 3.2 headline aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Machines synthesized.
    pub machines: usize,
    /// Trace hours per machine.
    pub hours: u64,
    /// Fraction of time non-idle (paper: 0.46).
    pub non_idle_fraction: f64,
    /// Fraction of non-idle time below 10% CPU (paper: 0.76).
    pub non_idle_low_cpu_fraction: f64,
    /// `(free KB, fraction of time at least that much is free)` — overall.
    pub cdf_all: Vec<(f64, f64)>,
    /// Same during idle periods.
    pub cdf_idle: Vec<(f64, f64)>,
    /// Same during non-idle periods.
    pub cdf_non_idle: Vec<(f64, f64)>,
    /// Free memory exceeded 90% of the time (paper: ≥ 14 MB).
    pub p90_free_kb: f64,
    /// Free memory exceeded 95% of the time (paper: ≥ 10 MB).
    pub p95_free_kb: f64,
}

/// Fig 4: the available-memory distribution of the synthetic coarse
/// trace library.
pub fn fig04(seed: u64, fast: bool) -> Fig4Result {
    // Even the fast mode needs enough machine-hours for the episode-level
    // aggregates to converge near the paper's values.
    let machines = if fast { 10 } else { 32 };
    let hours = if fast { 4 } else { 12 };
    // The calibration targets are time-averaged aggregates; the diurnal
    // modulation is deliberately left off here because its asymmetric
    // episode scaling shifts the long-run active fraction (it is
    // exercised separately by the workload crate's tests).
    let cfg = CoarseTraceConfig {
        duration: SimDuration::from_secs(hours * 3600),
        ..Default::default()
    };
    let traces = cfg.synthesize_library(&RngFactory::new(seed), machines);
    let agg = CoarseAggregates::analyze(&traces);
    // "The y-axis shows the fraction of time that at least x KB of memory
    // are available": survival function points.
    let survival = |e: &linger_stats::Ecdf| -> Vec<(f64, f64)> {
        (0..=16)
            .map(|i| {
                let kb = i as f64 * 4096.0;
                (kb, 1.0 - e.eval(kb - 1.0))
            })
            .collect()
    };
    Fig4Result {
        machines,
        hours,
        non_idle_fraction: agg.non_idle_fraction,
        non_idle_low_cpu_fraction: agg.non_idle_low_cpu_fraction,
        cdf_all: survival(&agg.mem_all),
        cdf_idle: survival(&agg.mem_idle),
        cdf_non_idle: survival(&agg.mem_non_idle),
        p90_free_kb: agg.mem_available_at_least(0.90),
        p95_free_kb: agg.mem_available_at_least(0.95),
    }
}

// ---------------------------------------------------------------- fig 5

/// Fig 5: LDR and FCSR vs. local utilization for 100/300/500 µs context
/// switches.
pub fn fig05(seed: u64, fast: bool) -> Vec<SingleNodeReport> {
    let dur = SimDuration::from_secs(if fast { 60 } else { 600 });
    fig5_paper_grid(dur, seed)
}

// ---------------------------------------------------------------- fig 6

/// Self-check of the two-level generation pipeline (the Fig 6
/// architecture): fine-grain streams must track their coarse trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Windows compared.
    pub windows: usize,
    /// Mean absolute utilization error between the coarse sample and the
    /// fine-grain stream realized in its window.
    pub mean_abs_error: f64,
    /// Correlation between coarse and realized window utilization.
    pub correlation: f64,
}

/// Fig 6: generate a trace-driven fine-grain stream and compare realized
/// window utilizations to the coarse samples that commanded them.
pub fn fig06(seed: u64, fast: bool) -> Fig6Result {
    let factory = RngFactory::new(seed);
    let hours = if fast { 1 } else { 2 };
    let cfg = CoarseTraceConfig {
        duration: SimDuration::from_secs(hours * 3600),
        ..Default::default()
    };
    let trace = Arc::new(cfg.synthesize(&factory, 0));
    let mut wl = LocalWorkload::new(
        trace.clone(),
        0,
        BurstFitTable::paper_shared(),
        factory.stream_for(domains::FINE_BURSTS, 0),
    );
    let horizon = SimTime::ZERO + trace.duration();
    let window_ns = 2_000_000_000u64;
    let n_windows = (trace.duration().as_nanos() / window_ns) as usize;
    let mut busy = vec![0u64; n_windows];
    while wl.position() < horizon {
        let start = wl.position();
        let b = wl.next_burst();
        if b.kind == BurstKind::Run {
            // Attribute run time to the windows it overlaps.
            let mut s = start.as_nanos();
            let e = (start + b.duration).as_nanos();
            while s < e {
                let w = (s / window_ns) as usize;
                if w >= n_windows {
                    break;
                }
                let w_end = (w as u64 + 1) * window_ns;
                busy[w] += e.min(w_end) - s;
                s = e.min(w_end);
            }
        }
    }
    let coarse: Vec<f64> = (0..n_windows).map(|w| trace.sample(w).cpu).collect();
    let fine: Vec<f64> = busy.iter().map(|&b| b as f64 / window_ns as f64).collect();
    let mae = coarse
        .iter()
        .zip(&fine)
        .map(|(c, f)| (c - f).abs())
        .sum::<f64>()
        / n_windows as f64;
    Fig6Result {
        windows: n_windows,
        mean_abs_error: mae,
        correlation: correlation(&coarse, &fine),
    }
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va * vb).sqrt()
    }
}

// ------------------------------------------------------------- fig 7/8

/// Fig 7 table (with Fig 8 breakdowns) for both workloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Cluster size used.
    pub nodes: usize,
    /// Metrics per policy, workload-1 (many jobs).
    pub workload1: Vec<PolicyMetrics>,
    /// Metrics per policy, workload-2 (few jobs).
    pub workload2: Vec<PolicyMetrics>,
}

/// Figs 7 and 8: the 64-node cluster policy comparison on both paper
/// workloads.
pub fn fig07(seed: u64, fast: bool) -> Fig7Result {
    let nodes = if fast { 16 } else { 64 };
    let (w1, w2) = if fast {
        (
            JobFamily::uniform(32, SimDuration::from_secs(300), 8 * 1024),
            JobFamily::uniform(4, SimDuration::from_secs(900), 8 * 1024),
        )
    } else {
        (JobFamily::workload_1(), JobFamily::workload_2())
    };
    Fig7Result {
        nodes,
        workload1: policy_comparison(w1, nodes, seed),
        workload2: policy_comparison(w2, nodes, seed),
    }
}

/// Paper reference values for the Fig 7 table (for side-by-side
/// printing).
pub fn fig07_paper_reference() -> [[f64; 4]; 8] {
    // Rows: (w1 avg, w1 var%, w1 family, w1 tput, w2 avg, w2 var%,
    // w2 family, w2 tput); columns LL, LF, IE, PM.
    [
        [1044.0, 1026.0, 1531.0, 1531.0],
        [13.7, 20.5, 27.7, 22.5],
        [1847.0, 1844.0, 2616.0, 2521.0],
        [52.2, 55.5, 34.6, 34.6],
        [1859.0, 1861.0, 1860.0, 1862.0],
        [0.9, 1.3, 1.3, 1.6],
        [1896.0, 1925.0, 1925.0, 1956.0],
        [15.0, 14.7, 14.5, 14.5],
    ]
}

// ------------------------------------------------------------ figs 9-13

/// Fig 9 series.
pub fn fig09(seed: u64, fast: bool) -> Vec<linger_parallel::Fig9Point> {
    linger_parallel::fig9(seed, if fast { 40 } else { 300 })
}

/// Fig 10 series.
pub fn fig10(seed: u64, fast: bool) -> Vec<linger_parallel::Fig10Point> {
    let total = SimDuration::from_secs(if fast { 3 } else { 20 });
    linger_parallel::fig10(seed, total)
}

/// Fig 11 series.
pub fn fig11(seed: u64) -> Vec<linger_parallel::Fig11Point> {
    linger_parallel::fig11(seed)
}

/// Fig 12 grid.
pub fn fig12(seed: u64) -> Vec<linger_parallel::Fig12Point> {
    linger_parallel::fig12(seed)
}

/// Fig 13 series.
pub fn fig13(seed: u64) -> Vec<linger_parallel::Fig13Point> {
    linger_parallel::fig13(seed)
}

/// Convenience: all policies' abbreviations in table order.
pub fn policy_headers() -> Vec<&'static str> {
    Policy::ALL.iter().map(|p| p.abbrev()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 7;

    #[test]
    fn fig02_fast_fits_match() {
        let r = fig02(SEED, true);
        assert_eq!(r.len(), 2);
        for b in &r {
            assert!(b.ks_run < 0.1, "{}%: ks {}", b.level_pct, b.ks_run);
            assert!(b.ks_idle < 0.1, "{}%: ks {}", b.level_pct, b.ks_idle);
            assert_eq!(b.run_points.len(), 50);
        }
    }

    #[test]
    fn fig03_fast_recovers_moments() {
        let rows = fig03(SEED, true);
        assert_eq!(rows.len(), 21);
        // Mid buckets must be populated and near the model.
        for row in rows.iter().filter(|r| (20..=80).contains(&r.level_pct)) {
            assert!(row.windows > 0, "bucket {} empty", row.level_pct);
            if row.model_run_mean > 0.0 && row.windows > 50 {
                let err = (row.run_mean - row.model_run_mean).abs() / row.model_run_mean;
                assert!(err < 0.5, "bucket {}: run mean err {err}", row.level_pct);
            }
        }
    }

    #[test]
    fn fig04_fast_matches_paper_anchors() {
        let r = fig04(SEED, true);
        assert!((r.non_idle_fraction - 0.46).abs() < 0.10);
        assert!((r.non_idle_low_cpu_fraction - 0.76).abs() < 0.10);
        assert!(r.p90_free_kb >= 12_000.0);
        assert!(r.p95_free_kb >= 8_000.0);
        // Survival curves are monotone decreasing.
        for pts in [&r.cdf_all, &r.cdf_idle, &r.cdf_non_idle] {
            for w in pts.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-12);
            }
        }
    }

    #[test]
    fn fig05_fast_has_grid() {
        let r = fig05(SEED, true);
        assert_eq!(r.len(), 27);
        assert!(r.iter().all(|p| p.fcsr > 0.85));
    }

    #[test]
    fn fig06_pipeline_tracks_trace() {
        let r = fig06(SEED, true);
        assert!(r.windows > 1000);
        assert!(r.mean_abs_error < 0.08, "MAE {}", r.mean_abs_error);
        assert!(r.correlation > 0.8, "corr {}", r.correlation);
    }

    #[test]
    fn fig07_fast_preserves_ordering() {
        let r = fig07(SEED, true);
        let (ll, ie) = (&r.workload1[0], &r.workload1[2]);
        assert!(ll.avg_completion_secs < ie.avg_completion_secs);
        assert!(ll.throughput > ie.throughput);
    }

    #[test]
    fn fig09_fast_shape() {
        let r = fig09(SEED, true);
        assert_eq!(r.len(), 10);
        assert!(r[9].slowdown > r[2].slowdown);
    }

    #[test]
    fn ext_scaling_cells_are_deterministic_and_match_cluster_sim_new() {
        // A scaling cell must reproduce exactly what ClusterSim::new
        // would compute from the same config — the shared traces/offsets
        // are an optimization, not a semantic change — and re-running
        // the sweep must give byte-identical points.
        let (points, timings) = ext_scaling_at(SEED, &[16], true);
        assert_eq!(points.len(), 4);
        assert_eq!(timings.len(), 4);
        let (again, _) = ext_scaling_at(SEED, &[16], true);
        for (a, b) in points.iter().zip(&again) {
            assert_eq!(serde_json::to_string(a).unwrap(), serde_json::to_string(b).unwrap());
        }
        for (p, t) in points.iter().zip(&timings) {
            assert_eq!(p.windows, 300, "600 s horizon at 2 s windows");
            assert_eq!(t.node_windows, 16.0 * 300.0);
            assert!(p.completed > 0, "{}: nothing finished", p.policy);
        }
        // Direct construction path gives the same numbers.
        let family =
            JobFamily::uniform(32, SimDuration::from_secs(300), 8 * 1024);
        let mut cfg =
            linger_cluster::ClusterConfig::paper(Policy::LingerLonger, family);
        cfg.nodes = 16;
        cfg.seed = SEED;
        cfg.trace = CoarseTraceConfig {
            duration: SimDuration::from_secs(3600),
            ..Default::default()
        };
        cfg.mode = linger_cluster::RunMode::Throughput {
            horizon: SimTime::from_secs(600),
        };
        let mut sim = linger_cluster::ClusterSim::new(cfg);
        sim.run();
        let ll = &points[0];
        assert_eq!(ll.policy, "LL");
        assert_eq!(ll.completed, sim.completed());
        assert_eq!(ll.foreign_cpu_secs, sim.foreign_cpu_delivered().as_secs_f64());
    }

    #[test]
    fn paper_reference_is_fig7_shaped() {
        let refs = fig07_paper_reference();
        assert_eq!(refs.len(), 8);
        // Headline: LL throughput improves ~50% over PM on workload-1.
        assert!(refs[3][0] / refs[3][3] > 1.4);
    }
}

// ------------------------------------------------------- extensions

/// The hybrid-strategy extension (paper Sec 5.2 future work).
pub fn ext_hybrid(seed: u64) -> Vec<linger_parallel::HybridPoint> {
    let job = linger_parallel::MalleableJob::fig11();
    linger_parallel::hybrid_experiment(&job, seed, 5)
}

/// The end-to-end parallel-throughput extension (paper Sec 7 ongoing
/// work): offered-load sweep under rigid-idle vs lingering placement.
pub fn ext_parallel_throughput(
    seed: u64,
    fast: bool,
) -> Vec<linger_parallel::ThroughputComparison> {
    let mut base =
        linger_parallel::ParallelClusterConfig { seed, ..Default::default() };
    if fast {
        base.nodes = 16;
        base.width = 4;
        base.phases = 120;
        base.horizon = linger_sim_core::SimTime::from_secs(3600);
        base.trace.duration = SimDuration::from_secs(3600);
    }
    let loads: &[u64] = if fast { &[30, 90, 300] } else { &[30, 60, 90, 180, 300, 600] };
    linger_parallel::throughput_sweep(&base, loads)
}

/// Node counts the scaling extension sweeps. The top counts stream
/// their windows through the chunked pipeline (a monolithic table at
/// 1,048,576 nodes would need ~52 GiB); `run_all` only runs past
/// 65,536 in full mode.
pub const SCALING_NODE_COUNTS: [usize; 8] =
    [64, 256, 1024, 4096, 16_384, 65_536, 262_144, 1_048_576];

/// One deterministic cell of the scaling sweep. Every field is a pure
/// function of `(seed, fast)`, so CI can byte-diff the JSON across
/// machines and thread counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Cluster size.
    pub nodes: usize,
    /// Policy abbreviation (LL / LF / IE / PM).
    pub policy: String,
    /// Windows simulated (horizon / 2 s).
    pub windows: usize,
    /// Jobs completed inside the horizon.
    pub completed: usize,
    /// Foreign CPU delivered over the horizon, seconds.
    pub foreign_cpu_secs: f64,
    /// Cluster-wide foreground delay ratio.
    pub foreground_delay: f64,
}

/// Wall-clock of one scaling cell — kept out of [`ScalingPoint`] so the
/// deterministic JSON stays machine-independent.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingTiming {
    /// Cluster size.
    pub nodes: usize,
    /// Policy abbreviation.
    pub policy: String,
    /// Seconds building the simulator (per-cell share of the trace
    /// synthesis, which runs once per node count, plus construction).
    pub setup_secs: f64,
    /// Seconds inside the window loop — the **median** of the
    /// individually-timed replicates, robust against a scheduler blip
    /// landing in one rep. When the cell streams its windows, chunk
    /// construction is subtracted out (see [`Self::stream_build_secs`])
    /// so this stays a pure sweep cost comparable across table and
    /// streamed cells.
    pub run_secs: f64,
    /// Mean seconds per replicate spent building window chunks inside
    /// the run (the streamed pipeline synthesizes windows lazily ahead
    /// of the sweep cursor). Zero for cells served by a monolithic
    /// table, whose window synthesis lands in `setup_secs` instead.
    pub stream_build_secs: f64,
    /// Identical runs timed independently (always ≥ 3; more for small
    /// cells, whose single run sits near clock granularity). Replicates
    /// share traces and produce byte-identical results; only the first
    /// run's outcomes are reported.
    pub timing_reps: u32,
    /// `nodes × windows` of one run of the cell.
    pub node_windows: f64,
    /// Window-loop nanoseconds per node-window.
    pub ns_per_node_window: f64,
    /// Live hot-lane rows in the job slabs after the run — with slot
    /// recycling this stays at the initial job count (`O(active jobs)`)
    /// no matter how many respawns the horizon produced.
    pub live_job_rows: usize,
    /// Completed jobs retired to the cold archive during the run.
    pub archived_jobs: usize,
}

/// Window-loop nanoseconds per node-window at one node count, aggregated
/// over all policies — the scorecard's flat-scaling criterion.
pub fn scaling_ns_per_node_window(timings: &[ScalingTiming], nodes: usize) -> f64 {
    let mut secs = 0.0;
    let mut node_windows = 0.0;
    for t in timings.iter().filter(|t| t.nodes == nodes) {
        secs += t.run_secs;
        node_windows += t.node_windows;
    }
    if node_windows == 0.0 {
        0.0
    } else {
        secs * 1e9 / node_windows
    }
}

/// The scaling extension: all four policies at the node counts in
/// `node_counts`, in constant-load throughput mode, with wall-clock per
/// node-window. The paper stops at 64 nodes; this sweep shows the
/// indexed-node-state simulator holds its per-node-window cost out to a
/// million workstations. Counts whose monolithic window table would
/// exceed `LINGER_WINDOW_BUDGET_BYTES` (default 4 GiB) stream windows
/// through the chunked pipeline instead; outcomes are byte-identical
/// either way, and the chunk-build seconds are reported separately in
/// [`ScalingTiming::stream_build_secs`].
///
/// Cells run serially so the timings are uncontended; inside a cell the
/// trace synthesis fans out deterministically. Traces, offsets, and the
/// window table depend only on `(trace config, seed, nodes)`, exactly as
/// [`linger_cluster::ClusterSim::new`] derives them, so each node count
/// fetches one shared realization from the [`TraceLibrary`] and the four
/// policies (and every timing replicate) reuse it.
pub fn ext_scaling_at(
    seed: u64,
    node_counts: &[usize],
    fast: bool,
) -> (Vec<ScalingPoint>, Vec<ScalingTiming>) {
    let horizon = SimTime::from_secs(if fast { 600 } else { 3600 });
    // One hour of coarse trace, replayed cyclically — enough diversity
    // for a scaling study while keeping 4096 nodes' traces in memory.
    let trace_cfg = CoarseTraceConfig {
        duration: SimDuration::from_secs(3600),
        ..Default::default()
    };
    let mut points = Vec::new();
    let mut timings = Vec::new();
    for &nodes in node_counts {
        let t0 = std::time::Instant::now();
        // One realization (traces + offsets + window table) per node
        // count, shared across all four policies and every timing
        // replicate below — and with every other driver that asks for
        // the same `(trace_cfg, seed, nodes)` key.
        let real = TraceLibrary::global().realize(&trace_cfg, seed, nodes);
        let shared_setup = t0.elapsed().as_secs_f64() / Policy::ALL.len() as f64;
        for policy in Policy::ALL {
            let t1 = std::time::Instant::now();
            let expected_windows =
                (horizon.as_nanos() / linger_cluster::WINDOW.as_nanos()) as f64;
            // Enough identical runs to keep each timed region well above
            // clock granularity (a 64-node cell alone finishes in ~2 ms),
            // and never fewer than three so the median below has
            // something to reject an outlier against — except at the
            // largest counts, where a single run is seconds long and
            // holding several simulators at once would multiply the
            // peak footprint the streamed pipeline exists to bound.
            let min_reps = if nodes >= 262_144 { 1 } else { 3 };
            let reps = ((256.0 * 1024.0 / (nodes as f64 * expected_windows)).ceil()
                as u32)
                .clamp(1, 16)
                .max(min_reps);
            let mut sims: Vec<linger_cluster::ClusterSim> = (0..reps)
                .map(|_| {
                    let family = JobFamily::uniform(
                        (2 * nodes) as u32,
                        SimDuration::from_secs(300),
                        8 * 1024,
                    );
                    let mut cfg = linger_cluster::ClusterConfig::paper(policy, family);
                    cfg.nodes = nodes;
                    cfg.seed = seed;
                    cfg.trace = trace_cfg.clone();
                    cfg.mode = linger_cluster::RunMode::Throughput { horizon };
                    linger_cluster::ClusterSim::with_realization(cfg, &real)
                })
                .collect();
            let setup_secs = shared_setup + t1.elapsed().as_secs_f64();
            // Time each replicate independently and keep the median, so
            // one preempted rep cannot drag the reported cost. Streamed
            // cells build window chunks lazily *inside* run(); that
            // build time is workload synthesis, not sweep cost, so it
            // is measured via the simulator's own accounting and
            // subtracted from the rep's wall-clock.
            let mut build_total = 0.0;
            let mut rep_secs: Vec<f64> = sims
                .iter_mut()
                .map(|sim| {
                    let b0 = sim.stream_build_secs();
                    let t2 = std::time::Instant::now();
                    sim.run();
                    let built = sim.stream_build_secs() - b0;
                    build_total += built;
                    (t2.elapsed().as_secs_f64() - built).max(0.0)
                })
                .collect();
            rep_secs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            let mid = rep_secs.len() / 2;
            let run_secs = if rep_secs.len() % 2 == 1 {
                rep_secs[mid]
            } else {
                (rep_secs[mid - 1] + rep_secs[mid]) / 2.0
            };
            let sim = &sims[0];
            let windows =
                (sim.now().as_nanos() / linger_cluster::WINDOW.as_nanos()) as usize;
            let node_windows = nodes as f64 * windows as f64;
            points.push(ScalingPoint {
                nodes,
                policy: policy.abbrev().to_string(),
                windows,
                completed: sim.completed(),
                foreign_cpu_secs: sim.foreign_cpu_delivered().as_secs_f64(),
                foreground_delay: sim.foreground_delay_ratio(),
            });
            timings.push(ScalingTiming {
                nodes,
                policy: policy.abbrev().to_string(),
                setup_secs,
                run_secs,
                stream_build_secs: build_total / reps as f64,
                timing_reps: reps,
                node_windows,
                ns_per_node_window: run_secs * 1e9 / node_windows.max(1.0),
                live_job_rows: sim.live_job_rows(),
                archived_jobs: sim.archived_jobs(),
            });
        }
    }
    (points, timings)
}

/// [`ext_scaling_at`] over the full [`SCALING_NODE_COUNTS`] sweep.
pub fn ext_scaling(seed: u64, fast: bool) -> (Vec<ScalingPoint>, Vec<ScalingTiming>) {
    ext_scaling_at(seed, &SCALING_NODE_COUNTS, fast)
}

// -------------------------------------------------- fault injection

/// The failure grid of the fault sweep: crash rate per node-hour paired
/// with an in-transit migration failure probability, from fault-free
/// (which must be byte-identical to a run without fault injection) to
/// aggressively unreliable.
pub const FAULT_RATES: [(f64, f64); 5] =
    [(0.0, 0.0), (0.2, 0.02), (1.0, 0.05), (4.0, 0.10), (12.0, 0.25)];

/// Mean reboot downtime used by the fault sweep, seconds.
pub const FAULT_MEAN_REBOOT_SECS: f64 = 300.0;

/// One deterministic cell of the fault-injection sweep. Every field is a
/// pure function of `(seed, fast)` — fault schedules are keyed by
/// `(fault config, seed, node/job id)`, never by thread count — so the
/// JSON byte-diffs across machines and `--jobs` settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPoint {
    /// Mean crashes per node per hour of uptime.
    pub crash_rate_per_hour: f64,
    /// Mean reboot downtime, seconds.
    pub mean_reboot_secs: f64,
    /// Per-transfer in-transit failure probability.
    pub migration_failure_prob: f64,
    /// Policy abbreviation (LL / LF / IE / PM).
    pub policy: String,
    /// Windows simulated (horizon / 2 s).
    pub windows: usize,
    /// Jobs completed inside the horizon.
    pub completed: usize,
    /// Foreign CPU delivered over the horizon, seconds.
    pub foreign_cpu_secs: f64,
    /// Cluster-wide foreground delay ratio.
    pub foreground_delay: f64,
    /// Node crash events applied.
    pub crashes: usize,
    /// Crashes that killed a hosted (or inbound) job.
    pub crash_evictions: usize,
    /// Transfers lost in transit.
    pub migration_failures: usize,
    /// Retry transfers started after a failure.
    pub migration_retries: usize,
    /// Migrations abandoned after exhausting the retry budget.
    pub migrations_abandoned: usize,
}

/// The fault-injection extension: all four policies across
/// [`FAULT_RATES`] in constant-load throughput mode. Shows how much of
/// the cycle-stealing throughput each policy keeps as the NOW degrades
/// from the paper's perfectly reliable cluster to one where nodes crash
/// several times an hour and a quarter of the transfers are lost.
///
/// Cells fan out via [`par_map_indexed`] and share one workload
/// realization; results are byte-identical at any thread count.
pub fn ext_faults(seed: u64, fast: bool) -> Vec<FaultPoint> {
    let nodes = if fast { 16 } else { 64 };
    let horizon = SimTime::from_secs(if fast { 600 } else { 3600 });
    let trace_cfg = CoarseTraceConfig {
        duration: SimDuration::from_secs(3600),
        ..Default::default()
    };
    // One realization (traces + offsets + window table) shared by every
    // cell of the grid.
    let real = TraceLibrary::global().realize(&trace_cfg, seed, nodes);
    let n_cells = FAULT_RATES.len() * Policy::ALL.len();
    par_map_indexed(n_cells, None, |idx| {
        let (crash_rate, mig_prob) = FAULT_RATES[idx / Policy::ALL.len()];
        let policy = Policy::ALL[idx % Policy::ALL.len()];
        let family =
            JobFamily::uniform((2 * nodes) as u32, SimDuration::from_secs(300), 8 * 1024);
        let mut cfg = linger_cluster::ClusterConfig::paper(policy, family);
        cfg.nodes = nodes;
        cfg.seed = seed;
        cfg.trace = trace_cfg.clone();
        cfg.mode = linger_cluster::RunMode::Throughput { horizon };
        cfg.faults = linger_cluster::FaultConfig {
            crash_rate_per_hour: crash_rate,
            mean_reboot_secs: FAULT_MEAN_REBOOT_SECS,
            migration_failure_prob: mig_prob,
        };
        let mut sim = linger_cluster::ClusterSim::with_realization(cfg, &real);
        sim.run();
        let windows = (sim.now().as_nanos() / linger_cluster::WINDOW.as_nanos()) as usize;
        let fs = sim.fault_stats();
        FaultPoint {
            crash_rate_per_hour: crash_rate,
            mean_reboot_secs: FAULT_MEAN_REBOOT_SECS,
            migration_failure_prob: mig_prob,
            policy: policy.abbrev().to_string(),
            windows,
            completed: sim.completed(),
            foreign_cpu_secs: sim.foreign_cpu_delivered().as_secs_f64(),
            foreground_delay: sim.foreground_delay_ratio(),
            crashes: fs.crashes,
            crash_evictions: fs.crash_evictions,
            migration_failures: fs.migration_failures,
            migration_retries: fs.migration_retries,
            migrations_abandoned: fs.migrations_abandoned,
        }
    })
}

// ----------------------------------------------- open-arrivals service

/// Offered loads of the service sweep (fraction of cluster capacity):
/// two undersaturated points, one mildly oversaturated, one deep in
/// overload where an unbounded queue would grow without limit.
pub const SERVICE_LOADS: [f64; 4] = [0.2, 0.6, 1.5, 4.0];

/// Mean foreign-job CPU demand in the service sweep, seconds.
pub const SERVICE_MEAN_CPU_SECS: f64 = 120.0;

/// One deterministic cell of the open-arrivals service sweep: an
/// admission policy held at an offered load for the full horizon. Every
/// field is a pure function of `(seed, fast)`; arrivals are drawn from
/// per-window keyed streams, so the JSON byte-diffs across machines and
/// `--jobs` settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServicePoint {
    /// Offered load as a fraction of cluster CPU capacity.
    pub offered_load: f64,
    /// Admission policy name (open / shed / block / deadline).
    pub admission: String,
    /// Windows simulated (horizon / 2 s).
    pub windows: usize,
    /// Arrivals the process offered.
    pub generated: u64,
    /// Arrivals admitted into the queue.
    pub admitted: u64,
    /// Arrivals dropped at a full queue.
    pub shed: u64,
    /// Arrival deferral events charged to backpressure.
    pub deferred: u64,
    /// Arrivals still blocked upstream at the horizon.
    pub deficit: u64,
    /// Largest upstream deficit ever reached.
    pub peak_deficit: u64,
    /// Queued jobs dropped for exceeding the deadline.
    pub deadline_dropped: u64,
    /// Windows in which admission hit the capacity limit.
    pub saturated_windows: u64,
    /// Largest admission-queue depth at a window boundary.
    pub peak_queue_depth: usize,
    /// Largest live job-slab row count (the flat-memory witness).
    pub peak_live_rows: usize,
    /// Effective queue capacity in entries (`u64::MAX` = unbounded).
    pub queue_capacity: usize,
    /// Jobs completed inside the horizon.
    pub completed: usize,
    /// Steady-state throughput, completions per 2 s window (batch
    /// means).
    pub throughput_per_window: f64,
    /// Half-width of the throughput confidence interval (0 until two
    /// batches exist).
    pub throughput_ci: f64,
    /// Steady-state completion latency, seconds (batch means).
    pub latency_secs: f64,
    /// Half-width of the latency confidence interval.
    pub latency_ci: f64,
    /// Cluster-wide foreground delay ratio.
    pub foreground_delay: f64,
}

/// The open-arrivals service extension: every admission policy across
/// [`SERVICE_LOADS`], Poisson arrivals onto a LingerLonger cluster.
/// Undersaturated cells must serve everything; oversaturated cells must
/// degrade gracefully — bounded queue depth, exact loss counters, flat
/// hot-state memory — instead of growing without limit.
///
/// Cells fan out via [`par_map_indexed`] and share one workload
/// realization; results are byte-identical at any thread count.
pub fn ext_service(seed: u64, fast: bool, ci_level: f64) -> Vec<ServicePoint> {
    use linger_cluster::{AdmissionPolicy, ServiceConfig};
    use linger_workload::{ArrivalConfig, ArrivalProcess};

    let nodes = if fast { 16 } else { 64 };
    let horizon = SimTime::from_secs(if fast { 2 * 3600 } else { 48 * 3600 });
    let trace_cfg = CoarseTraceConfig {
        duration: SimDuration::from_secs(3600),
        ..Default::default()
    };
    let real = TraceLibrary::global().realize(&trace_cfg, seed, nodes);
    // CI half-widths collapse to 0 until two batches exist so the JSON
    // stays plain numbers (the vendored serializer writes non-finite
    // floats as null).
    let ci = |bm: &linger_stats::BatchMeans| {
        let hw = bm.ci_half_width(ci_level).expect("--ci is validated at parse time");
        if hw.is_finite() { hw } else { 0.0 }
    };
    let n_cells = SERVICE_LOADS.len() * AdmissionPolicy::ALL.len();
    par_map_indexed(n_cells, None, |idx| {
        let load = SERVICE_LOADS[idx / AdmissionPolicy::ALL.len()];
        let admission = AdmissionPolicy::ALL[idx % AdmissionPolicy::ALL.len()];
        let mut cfg =
            linger_cluster::ClusterConfig::paper(Policy::LingerLonger, JobFamily::empty());
        cfg.nodes = nodes;
        cfg.seed = seed;
        cfg.trace = trace_cfg.clone();
        cfg.mode = linger_cluster::RunMode::Open { horizon };
        // `nodes` servers of 120 s jobs: load 1.0 = nodes * 30 per hour.
        cfg.service = ServiceConfig {
            arrivals: ArrivalConfig {
                process: ArrivalProcess::Poisson {
                    rate_per_hour: load * nodes as f64 * 3600.0 / SERVICE_MEAN_CPU_SECS,
                },
                mean_cpu_secs: SERVICE_MEAN_CPU_SECS,
                mem_kb: 8 * 1024,
            },
            admission,
            queue_capacity: 2 * nodes,
            deadline_secs: 300.0,
        };
        let mut sim = linger_cluster::ClusterSim::with_realization(cfg, &real);
        sim.run();
        let windows = (sim.now().as_nanos() / linger_cluster::WINDOW.as_nanos()) as usize;
        let s = sim.service_stats();
        assert!(s.accounting_holds(), "loss accounting must balance in every cell");
        ServicePoint {
            offered_load: load,
            admission: admission.name().to_string(),
            windows,
            generated: s.generated,
            admitted: s.admitted,
            shed: s.shed,
            deferred: s.deferred,
            deficit: s.deficit,
            peak_deficit: s.peak_deficit,
            deadline_dropped: s.deadline_dropped,
            saturated_windows: s.saturated_windows,
            peak_queue_depth: s.peak_queue_depth,
            peak_live_rows: s.peak_live_rows,
            queue_capacity: s.queue_capacity,
            completed: sim.completed(),
            throughput_per_window: s.throughput.mean(),
            throughput_ci: ci(&s.throughput),
            latency_secs: s.latency.mean(),
            latency_ci: ci(&s.latency),
            foreground_delay: sim.foreground_delay_ratio(),
        }
    })
}

// -------------------------------------------------------- ablations

/// One row of a scalar-parameter ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// The swept parameter's value (units depend on the ablation).
    pub value: f64,
    /// LL average completion time, s.
    pub ll_avg_secs: f64,
    /// LL throughput, cpu-s/s.
    pub ll_throughput: f64,
    /// LL foreground delay ratio.
    pub ll_delay: f64,
    /// IE average completion time, s (contrast).
    pub ie_avg_secs: f64,
}

fn cluster_point(
    policy: Policy,
    nodes: usize,
    seed: u64,
    mutate: &dyn Fn(&mut linger_cluster::ClusterConfig),
) -> PolicyMetrics {
    let family = JobFamily::uniform(
        (2 * nodes) as u32,
        SimDuration::from_secs(300),
        8 * 1024,
    );
    let mut cfg = linger_cluster::ClusterConfig::paper(policy, family);
    cfg.nodes = nodes;
    cfg.seed = seed;
    mutate(&mut cfg);
    let mut fam = linger_cluster::ClusterSim::new(cfg.clone());
    fam.run();
    let mut completion = linger_stats::Online::new();
    for j in fam.jobs() {
        if let Some(c) = j.completion_time() {
            completion.add(c.as_secs_f64());
        }
    }
    let mut tp = linger_cluster::ClusterSim::new(cfg.with_throughput_mode());
    tp.run();
    PolicyMetrics {
        policy,
        avg_completion_secs: completion.mean(),
        variation: completion.cv(),
        family_time_secs: 0.0,
        throughput: tp.foreign_cpu_delivered().as_secs_f64() / tp.now().as_secs_f64().max(1.0),
        foreground_delay: fam.foreground_delay_ratio(),
        avg_breakdown: linger_cluster::BreakdownSecs::default(),
        avg_migrations: 0.0,
        finished: true,
    }
}

/// Ablation: effective context-switch cost (the Fig 5 knob pushed through
/// the whole cluster pipeline). Values in microseconds.
pub fn ablation_context_switch(seed: u64, nodes: usize) -> Vec<AblationRow> {
    [50u64, 100, 300, 500, 1000]
        .into_iter()
        .map(|us| {
            let mutate = move |cfg: &mut linger_cluster::ClusterConfig| {
                cfg.params.context_switch = SimDuration::from_micros(us);
            };
            let ll = cluster_point(Policy::LingerLonger, nodes, seed, &mutate);
            let ie = cluster_point(Policy::ImmediateEviction, nodes, seed, &mutate);
            AblationRow {
                value: us as f64,
                ll_avg_secs: ll.avg_completion_secs,
                ll_throughput: ll.throughput,
                ll_delay: ll.foreground_delay,
                ie_avg_secs: ie.avg_completion_secs,
            }
        })
        .collect()
}

/// Ablation: migration bandwidth (Mbps). The paper throttles to 3 Mbps;
/// faster networks shorten linger durations and cheapen IE.
pub fn ablation_migration_bandwidth(seed: u64, nodes: usize) -> Vec<AblationRow> {
    [1.0f64, 3.0, 10.0, 100.0]
        .into_iter()
        .map(|mbps| {
            let mutate = move |cfg: &mut linger_cluster::ClusterConfig| {
                cfg.params.migration.bandwidth_bps = mbps * 1e6;
            };
            let ll = cluster_point(Policy::LingerLonger, nodes, seed, &mutate);
            let ie = cluster_point(Policy::ImmediateEviction, nodes, seed, &mutate);
            AblationRow {
                value: mbps,
                ll_avg_secs: ll.avg_completion_secs,
                ll_throughput: ll.throughput,
                ll_delay: ll.foreground_delay,
                ie_avg_secs: ie.avg_completion_secs,
            }
        })
        .collect()
}

/// Ablation: the Pause-and-Migrate grace period (seconds). Shows why the
/// paper's near-identical IE/PM rows pin it low.
pub fn ablation_pause_timeout(seed: u64, nodes: usize) -> Vec<AblationRow> {
    [2u64, 10, 30, 60, 120]
        .into_iter()
        .map(|secs| {
            let mutate = move |cfg: &mut linger_cluster::ClusterConfig| {
                cfg.params.pause_timeout = SimDuration::from_secs(secs);
            };
            let pm = cluster_point(Policy::PauseAndMigrate, nodes, seed, &mutate);
            let ie = cluster_point(Policy::ImmediateEviction, nodes, seed, &mutate);
            AblationRow {
                value: secs as f64,
                ll_avg_secs: pm.avg_completion_secs, // PM under sweep
                ll_throughput: pm.throughput,
                ll_delay: pm.foreground_delay,
                ie_avg_secs: ie.avg_completion_secs,
            }
        })
        .collect()
}

/// One row of the memory-pressure ablation: foreign working set versus
/// page-level execution efficiency.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemoryPressureRow {
    /// Foreign working-set size, MB.
    pub foreign_mb: u32,
    /// Frames left for the foreign pool after local residency, MB.
    pub available_mb: u32,
    /// Fraction of the working set resident.
    pub residency: f64,
    /// CPU efficiency under the fault costs (work / (work + stalls)).
    pub efficiency: f64,
}

/// Ablation: sweep the foreign job's working set against a fixed local
/// footprint and measure page-level efficiency — the ground truth behind
/// the cluster simulator's residency-proportional slowdown and the
/// Sec 3.2 claim that ~10–14 MB free suffices for "one compute-bound
/// foreign job of moderate size".
pub fn ablation_memory_pressure(seed: u64) -> Vec<MemoryPressureRow> {
    use linger_workload::{PagingConfig, PagingSim};
    let frames_total = 16_384usize; // 64 MB
    let local_pages = 11_500usize; // ~45 MB local+OS: ~19 MB free
    [2u32, 4, 8, 16, 19, 24, 32]
        .into_iter()
        .map(|foreign_mb| {
            let foreign_pages = (foreign_mb as usize) * 256;
            let mut sim = PagingSim::new(PagingConfig {
                frames: frames_total,
                local_pages,
                foreign_pages,
                seed,
                ..Default::default()
            });
            for vp in 0..local_pages {
                sim.local_ref(vp);
            }
            let efficiency = sim.foreign_efficiency(60_000);
            let (_, resident, _) = sim.residency();
            let available = frames_total - local_pages;
            MemoryPressureRow {
                foreign_mb,
                available_mb: (available / 256) as u32,
                residency: resident as f64 / foreign_pages as f64,
                efficiency,
            }
        })
        .collect()
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn memory_pressure_cliff_sits_at_the_free_pool() {
        let rows = ablation_memory_pressure(3);
        // Fully resident jobs run at full speed…
        for r in rows.iter().filter(|r| r.foreign_mb <= r.available_mb) {
            assert!(r.residency > 0.99, "{} MB: residency {}", r.foreign_mb, r.residency);
            assert!(r.efficiency > 0.99, "{} MB: efficiency {}", r.foreign_mb, r.efficiency);
        }
        // …and thrash once the working set overflows it.
        let over: Vec<_> = rows.iter().filter(|r| r.foreign_mb > r.available_mb + 1).collect();
        assert!(!over.is_empty());
        for r in over {
            assert!(r.efficiency < 0.2, "{} MB: efficiency {}", r.foreign_mb, r.efficiency);
        }
    }

    #[test]
    fn ablation_rows_cover_their_sweeps() {
        let cs = ablation_context_switch(5, 8);
        assert_eq!(cs.len(), 5);
        assert!(cs.windows(2).all(|w| w[0].value < w[1].value));
        // Foreground delay grows with switch cost.
        assert!(cs.last().unwrap().ll_delay > cs.first().unwrap().ll_delay);

        let bw = ablation_migration_bandwidth(5, 8);
        assert_eq!(bw.len(), 4);
        // IE benefits from faster migration.
        assert!(bw.last().unwrap().ie_avg_secs <= bw.first().unwrap().ie_avg_secs + 1.0);
    }
}
