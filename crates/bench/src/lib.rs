//! # linger-bench
//!
//! The experiment harness: every table and figure of the paper's
//! evaluation has a binary (`fig02` … `fig13`) that regenerates the rows
//! or series the paper reports, plus `run_all`, which executes the whole
//! suite and writes machine-readable results under `results/`.
//!
//! Shared experiment drivers live here so the binaries stay thin and the
//! integration tests can exercise the exact code paths the figures use.

#![warn(missing_docs)]

pub mod chart;
pub mod experiments;
pub mod output;
pub mod runner;

pub use chart::AsciiChart;
pub use experiments::*;
pub use output::{write_json, ArgError, Table};
pub use runner::{
    peak_rss_kb, CellError, FailedCell, FailedSection, RunTimings, Runner, ScalingBaseline,
    SectionBaseline, SectionTiming, TelemetryOverhead,
};
