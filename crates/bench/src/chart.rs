//! Terminal line charts for the figure binaries.
//!
//! Not a plotting library — just enough to render the *shape* of each
//! figure (multiple series over a shared x-axis) next to the exact
//! numbers in the tables, the way the paper's figures accompany its
//! prose.

/// A multi-series scatter/line chart rendered with Unicode-free ASCII.
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<(char, Vec<(f64, f64)>)>,
    y_label: String,
    x_label: String,
}

impl AsciiChart {
    /// A chart `width`×`height` characters (plot area, excluding axes).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 4, "chart too small to read");
        AsciiChart {
            width,
            height,
            series: Vec::new(),
            y_label: String::new(),
            x_label: String::new(),
        }
    }

    /// Axis labels.
    pub fn labels<S: Into<String>>(mut self, x: S, y: S) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Add a series plotted with marker `marker`.
    pub fn series(mut self, marker: char, points: Vec<(f64, f64)>) -> Self {
        self.series.push((marker, points));
        self
    }

    /// Render to a string (empty if no finite points were supplied).
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return String::new();
        }
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &pts {
            x_lo = x_lo.min(*x);
            x_hi = x_hi.max(*x);
            y_lo = y_lo.min(*y);
            y_hi = y_hi.max(*y);
        }
        // Include zero on the y axis when it is nearby (figure style).
        if y_lo > 0.0 && y_lo < 0.5 * y_hi {
            y_lo = 0.0;
        }
        if (x_hi - x_lo).abs() < 1e-12 {
            x_hi = x_lo + 1.0;
        }
        if (y_hi - y_lo).abs() < 1e-12 {
            y_hi = y_lo + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (marker, points) in &self.series {
            for (x, y) in points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = ((x - x_lo) / (x_hi - x_lo) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y_lo) / (y_hi - y_lo) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                let cell = &mut grid[row][cx.min(self.width - 1)];
                // Later series win collisions; mark overlaps with '*'.
                *cell = if *cell == ' ' || *cell == *marker { *marker } else { '*' };
            }
        }

        let mut out = String::new();
        if !self.y_label.is_empty() {
            out.push_str(&format!("{}\n", self.y_label));
        }
        for (i, row) in grid.iter().enumerate() {
            let y_tick = if i == 0 {
                format!("{y_hi:>8.2}")
            } else if i == self.height - 1 {
                format!("{y_lo:>8.2}")
            } else {
                " ".repeat(8)
            };
            out.push_str(&y_tick);
            out.push_str(" |");
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(9));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        let left = format!("{x_lo:.0} ");
        let right = format!("{x_hi:.0}  ({})", self.x_label);
        out.push_str(&format!(
            "{left:>9}{:<width$}{right}\n",
            "",
            width = self.width.saturating_sub(12)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_bounds() {
        let c = AsciiChart::new(40, 10)
            .labels("x", "y")
            .series('o', vec![(0.0, 0.0), (10.0, 5.0), (20.0, 10.0)]);
        let s = c.render();
        assert!(s.contains('o'));
        // All lines bounded by the frame width.
        for line in s.lines() {
            assert!(line.len() <= 40 + 12, "line too long: {line}");
        }
        assert!(s.contains("10.00"), "y max tick missing:\n{s}");
    }

    #[test]
    fn empty_series_renders_nothing() {
        let c = AsciiChart::new(20, 5).series('x', vec![]);
        assert_eq!(c.render(), "");
    }

    #[test]
    fn collisions_are_starred() {
        let c = AsciiChart::new(20, 5)
            .series('a', vec![(0.0, 0.0), (1.0, 1.0)])
            .series('b', vec![(0.0, 0.0)]);
        let s = c.render();
        assert!(s.contains('*'), "overlap should star:\n{s}");
        assert!(s.contains('a'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let c = AsciiChart::new(20, 5).series('c', vec![(1.0, 3.0), (2.0, 3.0)]);
        let s = c.render();
        assert!(s.contains('c'));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let c = AsciiChart::new(20, 5)
            .series('p', vec![(f64::NAN, 1.0), (1.0, f64::INFINITY), (1.0, 1.0)]);
        let s = c.render();
        assert!(s.contains('p'));
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_charts() {
        let _ = AsciiChart::new(4, 2);
    }
}
