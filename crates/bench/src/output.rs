//! Result emission: aligned text tables on stdout and JSON files under
//! `results/`.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(s, "{c:>w$}  ");
            }
            s.trim_end().to_string()
        };
        let header = line(&self.headers);
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Render to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory the harness writes results into: `$LINGER_RESULTS` or
/// `results/` relative to the working directory.
pub fn results_dir() -> PathBuf {
    std::env::var_os("LINGER_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Serialize `value` as pretty JSON into `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let file = std::fs::File::create(&path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(path)
}

/// Parse harness CLI flags shared by every figure binary.
///
/// Supported: `--seed <n>` (default 1998), `--fast` (scaled-down run for
/// smoke testing), `--reps <n>` (replications with confidence intervals,
/// where the binary supports it), and `--jobs <n>` (worker threads for
/// the deterministic parallel runner; 0 = one per core; output is
/// byte-identical at any value).
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Master seed.
    pub seed: u64,
    /// Scale runs down for fast smoke tests.
    pub fast: bool,
    /// Replication count for binaries that support error bars.
    pub reps: u32,
    /// Worker threads (0 = one per core).
    pub jobs: usize,
}

impl HarnessArgs {
    /// Parse from `std::env::args` and apply `--jobs` process-wide.
    pub fn parse() -> Self {
        let mut seed = 1998u64;
        let mut fast = false;
        let mut reps = 1u32;
        let mut jobs = 0usize;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed requires an integer");
                }
                "--reps" => {
                    reps = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--reps requires an integer");
                }
                "--jobs" => {
                    jobs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--jobs requires an integer (0 = auto)");
                }
                "--fast" => fast = true,
                other => {
                    panic!(
                        "unknown argument '{other}' \
                         (expected --seed <n> | --reps <n> | --jobs <n> | --fast)"
                    )
                }
            }
        }
        linger_sim_core::set_default_jobs(jobs);
        HarnessArgs { seed, fast, reps, jobs }
    }
}

/// Write `path`'s file name and a short banner for a figure binary.
pub fn banner(fig: &str, caption: &str) {
    println!("== {fig} — {caption} ==");
}

/// Report where a JSON artifact went (best effort — failures to persist
/// results must not fail the experiment).
pub fn note_artifact(name: &str, res: std::io::Result<std::path::PathBuf>) {
    match res {
        Ok(p) => println!("[wrote {}]", display_rel(&p)),
        Err(e) => eprintln!("[warn: could not write {name}.json: {e}]"),
    }
}

fn display_rel(p: &Path) -> String {
    p.display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["policy", "value"]);
        t.row(vec!["LL", "1"]).row(vec!["IE", "1234"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("policy"));
        assert!(lines[3].ends_with("1234"));
    }

    #[test]
    #[should_panic]
    fn table_rejects_bad_arity() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn write_json_roundtrip() {
        let dir = std::env::temp_dir().join("linger-bench-test");
        std::env::set_var("LINGER_RESULTS", &dir);
        let path = write_json("unit_test", &vec![1, 2, 3]).unwrap();
        let data: Vec<u32> =
            serde_json::from_reader(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(data, vec![1, 2, 3]);
        std::env::remove_var("LINGER_RESULTS");
        std::fs::remove_dir_all(&dir).ok();
    }
}
