//! Result emission: aligned text tables on stdout and JSON files under
//! `results/`.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(s, "{c:>w$}  ");
            }
            s.trim_end().to_string()
        };
        let header = line(&self.headers);
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Render to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory the harness writes results into: `$LINGER_RESULTS` or
/// `results/` relative to the working directory.
pub fn results_dir() -> PathBuf {
    std::env::var_os("LINGER_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Serialize `value` as pretty JSON into `results/<name>.json`.
///
/// The write is atomic: bytes land in a same-directory temp file that is
/// renamed over the target, so readers (and interrupted runs) never see
/// a truncated result file.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    linger_sim_core::write_atomic(&path, json.as_bytes())?;
    Ok(path)
}

/// Parse harness CLI flags shared by every figure binary.
///
/// Supported: `--seed <n>` (default 1998), `--fast` (scaled-down run for
/// smoke testing), `--reps <n>` (replications with confidence intervals,
/// where the binary supports it), `--jobs <n>` (worker threads for the
/// deterministic parallel runner; 0 = one per core; output is
/// byte-identical at any value), `--max-nodes <n>` (truncate a
/// node-count sweep, where the binary supports it), and `--ci <level>`
/// (confidence level for interval half-widths; must be one of the
/// supported z-table levels).
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Master seed.
    pub seed: u64,
    /// Scale runs down for fast smoke tests.
    pub fast: bool,
    /// Replication count for binaries that support error bars.
    pub reps: u32,
    /// Worker threads (0 = one per core).
    pub jobs: usize,
    /// Upper bound on a node-count sweep (`None` = run every count).
    pub max_nodes: Option<usize>,
    /// Confidence level for interval half-widths (default 0.95;
    /// validated against the supported z-table at parse time).
    pub ci_level: f64,
}

/// Why the harness CLI arguments failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A flag that takes a value reached the end of the argument list.
    MissingValue(&'static str),
    /// A flag's value did not parse as the expected type.
    InvalidValue {
        /// The flag whose value was rejected.
        flag: &'static str,
        /// The offending value as given.
        value: String,
    },
    /// An argument no figure binary understands.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "{flag} requires a value"),
            ArgError::InvalidValue { flag, value } => {
                write!(f, "{flag} rejected value '{value}'")
            }
            ArgError::Unknown(arg) => write!(f, "unknown argument '{arg}'"),
        }
    }
}

impl std::error::Error for ArgError {}

/// One-line usage string shared by every figure binary.
pub const USAGE: &str =
    "usage: [--seed <n>] [--reps <n>] [--jobs <n>] [--max-nodes <n>] [--ci <level>] [--fast]\n\
     --seed <n>       master seed (default 1998)\n\
     --reps <n>       replications where supported (default 1)\n\
     --jobs <n>       worker threads, 0 = one per core (default 0)\n\
     --max-nodes <n>  truncate a node-count sweep where supported\n\
     --ci <level>     confidence level: 0.90, 0.95, or 0.99 (default 0.95)\n\
     --fast           scaled-down smoke run";

impl HarnessArgs {
    /// Parse from `std::env::args` and apply `--jobs` process-wide. On a
    /// bad command line, print the error and usage to stderr and exit
    /// with a non-zero status instead of panicking.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(args) => {
                linger_sim_core::set_default_jobs(args.jobs);
                args
            }
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parse an explicit argument list (no process-wide side effects).
    pub fn try_parse<I>(args: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = String>,
    {
        fn value<I: Iterator<Item = String>>(
            args: &mut I,
            flag: &'static str,
        ) -> Result<String, ArgError> {
            args.next().ok_or(ArgError::MissingValue(flag))
        }
        fn int<T: std::str::FromStr>(flag: &'static str, v: String) -> Result<T, ArgError> {
            v.parse().map_err(|_| ArgError::InvalidValue { flag, value: v })
        }
        let mut parsed = HarnessArgs {
            seed: 1998,
            fast: false,
            reps: 1,
            jobs: 0,
            max_nodes: None,
            ci_level: 0.95,
        };
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--seed" => parsed.seed = int("--seed", value(&mut args, "--seed")?)?,
                "--reps" => parsed.reps = int("--reps", value(&mut args, "--reps")?)?,
                "--jobs" => parsed.jobs = int("--jobs", value(&mut args, "--jobs")?)?,
                "--max-nodes" => {
                    parsed.max_nodes =
                        Some(int("--max-nodes", value(&mut args, "--max-nodes")?)?)
                }
                "--ci" => {
                    let v = value(&mut args, "--ci")?;
                    // The typed error from the stats layer is the single
                    // source of truth for which levels have a z-score.
                    let level: f64 = v
                        .parse()
                        .ok()
                        .filter(|&l| linger_stats::z_score(l).is_ok())
                        .ok_or(ArgError::InvalidValue { flag: "--ci", value: v })?;
                    parsed.ci_level = level;
                }
                "--fast" => parsed.fast = true,
                other => return Err(ArgError::Unknown(other.to_string())),
            }
        }
        Ok(parsed)
    }
}

/// Write `path`'s file name and a short banner for a figure binary.
pub fn banner(fig: &str, caption: &str) {
    println!("== {fig} — {caption} ==");
}

/// Report where a JSON artifact went (best effort — failures to persist
/// results must not fail the experiment).
pub fn note_artifact(name: &str, res: std::io::Result<std::path::PathBuf>) {
    match res {
        Ok(p) => println!("[wrote {}]", display_rel(&p)),
        Err(e) => eprintln!("[warn: could not write {name}.json: {e}]"),
    }
}

fn display_rel(p: &Path) -> String {
    p.display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["policy", "value"]);
        t.row(vec!["LL", "1"]).row(vec!["IE", "1234"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("policy"));
        assert!(lines[3].ends_with("1234"));
    }

    #[test]
    #[should_panic]
    fn table_rejects_bad_arity() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    /// Serializes the tests that point `LINGER_RESULTS` at a temp dir.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn try_parse_accepts_all_flags() {
        let a = HarnessArgs::try_parse(sv(&[
            "--seed",
            "7",
            "--fast",
            "--reps",
            "3",
            "--jobs",
            "4",
            "--max-nodes",
            "16384",
        ]))
        .unwrap();
        assert_eq!(a.seed, 7);
        assert!(a.fast);
        assert_eq!(a.reps, 3);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.max_nodes, Some(16384));
    }

    #[test]
    fn try_parse_defaults() {
        let a = HarnessArgs::try_parse(sv(&[])).unwrap();
        assert_eq!((a.seed, a.fast, a.reps, a.jobs), (1998, false, 1, 0));
        assert_eq!(a.max_nodes, None);
    }

    #[test]
    fn try_parse_rejects_bad_max_nodes() {
        assert_eq!(
            HarnessArgs::try_parse(sv(&["--max-nodes"])).unwrap_err(),
            ArgError::MissingValue("--max-nodes")
        );
        assert_eq!(
            HarnessArgs::try_parse(sv(&["--max-nodes", "lots"])).unwrap_err(),
            ArgError::InvalidValue { flag: "--max-nodes", value: "lots".into() }
        );
    }

    #[test]
    fn try_parse_accepts_supported_ci_levels() {
        for (arg, z_ok) in [("0.90", true), ("0.95", true), ("0.99", true)] {
            let a = HarnessArgs::try_parse(sv(&["--ci", arg])).unwrap();
            assert_eq!(a.ci_level, arg.parse::<f64>().unwrap());
            assert_eq!(linger_stats::z_score(a.ci_level).is_ok(), z_ok);
        }
        let a = HarnessArgs::try_parse(sv(&[])).unwrap();
        assert_eq!(a.ci_level, 0.95, "default confidence level");
    }

    #[test]
    fn try_parse_rejects_unsupported_ci_levels() {
        for bad in ["0.80", "1.5", "ninety"] {
            assert_eq!(
                HarnessArgs::try_parse(sv(&["--ci", bad])).unwrap_err(),
                ArgError::InvalidValue { flag: "--ci", value: bad.into() },
                "--ci {bad} must be rejected at parse time"
            );
        }
        assert_eq!(
            HarnessArgs::try_parse(sv(&["--ci"])).unwrap_err(),
            ArgError::MissingValue("--ci")
        );
    }

    #[test]
    fn try_parse_rejects_missing_and_bad_values() {
        assert_eq!(
            HarnessArgs::try_parse(sv(&["--seed"])).unwrap_err(),
            ArgError::MissingValue("--seed")
        );
        assert_eq!(
            HarnessArgs::try_parse(sv(&["--jobs", "many"])).unwrap_err(),
            ArgError::InvalidValue { flag: "--jobs", value: "many".into() }
        );
        assert_eq!(
            HarnessArgs::try_parse(sv(&["--frobnicate"])).unwrap_err(),
            ArgError::Unknown("--frobnicate".into())
        );
    }

    #[test]
    fn arg_errors_display_usefully() {
        assert_eq!(ArgError::MissingValue("--seed").to_string(), "--seed requires a value");
        assert!(ArgError::Unknown("-x".into()).to_string().contains("'-x'"));
        assert!(USAGE.contains("--jobs"));
    }

    #[test]
    fn write_json_leaves_no_temp_files() {
        let _env = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join("linger-bench-atomic-test");
        std::env::set_var("LINGER_RESULTS", &dir);
        write_json("atomic_unit", &42u32).unwrap();
        std::env::remove_var("LINGER_RESULTS");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["atomic_unit.json".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_json_roundtrip() {
        let _env = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join("linger-bench-test");
        std::env::set_var("LINGER_RESULTS", &dir);
        let path = write_json("unit_test", &vec![1, 2, 3]).unwrap();
        let data: Vec<u32> =
            serde_json::from_reader(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(data, vec![1, 2, 3]);
        std::env::remove_var("LINGER_RESULTS");
        std::fs::remove_dir_all(&dir).ok();
    }
}
