//! Deterministic parallel experiment runner.
//!
//! Experiments in this workspace decompose into *units* — replications,
//! policy variants, sweep points — that share no state and draw all their
//! randomness from seeds derived at construction time. The runner fans
//! those units across scoped worker threads while guaranteeing that the
//! output is **byte-identical to a serial run at any thread count**:
//!
//! * seeds are a pure function of the unit's logical index (never of the
//!   thread that happens to execute it);
//! * results land in index-ordered slots, so downstream aggregation and
//!   JSON emission see them in the same order a `for` loop would produce.
//!
//! The heavy lifting lives in [`linger_sim_core::par_map_indexed`]; this
//! module adds the harness-level vocabulary (replication seeding, timed
//! sections for `BENCH_runall.json`).

use linger_sim_core::{
    par_map_indexed, replication_seed, try_par_map_indexed, write_atomic, CellPanic,
};
use linger_workload::TraceCacheStats;
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A deterministic fan-out executor for independent experiment units.
///
/// `Runner::default()` inherits the process-wide job count (set by
/// `--jobs` via [`linger_sim_core::set_default_jobs`]); [`Runner::with_jobs`]
/// pins an explicit worker count for this runner only.
#[derive(Debug, Clone, Copy, Default)]
pub struct Runner {
    jobs: Option<usize>,
}

impl Runner {
    /// A runner using the process-wide default job count.
    pub fn new() -> Self {
        Runner::default()
    }

    /// A runner pinned to exactly `jobs` worker threads (1 = serial).
    pub fn with_jobs(jobs: usize) -> Self {
        Runner { jobs: Some(jobs.max(1)) }
    }

    /// Run `n` independent units, returning results in index order.
    ///
    /// `f` must derive everything (seeds included) from its index
    /// argument; the runner makes no other determinism guarantee.
    pub fn run<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        par_map_indexed(n, self.jobs, f)
    }

    /// Run `reps` replications whose seeds follow
    /// [`replication_seed`]`(base_seed, index)` — the exact sequence a
    /// serial `for r in 0..reps` loop would use (wrapping at `u64::MAX`;
    /// see the seed-space contract in `sim-core::rng`), so
    /// common-random-number pairing across policies survives fan-out.
    pub fn replicate<U, F>(&self, base_seed: u64, reps: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(u64) -> U + Sync,
    {
        self.run(reps, |r| f(replication_seed(base_seed, r as u64)))
    }

    /// Like [`Runner::run`], but a unit that panics yields a structured
    /// [`CellError`] in its slot instead of tearing down the sweep; the
    /// remaining units complete normally. `base_seed` annotates each
    /// error with the seed the failing unit would have derived via
    /// [`replication_seed`], so the cell can be re-run in isolation.
    pub fn try_run<U, F>(&self, n: usize, base_seed: u64, f: F) -> Vec<Result<U, CellError>>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        try_par_map_indexed(n, self.jobs, f)
            .into_iter()
            .map(|r| r.map_err(|p| CellError::from_panic(p, base_seed)))
            .collect()
    }

    /// Panic-isolating [`Runner::replicate`]: failed replications come
    /// back as [`CellError`]s (carrying their replication seed), the
    /// rest complete.
    pub fn try_replicate<U, F>(
        &self,
        base_seed: u64,
        reps: usize,
        f: F,
    ) -> Vec<Result<U, CellError>>
    where
        U: Send,
        F: Fn(u64) -> U + Sync,
    {
        self.try_run(reps, base_seed, |r| f(replication_seed(base_seed, r as u64)))
    }
}

/// One failed unit of a fan-out: which cell, the seed it ran under, and
/// the panic payload — enough to re-run the cell in isolation while the
/// rest of the sweep's results stand.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CellError {
    /// Index of the failed unit within its sweep.
    pub index: usize,
    /// Seed the unit derived (via [`replication_seed`] from the sweep's
    /// base seed).
    pub seed: u64,
    /// Stringified panic payload.
    pub payload: String,
}

impl CellError {
    fn from_panic(p: CellPanic, base_seed: u64) -> Self {
        CellError {
            index: p.index,
            seed: replication_seed(base_seed, p.index as u64),
            payload: p.payload,
        }
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} (seed {}) panicked: {}", self.index, self.seed, self.payload)
    }
}

impl std::error::Error for CellError {}

/// Peak resident set size of this process in KiB, read from
/// `/proc/self/status` (`VmHWM`). `None` on platforms without procfs or
/// when the field is missing — callers treat that as "unknown", never as
/// zero. The high-water mark is process-wide and monotonic, so it bounds
/// every phase that ran before the call.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Wall-clock timing of one named section (one figure in `run_all`).
#[derive(Debug, Clone, Serialize)]
pub struct SectionTiming {
    /// Section name (e.g. `"fig05"`).
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub secs: f64,
}

/// Per-figure wall-clock ledger behind `BENCH_runall.json`.
#[derive(Debug, Clone, Serialize, Default)]
pub struct RunTimings {
    /// Worker threads in use (0 = auto-detected).
    pub jobs: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Whether the run used `--fast` scaling.
    pub fast: bool,
    /// Per-section wall-clock, in execution order.
    pub sections: Vec<SectionTiming>,
    /// Per-cell wall-clock of the scaling sweep (`ext_scaling`),
    /// including nanoseconds per node-window; empty when the sweep did
    /// not run.
    pub scaling: Vec<crate::experiments::ScalingTiming>,
    /// End-of-run snapshot of the shared workload-realization cache
    /// (hits, misses, bytes resident); `None` until recorded.
    pub trace_cache: Option<TraceCacheStats>,
    /// End-of-run snapshot of the process-wide telemetry registry
    /// (events, drops, per-policy decision counts); `None` when
    /// telemetry was disabled for the run.
    pub telemetry: Option<linger_telemetry::TelemetrySummary>,
    /// A/B micro-measurement of the telemetry disabled-vs-journaling
    /// window-loop cost (machine-dependent; informational).
    pub telemetry_overhead: Option<TelemetryOverhead>,
    /// Recorded before→after wall-clock comparisons for sections whose
    /// speedup a PR claims (machine-dependent; informational).
    pub baselines: Vec<SectionBaseline>,
    /// Recorded before→after window-loop costs (ns per node-window) for
    /// the scaling sweep's cells, per policy and node count
    /// (machine-dependent; informational).
    pub scaling_baselines: Vec<ScalingBaseline>,
    /// Sections that panicked under [`RunTimings::time_caught`]; the run
    /// continued past them.
    pub failed_sections: Vec<FailedSection>,
    /// Individual sweep cells that panicked (recorded via
    /// [`RunTimings::record_cell_errors`]) while their sweep completed.
    pub failed_cells: Vec<FailedCell>,
    /// Peak resident set size of the whole run, KiB ([`peak_rss_kb`];
    /// `None` where procfs is unavailable).
    pub peak_rss_kb: Option<u64>,
    /// Total wall-clock seconds.
    pub total_secs: f64,
}

/// A section that panicked instead of completing.
#[derive(Debug, Clone, Serialize)]
pub struct FailedSection {
    /// Section name (matches [`SectionTiming::name`]).
    pub name: String,
    /// Stringified panic payload.
    pub error: String,
}

/// A [`CellError`] annotated with the section whose sweep it belongs to.
#[derive(Debug, Clone, Serialize)]
pub struct FailedCell {
    /// Section name.
    pub section: String,
    /// Index of the failed unit within the sweep.
    pub index: usize,
    /// Seed the unit ran under.
    pub seed: u64,
    /// Stringified panic payload.
    pub payload: String,
}

/// Wall-clock of the same cluster cell with telemetry disabled versus
/// journaling into a ring — the number behind the "compile-time-cheap
/// when disabled" contract (machine-dependent; informational).
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryOverhead {
    /// Seconds with a disabled recorder (`Recorder::disabled()`).
    pub disabled_secs: f64,
    /// Seconds journaling into a default-capacity ring.
    pub journaling_secs: f64,
    /// `journaling_secs / disabled_secs` (1.0 = free).
    pub ratio: f64,
}

/// A section's wall-clock against a recorded pre-change baseline.
#[derive(Debug, Clone, Serialize)]
pub struct SectionBaseline {
    /// Section name (matches [`SectionTiming::name`]).
    pub name: String,
    /// Pre-change wall-clock seconds (recorded on the reference machine).
    pub before_secs: f64,
    /// This run's wall-clock seconds.
    pub after_secs: f64,
    /// `before_secs / after_secs` (> 1 is an improvement).
    pub speedup: f64,
}

impl SectionBaseline {
    /// Compare section `name`'s measured time in `sections` against a
    /// recorded baseline. Returns `None` when the section did not run.
    pub fn compare(name: &str, sections: &[SectionTiming], before_secs: f64) -> Option<Self> {
        let after_secs = sections.iter().find(|s| s.name == name)?.secs;
        Some(SectionBaseline {
            name: name.to_string(),
            before_secs,
            after_secs,
            speedup: if after_secs > 0.0 { before_secs / after_secs } else { 0.0 },
        })
    }
}

/// One scaling-sweep cell's window-loop cost against a pre-change
/// measurement on the reference machine — the [`SectionBaseline`] idea
/// at (nodes, policy) granularity (machine-dependent; informational).
#[derive(Debug, Clone, Serialize)]
pub struct ScalingBaseline {
    /// Cluster size of the cell.
    pub nodes: usize,
    /// Policy abbreviation (LL / LF / IE / PM).
    pub policy: String,
    /// Pre-change window-loop nanoseconds per node-window.
    pub before_ns: f64,
    /// This run's window-loop nanoseconds per node-window.
    pub after_ns: f64,
    /// `before_ns / after_ns` (> 1 is an improvement).
    pub speedup: f64,
}

impl ScalingBaseline {
    /// Match each recorded `(nodes, policy, before_ns)` triple against
    /// the sweep's measured timings; triples whose cell did not run are
    /// skipped.
    pub fn compare(
        timings: &[crate::experiments::ScalingTiming],
        before: &[(usize, &str, f64)],
    ) -> Vec<Self> {
        before
            .iter()
            .filter_map(|&(nodes, policy, before_ns)| {
                let t = timings.iter().find(|t| t.nodes == nodes && t.policy == policy)?;
                let after_ns = t.ns_per_node_window;
                Some(ScalingBaseline {
                    nodes,
                    policy: policy.to_string(),
                    before_ns,
                    after_ns,
                    speedup: if after_ns > 0.0 { before_ns / after_ns } else { 0.0 },
                })
            })
            .collect()
    }
}

impl RunTimings {
    /// An empty ledger annotated with the run's configuration.
    pub fn new(jobs: usize, seed: u64, fast: bool) -> Self {
        RunTimings { jobs, seed, fast, ..Default::default() }
    }

    /// Run `f`, record its wall-clock under `name`, and return its value.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        let secs = t0.elapsed().as_secs_f64();
        self.sections.push(SectionTiming { name: name.to_string(), secs });
        self.total_secs += secs;
        out
    }

    /// Like [`RunTimings::time`], but a panic inside `f` is caught and
    /// recorded under [`RunTimings::failed_sections`] instead of tearing
    /// down the whole run; the section's wall-clock (up to the panic) is
    /// still logged, and `None` is returned so the caller can skip the
    /// section's checks and move on.
    pub fn time_caught<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> Option<T> {
        let t0 = std::time::Instant::now();
        let out = catch_unwind(AssertUnwindSafe(f));
        let secs = t0.elapsed().as_secs_f64();
        self.sections.push(SectionTiming { name: name.to_string(), secs });
        self.total_secs += secs;
        match out {
            Ok(v) => Some(v),
            Err(payload) => {
                let error = payload
                    .downcast_ref::<&'static str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                eprintln!("[warn: section {name} panicked: {error}]");
                self.failed_sections.push(FailedSection { name: name.to_string(), error });
                None
            }
        }
    }

    /// Record the failed cells of a sweep under `section`.
    pub fn record_cell_errors<'a>(
        &mut self,
        section: &str,
        errors: impl IntoIterator<Item = &'a CellError>,
    ) {
        for e in errors {
            self.failed_cells.push(FailedCell {
                section: section.to_string(),
                index: e.index,
                seed: e.seed,
                payload: e.payload.clone(),
            });
        }
    }

    /// Write the ledger as pretty JSON to `path`, atomically: the bytes
    /// land in a same-directory temp file that is renamed over `path`,
    /// so a crash mid-write never leaves a truncated ledger behind.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        write_atomic(path, json.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_index_order_at_any_width() {
        let serial: Vec<usize> = Runner::with_jobs(1).run(100, |i| i * i);
        for jobs in [2, 4, 7] {
            assert_eq!(Runner::with_jobs(jobs).run(100, |i| i * i), serial);
        }
    }

    #[test]
    fn replicate_seeds_follow_the_serial_sequence() {
        let seeds = Runner::with_jobs(4).replicate(1998, 8, |s| s);
        assert_eq!(seeds, (1998..2006).collect::<Vec<u64>>());
    }

    #[test]
    fn try_run_isolates_panics_and_annotates_seeds() {
        for jobs in [1, 4] {
            let out = Runner::with_jobs(jobs).try_run(8, 1998, |i| {
                assert!(i != 3, "cell 3 exploded");
                i * 10
            });
            assert_eq!(out.len(), 8);
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 3);
                    assert_eq!(e.seed, 2001, "seed = replication_seed(1998, 3)");
                    assert!(e.payload.contains("cell 3 exploded"), "payload: {}", e.payload);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10);
                }
            }
        }
    }

    #[test]
    fn try_replicate_reports_failing_seed() {
        let out = Runner::with_jobs(2).try_replicate(100, 4, |seed| {
            assert!(seed != 102, "bad seed");
            seed
        });
        assert!(out[0].is_ok() && out[1].is_ok() && out[3].is_ok());
        assert_eq!(out[2].as_ref().unwrap_err().seed, 102);
    }

    #[test]
    fn time_caught_records_failures_and_continues() {
        let mut t = RunTimings::new(1, 7, true);
        let ok = t.time_caught("good", || 1);
        let bad: Option<i32> = t.time_caught("bad", || panic!("kaboom"));
        assert_eq!(ok, Some(1));
        assert_eq!(bad, None);
        assert_eq!(t.sections.len(), 2, "both sections timed");
        assert_eq!(t.failed_sections.len(), 1);
        assert_eq!(t.failed_sections[0].name, "bad");
        assert!(t.failed_sections[0].error.contains("kaboom"));
    }

    #[test]
    fn cell_errors_land_in_the_ledger() {
        let mut t = RunTimings::new(1, 7, false);
        let out = Runner::with_jobs(1).try_run(3, 50, |i| {
            assert!(i != 1, "boom");
            i
        });
        let errs: Vec<&CellError> = out.iter().filter_map(|r| r.as_ref().err()).collect();
        t.record_cell_errors("sweep", errs);
        assert_eq!(t.failed_cells.len(), 1);
        assert_eq!(t.failed_cells[0].section, "sweep");
        assert_eq!(t.failed_cells[0].index, 1);
        assert_eq!(t.failed_cells[0].seed, 51);
    }

    #[test]
    fn write_is_atomic_and_valid_json() {
        let dir = std::env::temp_dir().join("linger-bench-runner-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timings.json");
        let mut t = RunTimings::new(2, 9, true);
        t.time("a", || ());
        t.write(path.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"seed\": 9"), "ledger JSON: {text}");
        // No temp droppings next to the ledger.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name() != "timings.json")
            .count();
        assert_eq!(leftovers, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timings_accumulate() {
        let mut t = RunTimings::new(1, 7, true);
        let v = t.time("a", || 42);
        assert_eq!(v, 42);
        t.time("b", || ());
        assert_eq!(t.sections.len(), 2);
        assert_eq!(t.sections[0].name, "a");
        assert!((t.total_secs - t.sections.iter().map(|s| s.secs).sum::<f64>()).abs() < 1e-12);
    }
}
