//! Deterministic parallel experiment runner.
//!
//! Experiments in this workspace decompose into *units* — replications,
//! policy variants, sweep points — that share no state and draw all their
//! randomness from seeds derived at construction time. The runner fans
//! those units across scoped worker threads while guaranteeing that the
//! output is **byte-identical to a serial run at any thread count**:
//!
//! * seeds are a pure function of the unit's logical index (never of the
//!   thread that happens to execute it);
//! * results land in index-ordered slots, so downstream aggregation and
//!   JSON emission see them in the same order a `for` loop would produce.
//!
//! The heavy lifting lives in [`linger_sim_core::par_map_indexed`]; this
//! module adds the harness-level vocabulary (replication seeding, timed
//! sections for `BENCH_runall.json`).

use linger_sim_core::{par_map_indexed, replication_seed};
use linger_workload::TraceCacheStats;
use serde::Serialize;

/// A deterministic fan-out executor for independent experiment units.
///
/// `Runner::default()` inherits the process-wide job count (set by
/// `--jobs` via [`linger_sim_core::set_default_jobs`]); [`Runner::with_jobs`]
/// pins an explicit worker count for this runner only.
#[derive(Debug, Clone, Copy, Default)]
pub struct Runner {
    jobs: Option<usize>,
}

impl Runner {
    /// A runner using the process-wide default job count.
    pub fn new() -> Self {
        Runner::default()
    }

    /// A runner pinned to exactly `jobs` worker threads (1 = serial).
    pub fn with_jobs(jobs: usize) -> Self {
        Runner { jobs: Some(jobs.max(1)) }
    }

    /// Run `n` independent units, returning results in index order.
    ///
    /// `f` must derive everything (seeds included) from its index
    /// argument; the runner makes no other determinism guarantee.
    pub fn run<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        par_map_indexed(n, self.jobs, f)
    }

    /// Run `reps` replications whose seeds follow
    /// [`replication_seed`]`(base_seed, index)` — the exact sequence a
    /// serial `for r in 0..reps` loop would use (wrapping at `u64::MAX`;
    /// see the seed-space contract in `sim-core::rng`), so
    /// common-random-number pairing across policies survives fan-out.
    pub fn replicate<U, F>(&self, base_seed: u64, reps: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(u64) -> U + Sync,
    {
        self.run(reps, |r| f(replication_seed(base_seed, r as u64)))
    }
}

/// Wall-clock timing of one named section (one figure in `run_all`).
#[derive(Debug, Clone, Serialize)]
pub struct SectionTiming {
    /// Section name (e.g. `"fig05"`).
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub secs: f64,
}

/// Per-figure wall-clock ledger behind `BENCH_runall.json`.
#[derive(Debug, Clone, Serialize, Default)]
pub struct RunTimings {
    /// Worker threads in use (0 = auto-detected).
    pub jobs: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Whether the run used `--fast` scaling.
    pub fast: bool,
    /// Per-section wall-clock, in execution order.
    pub sections: Vec<SectionTiming>,
    /// Per-cell wall-clock of the scaling sweep (`ext_scaling`),
    /// including nanoseconds per node-window; empty when the sweep did
    /// not run.
    pub scaling: Vec<crate::experiments::ScalingTiming>,
    /// End-of-run snapshot of the shared workload-realization cache
    /// (hits, misses, bytes resident); `None` until recorded.
    pub trace_cache: Option<TraceCacheStats>,
    /// Recorded before→after wall-clock comparisons for sections whose
    /// speedup a PR claims (machine-dependent; informational).
    pub baselines: Vec<SectionBaseline>,
    /// Total wall-clock seconds.
    pub total_secs: f64,
}

/// A section's wall-clock against a recorded pre-change baseline.
#[derive(Debug, Clone, Serialize)]
pub struct SectionBaseline {
    /// Section name (matches [`SectionTiming::name`]).
    pub name: String,
    /// Pre-change wall-clock seconds (recorded on the reference machine).
    pub before_secs: f64,
    /// This run's wall-clock seconds.
    pub after_secs: f64,
    /// `before_secs / after_secs` (> 1 is an improvement).
    pub speedup: f64,
}

impl SectionBaseline {
    /// Compare section `name`'s measured time in `sections` against a
    /// recorded baseline. Returns `None` when the section did not run.
    pub fn compare(name: &str, sections: &[SectionTiming], before_secs: f64) -> Option<Self> {
        let after_secs = sections.iter().find(|s| s.name == name)?.secs;
        Some(SectionBaseline {
            name: name.to_string(),
            before_secs,
            after_secs,
            speedup: if after_secs > 0.0 { before_secs / after_secs } else { 0.0 },
        })
    }
}

impl RunTimings {
    /// An empty ledger annotated with the run's configuration.
    pub fn new(jobs: usize, seed: u64, fast: bool) -> Self {
        RunTimings { jobs, seed, fast, ..Default::default() }
    }

    /// Run `f`, record its wall-clock under `name`, and return its value.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        let secs = t0.elapsed().as_secs_f64();
        self.sections.push(SectionTiming { name: name.to_string(), secs });
        self.total_secs += secs;
        out
    }

    /// Write the ledger as pretty JSON to `path` (best effort).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer_pretty(std::io::BufWriter::new(file), self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_index_order_at_any_width() {
        let serial: Vec<usize> = Runner::with_jobs(1).run(100, |i| i * i);
        for jobs in [2, 4, 7] {
            assert_eq!(Runner::with_jobs(jobs).run(100, |i| i * i), serial);
        }
    }

    #[test]
    fn replicate_seeds_follow_the_serial_sequence() {
        let seeds = Runner::with_jobs(4).replicate(1998, 8, |s| s);
        assert_eq!(seeds, (1998..2006).collect::<Vec<u64>>());
    }

    #[test]
    fn timings_accumulate() {
        let mut t = RunTimings::new(1, 7, true);
        let v = t.time("a", || 42);
        assert_eq!(v, 42);
        t.time("b", || ());
        assert_eq!(t.sections.len(), 2);
        assert_eq!(t.sections[0].name, "a");
        assert!((t.total_secs - t.sections.iter().map(|s| s.secs).sum::<f64>()).abs() < 1e-12);
    }
}
