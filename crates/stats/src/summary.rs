//! Online summary statistics.
//!
//! The cluster and node simulators report means, standard deviations and
//! coefficients of variation (the paper's "Variation" metric in Fig 7 is
//! the std-dev of job execution time expressed as a percentage of the
//! mean). Welford's algorithm keeps those numerically stable without
//! storing samples; [`TimeWeighted`] accumulates time-weighted averages
//! such as CPU utilization.

use serde::{Deserialize, Serialize};

/// Error returned when a confidence level has no z-score in the table.
///
/// Only 0.90, 0.95 and 0.99 are supported; anything else used to panic
/// deep inside the accumulators. Callers (e.g. a CLI `--ci` flag) can now
/// surface this as a normal argument error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnsupportedConfidence(pub f64);

impl std::fmt::Display for UnsupportedConfidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unsupported confidence level {} (use 0.90/0.95/0.99)",
            self.0
        )
    }
}

impl std::error::Error for UnsupportedConfidence {}

/// Normal z-score for a supported two-sided confidence `level`.
pub fn z_score(level: f64) -> Result<f64, UnsupportedConfidence> {
    match level {
        l if (l - 0.90).abs() < 1e-9 => Ok(1.6449),
        l if (l - 0.95).abs() < 1e-9 => Ok(1.9600),
        l if (l - 0.99).abs() < 1e-9 => Ok(2.5758),
        other => Err(UnsupportedConfidence(other)),
    }
}

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Online {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Online {
    /// An empty accumulator.
    pub fn new() -> Self {
        Online {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Merge another accumulator into this one (Chan et al. parallel form).
    pub fn merge(&mut self, other: &Online) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 1 observation).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std-dev / mean), the paper's "Variation".
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation half-width of the `level` confidence interval
    /// for the mean, e.g. `level = 0.95`.
    ///
    /// Returns [`UnsupportedConfidence`] for levels outside the z-table
    /// (0.90/0.95/0.99); with fewer than two observations the half-width
    /// is `∞` (the level is still validated first).
    pub fn ci_half_width(&self, level: f64) -> Result<f64, UnsupportedConfidence> {
        let z = z_score(level)?;
        if self.n < 2 {
            return Ok(f64::INFINITY);
        }
        Ok(z * self.std_dev() / (self.n as f64).sqrt())
    }
}

/// Time-weighted average accumulator.
///
/// Feed `(value, duration)` segments; reports the duration-weighted mean.
/// Used for utilization ("fraction of time the CPU was busy") and for the
/// memory-availability distribution, where each 2-second trace sample
/// carries equal weight.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TimeWeighted {
    weighted_sum: f64,
    total_weight: f64,
}

impl TimeWeighted {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` holding for `weight` units of time (weight ≥ 0).
    pub fn add(&mut self, value: f64, weight: f64) {
        debug_assert!(weight >= 0.0, "negative weight {weight}");
        self.weighted_sum += value * weight;
        self.total_weight += weight;
    }

    /// The duration-weighted mean (0 if no weight recorded).
    pub fn mean(&self) -> f64 {
        if self.total_weight == 0.0 {
            0.0
        } else {
            self.weighted_sum / self.total_weight
        }
    }

    /// Total weight recorded.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: &TimeWeighted) {
        self.weighted_sum += other.weighted_sum;
        self.total_weight += other.total_weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut o = Online::new();
        o.extend(xs.iter().copied());
        assert_eq!(o.count(), 8);
        assert!((o.mean() - 5.0).abs() < 1e-12);
        assert!((o.variance_population() - 4.0).abs() < 1e-12);
        assert!((o.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(o.min(), 2.0);
        assert_eq!(o.max(), 9.0);
    }

    #[test]
    fn online_empty_and_single() {
        let o = Online::new();
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.variance(), 0.0);
        let mut o = Online::new();
        o.add(3.0);
        assert_eq!(o.mean(), 3.0);
        assert_eq!(o.variance(), 0.0);
        assert_eq!(o.ci_half_width(0.95).unwrap(), f64::INFINITY);
    }

    #[test]
    fn unsupported_confidence_is_a_typed_error() {
        let mut o = Online::new();
        o.extend([1.0, 2.0, 3.0]);
        let err = o.ci_half_width(0.42).unwrap_err();
        assert_eq!(err, UnsupportedConfidence(0.42));
        assert!(err.to_string().contains("0.42"));
        // The level is validated even when n < 2 would short-circuit.
        assert!(Online::new().ci_half_width(0.5).is_err());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = Online::new();
        whole.extend(xs.iter().copied());
        let mut a = Online::new();
        let mut b = Online::new();
        a.extend(xs[..37].iter().copied());
        b.extend(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Online::new();
        a.add(1.0);
        let b = Online::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Online::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn cv_is_variation_metric() {
        let mut o = Online::new();
        o.extend([90.0, 100.0, 110.0]);
        assert!((o.cv() - 10.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let mut small = Online::new();
        let mut large = Online::new();
        for i in 0..10 {
            small.add(i as f64);
        }
        for i in 0..1000 {
            large.add((i % 10) as f64);
        }
        assert!(large.ci_half_width(0.95).unwrap() < small.ci_half_width(0.95).unwrap());
        assert!(small.ci_half_width(0.99).unwrap() > small.ci_half_width(0.90).unwrap());
    }

    #[test]
    fn time_weighted_mean() {
        let mut t = TimeWeighted::new();
        t.add(1.0, 3.0); // busy for 3 s
        t.add(0.0, 7.0); // idle for 7 s
        assert!((t.mean() - 0.3).abs() < 1e-12);
        assert_eq!(t.total_weight(), 10.0);
    }

    #[test]
    fn time_weighted_merge_and_empty() {
        let mut a = TimeWeighted::new();
        assert_eq!(a.mean(), 0.0);
        a.add(2.0, 1.0);
        let mut b = TimeWeighted::new();
        b.add(4.0, 1.0);
        a.merge(&b);
        assert!((a.mean() - 3.0).abs() < 1e-12);
    }
}

/// Batch-means confidence intervals for steady-state simulation output.
///
/// Correlated observations (e.g. per-window throughput from one long run)
/// violate the independence assumption behind [`Online::ci_half_width`];
/// the classical remedy is to average consecutive observations into
/// batches and treat the batch means as approximately independent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: usize,
    current_sum: f64,
    current_count: usize,
    batches: Online,
}

impl BatchMeans {
    /// Accumulate batches of `batch_size` observations (≥ 1).
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: Online::new(),
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches.add(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> u64 {
        self.batches.count()
    }

    /// Mean over completed batches (the steady-state estimate).
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Confidence-interval half-width over batch means.
    pub fn ci_half_width(&self, level: f64) -> Result<f64, UnsupportedConfidence> {
        self.batches.ci_half_width(level)
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    #[test]
    fn batches_form_at_the_right_cadence() {
        let mut b = BatchMeans::new(4);
        for i in 0..10 {
            b.add(i as f64);
        }
        // Two complete batches: (0+1+2+3)/4 = 1.5 and (4..8)/4 = 5.5.
        assert_eq!(b.batches(), 2);
        assert!((b.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn partial_batch_is_excluded() {
        let mut b = BatchMeans::new(100);
        for _ in 0..99 {
            b.add(1.0);
        }
        assert_eq!(b.batches(), 0);
        assert_eq!(b.mean(), 0.0);
        b.add(1.0);
        assert_eq!(b.batches(), 1);
        assert_eq!(b.mean(), 1.0);
    }

    #[test]
    fn batching_widens_ci_for_correlated_data() {
        // A slowly-drifting series: raw observations look precise,
        // batch means expose the drift.
        let xs: Vec<f64> = (0..4000).map(|i| (i / 500) as f64).collect();
        let mut raw = Online::new();
        raw.extend(xs.iter().copied());
        let mut batched = BatchMeans::new(250);
        for &x in &xs {
            batched.add(x);
        }
        // Same point estimate…
        assert!((raw.mean() - batched.mean()).abs() < 0.3);
        // …but the per-observation CI is misleadingly narrow relative to
        // the batch-mean CI scaled for sample counts.
        let raw_ci = raw.ci_half_width(0.95).unwrap();
        let batch_ci = batched.ci_half_width(0.95).unwrap();
        assert!(batch_ci > raw_ci, "batched {batch_ci} vs raw {raw_ci}");
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_rejected() {
        let _ = BatchMeans::new(0);
    }
}
