//! # linger-stats
//!
//! Probability and statistics substrate for the *Linger Longer* (SC'98)
//! reproduction:
//!
//! * [`distr`] — exponential, 2-stage hyper-exponential, Erlang,
//!   deterministic and uniform distributions with exact moments and CDFs;
//! * [`fit`] — the paper's method-of-moments burst fitting (Sec 3.1):
//!   hyper-exponential for CV² > 1, with exact Erlang-mixture and
//!   exponential fallbacks so every (mean, variance) pair is representable;
//! * [`histogram`] — fixed-bin histograms, empirical CDFs, and the
//!   Kolmogorov–Smirnov distance used to validate fits (Fig 2);
//! * [`summary`] — Welford online statistics (the Fig 7 "Variation" metric)
//!   and time-weighted averages (utilizations).

//! ## Example
//!
//! ```
//! use linger_stats::{fit_two_moments, Distribution};
//!
//! // The paper's method-of-moments fit: CV² > 1 → hyper-exponential.
//! let fitted = fit_two_moments(0.05, 0.02);
//! assert_eq!(fitted.family(), "hyperexp2");
//! assert!((fitted.mean() - 0.05).abs() < 1e-9);
//! assert!((fitted.variance() - 0.02).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod distr;
pub mod fit;
pub mod histogram;
pub mod summary;

pub use distr::{Deterministic, Distribution, Erlang, Exponential, HyperExp2, Pareto, UniformRange};
pub use fit::{fit_two_moments, Fitted};
pub use histogram::{Ecdf, Histogram};
pub use summary::{z_score, BatchMeans, Online, TimeWeighted, UnsupportedConfidence};
