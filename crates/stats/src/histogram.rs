//! Fixed-bin histograms and empirical CDFs.
//!
//! Used to reproduce the paper's burst-duration histograms (Fig 2) and the
//! available-memory CDF (Fig 4), and to validate fitted distributions
//! against the populations they were fitted to.

use serde::{Deserialize, Serialize};

/// A histogram with uniform bins over `[lo, hi)` plus an overflow bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// A histogram with `bins` uniform bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            // Floating-point edge: x just below hi can index == len.
            let i = i.min(self.counts.len() - 1);
            self.counts[i] += 1;
        }
    }

    /// Record many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of bins (excluding under/overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Upper edge of bin `i`.
    pub fn bin_upper(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 1.0) * w
    }

    /// Cumulative frequency curve: points `(bin upper edge, P(X ≤ edge))`,
    /// counting underflow as below all edges. This is the form plotted in
    /// the paper's Fig 2.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut acc = self.underflow;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            out.push((self.bin_upper(i), acc as f64 / self.total.max(1) as f64));
        }
        out
    }
}

/// An exact empirical CDF built from a stored, sorted sample.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (copied and sorted).
    pub fn from_samples(mut xs: Vec<f64>) -> Self {
        xs.retain(|x| x.is_finite());
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ecdf { sorted: xs }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` = fraction of samples ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile, `q` in [0, 1], by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// Kolmogorov–Smirnov distance against a reference CDF.
    ///
    /// `sup_x |F_n(x) − F(x)|`, evaluated at the sample points (where the
    /// supremum of the one-sample statistic is attained).
    pub fn ks_distance<F: Fn(f64) -> f64>(&self, cdf: F) -> f64 {
        let n = self.sorted.len();
        if n == 0 {
            return 0.0;
        }
        let mut d = 0.0f64;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = cdf(x);
            let lo = i as f64 / n as f64;
            let hi = (i + 1) as f64 / n as f64;
            d = d.max((f - lo).abs()).max((hi - f).abs());
        }
        d
    }

    /// Iterate the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.add(0.05); // bin 0
        h.add(0.15); // bin 1
        h.add(0.95); // bin 9
        h.add(-0.1); // underflow
        h.add(1.0); // overflow (hi is exclusive)
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert!((h.bin_center(0) - 0.05).abs() < 1e-12);
        assert!((h.bin_upper(9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_cdf_points_reach_one_minus_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([1.0, 3.0, 5.0, 7.0, 9.0, 20.0]);
        let pts = h.cdf_points();
        assert_eq!(pts.len(), 5);
        let last = pts.last().unwrap().1;
        assert!((last - 5.0 / 6.0).abs() < 1e-12); // overflow excluded
        // Monotone.
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn ecdf_eval_and_quantiles() {
        let e = Ecdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.quantile(0.0), 1.0);
    }

    #[test]
    fn ecdf_ks_distance_zero_against_itself() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let e = Ecdf::from_samples(xs);
        // Against the true uniform CDF the distance is at most 1/n.
        let d = e.ks_distance(|x| x.clamp(0.0, 1.0));
        assert!(d <= 0.011, "ks distance {d}");
    }

    #[test]
    fn ecdf_ks_distance_detects_mismatch() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let e = Ecdf::from_samples(xs);
        // Against Exp(1) the uniform sample is far.
        let d = e.ks_distance(|x| 1.0 - (-x).exp());
        assert!(d > 0.2, "ks distance {d}");
    }

    #[test]
    fn ecdf_ignores_non_finite() {
        let e = Ecdf::from_samples(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn histogram_near_upper_edge_does_not_panic() {
        let mut h = Histogram::new(0.0, 0.1, 7);
        h.add(0.1 - 1e-15);
        assert_eq!(h.overflow() + h.count(6), 1);
    }
}
