//! Method-of-moments fitting of burst distributions.
//!
//! Section 3.1 of the paper: *"we generate a 2-stage hyper-exponential
//! distribution from the mean and variance using a method-of-moment
//! estimate \[Trivedi p. 479\]"*. The balanced-means H2 fit used here is
//! exactly that textbook construction. It requires a squared coefficient of
//! variation (CV²) ≥ 1; for CV² < 1 — which can occur in some utilization
//! buckets — we fall back to the standard two-moment Erlang-mixture fit so
//! that *every* (mean, variance) pair the workload tables produce has an
//! exact two-moment representation.

use crate::distr::{Deterministic, Distribution, Erlang, Exponential, HyperExp2};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution produced by two-moment fitting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fitted {
    /// Degenerate fit (variance ≈ 0).
    Point(Deterministic),
    /// CV² ≈ 1.
    Exp(Exponential),
    /// CV² > 1 — the paper's case.
    Hyper(HyperExp2),
    /// CV² < 1: mixture of Erlang(k) and Erlang(k+1) with common rate.
    ErlangMix {
        /// Probability of drawing from the k-stage branch.
        p: f64,
        /// The k-stage branch.
        a: Erlang,
        /// The (k+1)-stage branch.
        b: Erlang,
    },
}

impl Fitted {
    /// Short label for reports.
    pub fn family(&self) -> &'static str {
        match self {
            Fitted::Point(_) => "deterministic",
            Fitted::Exp(_) => "exponential",
            Fitted::Hyper(_) => "hyperexp2",
            Fitted::ErlangMix { .. } => "erlang-mix",
        }
    }

    /// How many uniform draws one [`Distribution::sample`] call consumes,
    /// when that count does not depend on the draws themselves.
    ///
    /// `Point` consumes none, `Exp` one, `Hyper` two (branch + stage).
    /// `ErlangMix` consumes a data-dependent count (the branch draw picks
    /// between a k-stage and a (k+1)-stage Erlang), so it returns `None`
    /// and callers must fall back to per-sample dispatch.
    pub fn fixed_draw_count(&self) -> Option<usize> {
        match self {
            Fitted::Point(_) => Some(0),
            Fitted::Exp(_) => Some(1),
            Fitted::Hyper(_) => Some(2),
            Fitted::ErlangMix { .. } => None,
        }
    }

    /// Transform pre-drawn uniforms into one sample, consuming exactly
    /// [`Self::fixed_draw_count`] values from `us` in the order
    /// [`Distribution::sample`] would draw them — so a slab filled from an
    /// RNG and fed through this function reproduces the sequential samples
    /// bit-for-bit and leaves the RNG in the identical state.
    ///
    /// # Panics
    /// If the fit has no fixed draw count (`ErlangMix`) or `us` is shorter
    /// than required.
    pub fn sample_from_uniforms(&self, us: &[f64]) -> f64 {
        match self {
            Fitted::Point(d) => d.mean(),
            Fitted::Exp(d) => -(1.0 - us[0]).ln() / d.rate(),
            Fitted::Hyper(d) => {
                let rate = if us[0] < d.p1() { d.rate1() } else { d.rate2() };
                -(1.0 - us[1]).ln() / rate
            }
            Fitted::ErlangMix { .. } => {
                panic!("ErlangMix has no fixed draw count; sample it directly")
            }
        }
    }
}

impl Distribution for Fitted {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Fitted::Point(d) => d.sample(rng),
            Fitted::Exp(d) => d.sample(rng),
            Fitted::Hyper(d) => d.sample(rng),
            Fitted::ErlangMix { p, a, b } => {
                let u: f64 = rng.random();
                if u < *p {
                    a.sample(rng)
                } else {
                    b.sample(rng)
                }
            }
        }
    }

    fn mean(&self) -> f64 {
        match self {
            Fitted::Point(d) => d.mean(),
            Fitted::Exp(d) => d.mean(),
            Fitted::Hyper(d) => d.mean(),
            Fitted::ErlangMix { p, a, b } => p * a.mean() + (1.0 - p) * b.mean(),
        }
    }

    fn variance(&self) -> f64 {
        match self {
            Fitted::Point(d) => d.variance(),
            Fitted::Exp(d) => d.variance(),
            Fitted::Hyper(d) => d.variance(),
            Fitted::ErlangMix { p, a, b } => {
                let ex2_a = a.variance() + a.mean() * a.mean();
                let ex2_b = b.variance() + b.mean() * b.mean();
                let ex2 = p * ex2_a + (1.0 - p) * ex2_b;
                let m = self.mean();
                ex2 - m * m
            }
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        match self {
            Fitted::Point(d) => d.cdf(x),
            Fitted::Exp(d) => d.cdf(x),
            Fitted::Hyper(d) => d.cdf(x),
            Fitted::ErlangMix { p, a, b } => p * a.cdf(x) + (1.0 - p) * b.cdf(x),
        }
    }
}

/// Relative CV² half-width inside which a fit is treated as exponential.
const EXP_BAND: f64 = 1e-9;

/// Fit a non-negative distribution matching `mean` and `variance` exactly.
///
/// * CV² > 1 → balanced-means 2-stage hyper-exponential (Trivedi):
///   `p₁ = ½(1 + √((CV²−1)/(CV²+1)))`, `λ₁ = 2p₁/m`, `λ₂ = 2(1−p₁)/m`.
/// * CV² = 1 → exponential.
/// * 0 < CV² < 1 → mixture of Erlang(k) and Erlang(k+1) with common rate,
///   where `1/(k+1) ≤ CV² ≤ 1/k` (two-moment exact).
/// * variance = 0 → point mass.
///
/// # Panics
/// If `mean` is not positive-finite or `variance` is negative.
pub fn fit_two_moments(mean: f64, variance: f64) -> Fitted {
    assert!(mean > 0.0 && mean.is_finite(), "mean must be positive: {mean}");
    assert!(variance >= 0.0 && variance.is_finite(), "variance must be non-negative: {variance}");

    if variance == 0.0 {
        return Fitted::Point(Deterministic::new(mean));
    }
    let cv2 = variance / (mean * mean);

    if (cv2 - 1.0).abs() <= EXP_BAND {
        return Fitted::Exp(Exponential::with_mean(mean));
    }

    if cv2 > 1.0 {
        // Balanced-means hyper-exponential.
        let p1 = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
        let rate1 = 2.0 * p1 / mean;
        let rate2 = 2.0 * (1.0 - p1) / mean;
        return Fitted::Hyper(HyperExp2::new(p1, rate1, rate2));
    }

    // CV² < 1: mixture of Erlang(k, μ) w.p. p and Erlang(k+1, μ) w.p. 1−p,
    // with k chosen so 1/(k+1) ≤ cv2 ≤ 1/k (two-moment exact; cf. Tijms,
    // "Stochastic Models", Sec. 7.2). The mixing probability is found by
    // bisection on the closed-form CV²(p) rather than by juggling the many
    // published algebraic variants.
    let k = (1.0 / cv2).floor().max(1.0) as u32;
    let kf = k as f64;
    let p = solve_erlang_mix_p(kf, cv2);
    let mu = (kf + 1.0 - p) / mean;
    Fitted::ErlangMix {
        p,
        a: Erlang::new(k, mu),
        b: Erlang::new(k + 1, mu),
    }
}

/// Solve for the mixing probability `p` of the Erlang(k)/Erlang(k+1)
/// mixture with common rate so that CV² matches.
///
/// With mean fixed by `μ = (k+1−p)/m`, the CV² of the mixture is
/// `cv2(p) = [p k + (1−p)(k+1) + p(1−p)] / (k+1−p)²` — monotone in `p` on
/// [0,1] between `1/(k+1)` (p=0) and `1/k` (p=1)… except for the `p(1−p)`
/// bump, so we bisect rather than assume monotonicity shape.
fn solve_erlang_mix_p(k: f64, cv2_target: f64) -> f64 {
    let cv2_of = |p: f64| {
        let m1 = k + 1.0 - p; // mean in units of 1/μ
        // second moment in units of 1/μ²:
        //   E[X²] = p·k(k+1) + (1−p)(k+1)(k+2)
        let ex2 = p * k * (k + 1.0) + (1.0 - p) * (k + 1.0) * (k + 2.0);
        (ex2 - m1 * m1) / (m1 * m1)
    };
    // cv2_of(0) = 1/(k+1), cv2_of(1) = 1/k; bisect on [0,1].
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let decreasing = cv2_of(0.0) > cv2_of(1.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        let v = cv2_of(mid);
        let go_right = if decreasing { v > cv2_target } else { v < cv2_target };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_moments(f: &Fitted, mean: f64, var: f64) {
        assert!(
            (f.mean() - mean).abs() / mean < 1e-6,
            "{}: mean {} != {mean}",
            f.family(),
            f.mean()
        );
        if var > 0.0 {
            assert!(
                (f.variance() - var).abs() / var < 1e-6,
                "{}: var {} != {var}",
                f.family(),
                f.variance()
            );
        }
    }

    #[test]
    fn hyperexp_fit_matches_moments() {
        // CV² = 4
        let f = fit_two_moments(0.05, 0.01);
        assert_eq!(f.family(), "hyperexp2");
        assert_moments(&f, 0.05, 0.01);
    }

    #[test]
    fn exponential_fit_when_cv2_is_one() {
        let f = fit_two_moments(2.0, 4.0);
        assert_eq!(f.family(), "exponential");
        assert_moments(&f, 2.0, 4.0);
    }

    #[test]
    fn erlang_mix_fit_matches_moments() {
        // CV² = 0.4 → k = 2
        let f = fit_two_moments(1.0, 0.4);
        assert_eq!(f.family(), "erlang-mix");
        assert_moments(&f, 1.0, 0.4);
        if let Fitted::ErlangMix { p, a, b } = f {
            assert!((0.0..=1.0).contains(&p));
            assert_eq!(a.stages() + 1, b.stages());
        }
    }

    #[test]
    fn point_fit_for_zero_variance() {
        let f = fit_two_moments(3.0, 0.0);
        assert_eq!(f.family(), "deterministic");
        assert_moments(&f, 3.0, 0.0);
    }

    #[test]
    fn extreme_cv2_values() {
        // Very bursty: CV² = 100
        let f = fit_two_moments(0.01, 0.01);
        assert_moments(&f, 0.01, 0.01);
        // Very regular: CV² = 0.05 → k = 20
        let f = fit_two_moments(1.0, 0.05);
        assert_moments(&f, 1.0, 0.05);
    }

    #[test]
    fn sampling_reproduces_fit_moments() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for (mean, var) in [(0.05, 0.02), (0.1, 0.005), (1.0, 1.0), (0.02, 0.0008)] {
            let f = fit_two_moments(mean, var);
            let n = 400_000;
            let mut s = 0.0;
            let mut s2 = 0.0;
            for _ in 0..n {
                let x = f.sample(&mut rng);
                s += x;
                s2 += x * x;
            }
            let m = s / n as f64;
            let v = s2 / n as f64 - m * m;
            assert!((m - mean).abs() / mean < 0.02, "mean {m} vs {mean}");
            assert!((v - var).abs() / var < 0.1, "var {v} vs {var} ({})", f.family());
        }
    }

    #[test]
    fn cdf_is_proper() {
        for (mean, var) in [(0.05, 0.02), (1.0, 0.4), (2.0, 4.0)] {
            let f = fit_two_moments(mean, var);
            assert_eq!(f.cdf(0.0), 0.0);
            let mut prev = 0.0;
            // Scan far into the tail: high-CV² hyper-exponentials have a
            // slow branch whose mass only drains after many means.
            for i in 1..=400 {
                let x = mean * 50.0 * i as f64 / 400.0;
                let c = f.cdf(x);
                assert!(c >= prev - 1e-12, "non-monotone cdf");
                assert!((0.0..=1.0 + 1e-12).contains(&c));
                prev = c;
            }
            assert!(prev > 0.99, "cdf should approach 1, got {prev}");
        }
    }

    #[test]
    fn sample_from_uniforms_matches_sequential_sampling() {
        use rand::SeedableRng;
        // Point (0 draws), hyper-exponential (2 draws), exponential (1 draw).
        for (mean, var) in [(3.0, 0.0), (0.05, 0.02), (2.0, 4.0)] {
            let f = fit_two_moments(mean, var);
            let n = f.fixed_draw_count().expect("fixed-count family");
            let mut seq = rand_chacha::ChaCha8Rng::seed_from_u64(11);
            let mut slab = rand_chacha::ChaCha8Rng::seed_from_u64(11);
            for _ in 0..256 {
                let want = f.sample(&mut seq);
                let us: Vec<f64> = (0..n).map(|_| slab.random()).collect();
                let got = f.sample_from_uniforms(&us);
                assert_eq!(want.to_bits(), got.to_bits(), "{want} vs {got}");
            }
            // Both paths must leave the stream in the identical state.
            assert_eq!(seq.random::<u64>(), slab.random::<u64>());
        }
        assert!(
            fit_two_moments(1.0, 0.4).fixed_draw_count().is_none(),
            "ErlangMix draw count is data-dependent"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive_mean() {
        let _ = fit_two_moments(0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_variance() {
        let _ = fit_two_moments(1.0, -0.5);
    }
}
