//! Continuous distributions used by the workload models.
//!
//! The paper models fine-grain CPU run/idle bursts with a 2-stage
//! hyper-exponential distribution fitted by the method of moments
//! (Sec 3.1, citing Trivedi p. 479). Burst populations with a squared
//! coefficient of variation below 1 cannot be represented by a
//! hyper-exponential, so the fitting layer (see [`crate::fit`]) falls back
//! to an Erlang mixture; both families live here.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A continuous, non-negative distribution that can be sampled and
/// evaluated.
pub trait Distribution {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
    /// The distribution mean.
    fn mean(&self) -> f64;
    /// The distribution variance.
    fn variance(&self) -> f64;
    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;
}

/// Draw from Exp(rate) via inverse transform.
#[inline]
fn sample_exp<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    // `random::<f64>()` is uniform on [0, 1); use 1-u to avoid ln(0).
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// The exponential distribution with the given rate (1/mean).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Exponential with rate `rate` (> 0).
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive: {rate}");
        Exponential { rate }
    }

    /// Exponential with the given mean (> 0).
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive: {mean}");
        Exponential { rate: 1.0 / mean }
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        sample_exp(self.rate, rng)
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }
}

/// Two-stage hyper-exponential distribution: with probability `p1` the
/// sample comes from Exp(`rate1`), otherwise from Exp(`rate2`).
///
/// This is the family the paper fits to run/idle burst histograms; its
/// squared coefficient of variation is always ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperExp2 {
    p1: f64,
    rate1: f64,
    rate2: f64,
}

impl HyperExp2 {
    /// A two-branch hyper-exponential. `p1` must lie in [0, 1]; both rates
    /// must be positive.
    pub fn new(p1: f64, rate1: f64, rate2: f64) -> Self {
        assert!((0.0..=1.0).contains(&p1), "p1 out of range: {p1}");
        assert!(rate1 > 0.0 && rate1.is_finite(), "rate1 must be positive");
        assert!(rate2 > 0.0 && rate2.is_finite(), "rate2 must be positive");
        HyperExp2 { p1, rate1, rate2 }
    }

    /// Branch probability of stage 1.
    pub fn p1(&self) -> f64 {
        self.p1
    }
    /// Rate of stage 1.
    pub fn rate1(&self) -> f64 {
        self.rate1
    }
    /// Rate of stage 2.
    pub fn rate2(&self) -> f64 {
        self.rate2
    }
}

impl Distribution for HyperExp2 {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        if u < self.p1 {
            sample_exp(self.rate1, rng)
        } else {
            sample_exp(self.rate2, rng)
        }
    }
    fn mean(&self) -> f64 {
        self.p1 / self.rate1 + (1.0 - self.p1) / self.rate2
    }
    fn variance(&self) -> f64 {
        // E[X^2] = 2 p1/λ1² + 2 (1-p1)/λ2²
        let ex2 = 2.0 * self.p1 / (self.rate1 * self.rate1)
            + 2.0 * (1.0 - self.p1) / (self.rate2 * self.rate2);
        let m = self.mean();
        ex2 - m * m
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.p1 * (1.0 - (-self.rate1 * x).exp())
                + (1.0 - self.p1) * (1.0 - (-self.rate2 * x).exp())
        }
    }
}

/// Erlang distribution: sum of `k` iid Exp(`rate`) stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Erlang {
    k: u32,
    rate: f64,
}

impl Erlang {
    /// Erlang with `k` ≥ 1 stages of rate `rate` > 0.
    pub fn new(k: u32, rate: f64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Erlang { k, rate }
    }

    /// Number of stages.
    pub fn stages(&self) -> u32 {
        self.k
    }
    /// Per-stage rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Erlang {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Product-of-uniforms form: one log instead of k.
        let mut prod = 1.0f64;
        for _ in 0..self.k {
            let u: f64 = rng.random();
            prod *= 1.0 - u;
        }
        -prod.ln() / self.rate
    }
    fn mean(&self) -> f64 {
        self.k as f64 / self.rate
    }
    fn variance(&self) -> f64 {
        self.k as f64 / (self.rate * self.rate)
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        // P(X ≤ x) = 1 − e^{−λx} Σ_{n=0}^{k−1} (λx)^n / n!
        let lx = self.rate * x;
        let mut term = 1.0f64; // (λx)^0 / 0!
        let mut sum = 1.0f64;
        for n in 1..self.k {
            term *= lx / n as f64;
            sum += term;
        }
        1.0 - (-lx).exp() * sum
    }
}

/// Point mass at a fixed value (used for deterministic phase lengths in the
/// synthetic BSP workload).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// A point mass at `value` ≥ 0.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0 && value.is_finite(), "value must be non-negative");
        Deterministic { value }
    }
}

impl Distribution for Deterministic {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
    fn variance(&self) -> f64 {
        0.0
    }
    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }
}

/// Pareto (power-law) distribution: `P(X > x) = (xm/x)^alpha` for
/// `x ≥ xm`.
///
/// Process lifetimes are famously Pareto-like with `alpha ≈ 1`
/// (Harchol-Balter & Downey; Leland & Ott) — the distribution for which
/// the paper's median-remaining-life predictor ("a process that has run
/// T will run 2T in total") is *exact*: the conditional median of `X`
/// given `X > t` is `2^{1/alpha}·t`, which equals `2t` at `alpha = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Pareto with scale `xm > 0` and shape `alpha > 0`.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm > 0.0 && xm.is_finite(), "xm must be positive");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        Pareto { xm, alpha }
    }

    /// Scale (minimum value).
    pub fn xm(&self) -> f64 {
        self.xm
    }

    /// Shape.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Median of the distribution.
    pub fn median(&self) -> f64 {
        self.xm * 2f64.powf(1.0 / self.alpha)
    }
}

impl Distribution for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        self.xm / (1.0 - u).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }
    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.xm * self.xm * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }
}

/// Continuous uniform on [lo, hi).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Uniform on `[lo, hi)` with `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range [{lo}, {hi})");
        UniformRange { lo, hi }
    }
}

impl Distribution for UniformRange {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        self.lo + u * (self.hi - self.lo)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(12345)
    }

    fn sample_moments<D: Distribution>(d: &D, n: usize) -> (f64, f64) {
        let mut r = rng();
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!(x >= 0.0, "negative sample {x}");
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        (mean, sum2 / n as f64 - mean * mean)
    }

    #[test]
    fn exponential_moments_match() {
        let d = Exponential::with_mean(0.25);
        assert!((d.mean() - 0.25).abs() < 1e-12);
        assert!((d.variance() - 0.0625).abs() < 1e-12);
        let (m, v) = sample_moments(&d, 200_000);
        assert!((m - 0.25).abs() < 0.005, "mean {m}");
        assert!((v - 0.0625).abs() < 0.01, "var {v}");
    }

    #[test]
    fn exponential_cdf() {
        let d = Exponential::new(2.0);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(d.cdf(100.0) > 0.999_999);
    }

    #[test]
    fn hyperexp_moments_match_analytic() {
        let d = HyperExp2::new(0.3, 10.0, 1.0);
        // mean = 0.3/10 + 0.7/1 = 0.73
        assert!((d.mean() - 0.73).abs() < 1e-12);
        let (m, v) = sample_moments(&d, 300_000);
        assert!((m - d.mean()).abs() < 0.01, "mean {m} vs {}", d.mean());
        assert!((v - d.variance()).abs() / d.variance() < 0.05, "var {v} vs {}", d.variance());
    }

    #[test]
    fn hyperexp_cv2_at_least_one() {
        for (p, r1, r2) in [(0.1, 5.0, 0.5), (0.5, 2.0, 2.0), (0.9, 100.0, 1.0)] {
            let d = HyperExp2::new(p, r1, r2);
            let cv2 = d.variance() / (d.mean() * d.mean());
            assert!(cv2 >= 1.0 - 1e-9, "cv2 {cv2} < 1 for {p} {r1} {r2}");
        }
    }

    #[test]
    fn hyperexp_cdf_monotone_and_bounded() {
        let d = HyperExp2::new(0.4, 8.0, 0.8);
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = i as f64 * 0.1;
            let c = d.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn erlang_moments_and_cdf() {
        let d = Erlang::new(4, 8.0);
        assert!((d.mean() - 0.5).abs() < 1e-12);
        assert!((d.variance() - 0.0625).abs() < 1e-12);
        let (m, v) = sample_moments(&d, 200_000);
        assert!((m - 0.5).abs() < 0.01);
        assert!((v - 0.0625).abs() < 0.01);
        // CDF at the mean of an Erlang(4) is ~0.566.
        assert!((d.cdf(0.5) - 0.5665).abs() < 0.01, "cdf {}", d.cdf(0.5));
        assert_eq!(d.cdf(0.0), 0.0);
    }

    #[test]
    fn erlang_k1_equals_exponential() {
        let e = Erlang::new(1, 3.0);
        let x = Exponential::new(3.0);
        for i in 1..20 {
            let t = i as f64 * 0.05;
            assert!((e.cdf(t) - x.cdf(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(2.5);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 2.5);
        }
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.cdf(2.4), 0.0);
        assert_eq!(d.cdf(2.5), 1.0);
    }

    #[test]
    fn uniform_range() {
        let d = UniformRange::new(1.0, 3.0);
        assert_eq!(d.mean(), 2.0);
        let (m, v) = sample_moments(&d, 100_000);
        assert!((m - 2.0).abs() < 0.01);
        assert!((v - 1.0 / 3.0).abs() < 0.01);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(2.0), 0.5);
        assert_eq!(d.cdf(4.0), 1.0);
    }

    #[test]
    fn pareto_median_and_cdf() {
        let d = Pareto::new(1.0, 1.0);
        assert_eq!(d.median(), 2.0);
        assert!((d.cdf(2.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.cdf(0.5), 0.0);
        assert!(d.mean().is_infinite(), "alpha=1 has no mean");
        let d2 = Pareto::new(2.0, 3.0);
        assert!((d2.mean() - 3.0).abs() < 1e-12);
        assert!((d2.variance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_sampling_respects_support_and_median() {
        let d = Pareto::new(1.0, 1.0);
        let mut r = rng();
        let mut below_median = 0usize;
        let n = 100_000;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!(x >= 1.0);
            if x <= 2.0 {
                below_median += 1;
            }
        }
        let frac = below_median as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "median frac {frac}");
    }

    #[test]
    fn pareto_median_remaining_life_property() {
        // At alpha = 1: median of X given X > t is exactly 2t.
        let d = Pareto::new(1.0, 1.0);
        let mut r = rng();
        for t in [2.0f64, 5.0, 20.0] {
            let mut survivors = Vec::new();
            for _ in 0..400_000 {
                let x = d.sample(&mut r);
                if x > t {
                    survivors.push(x);
                }
            }
            survivors.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med = survivors[survivors.len() / 2];
            assert!(
                (med - 2.0 * t).abs() / (2.0 * t) < 0.05,
                "median of survivors past {t} is {med}, expected {}",
                2.0 * t
            );
        }
    }

    #[test]
    #[should_panic]
    fn pareto_rejects_bad_shape() {
        let _ = Pareto::new(1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    #[should_panic]
    fn hyperexp_rejects_bad_p() {
        let _ = HyperExp2::new(1.5, 1.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn erlang_rejects_zero_stages() {
        let _ = Erlang::new(0, 1.0);
    }
}
