//! Property tests of the statistics substrate.

use linger_stats::{fit_two_moments, Distribution, Ecdf, Histogram, Online, TimeWeighted};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #[test]
    fn online_matches_naive_two_pass(
        xs in prop::collection::vec(-1e6f64..1e6, 2..200),
    ) {
        let mut o = Online::new();
        o.extend(xs.iter().copied());
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((o.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((o.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(o.count() as usize, xs.len());
    }

    #[test]
    fn online_merge_any_split(
        xs in prop::collection::vec(-1e4f64..1e4, 2..100),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Online::new();
        whole.extend(xs.iter().copied());
        let mut a = Online::new();
        let mut b = Online::new();
        a.extend(xs[..split].iter().copied());
        b.extend(xs[split..].iter().copied());
        a.merge(&b);
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-5 * (1.0 + whole.variance()));
    }

    #[test]
    fn ecdf_is_a_distribution_function(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        probe in -2e3f64..2e3,
    ) {
        let e = Ecdf::from_samples(xs.clone());
        let f = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        // Below the min it is 0, at or above the max it is 1.
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.eval(lo - 1.0), 0.0);
        prop_assert_eq!(e.eval(hi), 1.0);
        // Monotone.
        prop_assert!(e.eval(probe) <= e.eval(probe + 1.0) + 1e-12);
    }

    #[test]
    fn ecdf_quantile_inverts_eval(
        xs in prop::collection::vec(0.0f64..1e3, 1..100),
        q in 0.01f64..1.0,
    ) {
        let e = Ecdf::from_samples(xs);
        let x = e.quantile(q);
        // At least q of the mass is ≤ x.
        prop_assert!(e.eval(x) >= q - 1e-9);
    }

    #[test]
    fn histogram_conserves_mass(
        xs in prop::collection::vec(-10.0f64..10.0, 0..300),
        bins in 1usize..50,
    ) {
        let mut h = Histogram::new(-5.0, 5.0, bins);
        h.extend(xs.iter().copied());
        let in_bins: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(in_bins + h.underflow() + h.overflow(), xs.len() as u64);
        if let Some((_, last)) = h.cdf_points().last() {
            let expect = (in_bins + h.underflow()) as f64 / (xs.len().max(1)) as f64;
            prop_assert!((last - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn time_weighted_is_convex_combination(
        segments in prop::collection::vec((0.0f64..100.0, 0.0f64..10.0), 1..50),
    ) {
        let mut t = TimeWeighted::new();
        for &(v, w) in &segments {
            t.add(v, w);
        }
        let lo = segments.iter().map(|s| s.0).fold(f64::INFINITY, f64::min);
        let hi = segments.iter().map(|s| s.0).fold(f64::NEG_INFINITY, f64::max);
        let m = t.mean();
        if t.total_weight() > 0.0 {
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        } else {
            prop_assert_eq!(m, 0.0);
        }
    }

    #[test]
    fn fitted_samples_are_nonnegative_and_finite(
        mean in 1e-4f64..10.0,
        cv2 in 0.05f64..40.0,
        seed in any::<u64>(),
    ) {
        let f = fit_two_moments(mean, cv2 * mean * mean);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = f.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0, "{} produced {x}", f.family());
        }
    }

    #[test]
    fn ks_distance_is_a_metric_against_self(
        xs in prop::collection::vec(0.0f64..100.0, 2..100),
    ) {
        let e = Ecdf::from_samples(xs);
        // Against its own step function the distance is at most 1/n (the
        // half-open evaluation gap).
        let d = e.ks_distance(|x| e.eval(x));
        prop_assert!(d <= 1.0 / e.len() as f64 + 1e-12, "d = {d}");
    }
}
