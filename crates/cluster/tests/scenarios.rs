//! Hand-built trace scenarios exercising the scheduler's state machine
//! edge cases through [`ClusterSim::with_traces`].

use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim, JobState};
use linger_sim_core::{SimDuration, SimTime};
use linger_workload::{CoarseSample, CoarseTrace};
use std::sync::Arc;

const WINDOWS_PER_MIN: usize = 30;

fn quiet() -> CoarseSample {
    CoarseSample { cpu: 0.02, mem_used_kb: 24_000, keyboard: false }
}

fn busy() -> CoarseSample {
    CoarseSample { cpu: 0.30, mem_used_kb: 28_000, keyboard: true }
}

/// A trace that is idle, except `busy_ranges` of window indices.
fn trace(windows: usize, busy_ranges: &[(usize, usize)]) -> Arc<CoarseTrace> {
    // Lead with a quiet minute so window 0 is already recruited.
    let mut samples = vec![quiet(); WINDOWS_PER_MIN + windows];
    for &(lo, hi) in busy_ranges {
        for w in lo..hi {
            samples[WINDOWS_PER_MIN + w] = busy();
        }
    }
    Arc::new(CoarseTrace::from_samples(samples))
}

fn base_cfg(policy: Policy, nodes: usize, jobs: u32, job_secs: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        policy,
        JobFamily::uniform(jobs, SimDuration::from_secs(job_secs), 8 * 1024),
    );
    cfg.nodes = nodes;
    cfg.max_time = SimTime::from_secs(7200);
    cfg
}

fn sim(
    policy: Policy,
    jobs: u32,
    job_secs: u64,
    node_busy: &[&[(usize, usize)]],
) -> ClusterSim {
    let cfg = base_cfg(policy, node_busy.len(), jobs, job_secs);
    let traces: Vec<Arc<CoarseTrace>> =
        node_busy.iter().map(|ranges| trace(4000, ranges)).collect();
    // All nodes start at the first post-warmup window.
    let offsets = vec![WINDOWS_PER_MIN; node_busy.len()];
    ClusterSim::with_traces(cfg, traces, offsets)
}

#[test]
fn idle_only_run_completes_at_full_speed() {
    let mut s = sim(Policy::LingerLonger, 1, 120, &[&[]]);
    assert!(s.run());
    let j = &s.jobs()[0];
    // A quiet node (2% cpu) delivers nearly the full CPU: completion just
    // above the demand.
    let c = j.completion_time().unwrap().as_secs_f64();
    assert!((120.0..140.0).contains(&c), "completion {c}");
    assert_eq!(j.migrations, 0);
    assert_eq!(j.breakdown.lingering, SimDuration::ZERO);
}

#[test]
fn pause_and_migrate_resumes_in_place_within_grace() {
    // One node; a 40-second busy blip (20 windows) then quiet. With a
    // generous grace period, PM pauses and resumes in place — never
    // migrating (there is nowhere to go anyway).
    let mut cfg = base_cfg(Policy::PauseAndMigrate, 1, 1, 120);
    cfg.params.pause_timeout = SimDuration::from_secs(300);
    let traces = vec![trace(4000, &[(30, 50)])];
    let mut s = ClusterSim::with_traces(cfg, traces, vec![WINDOWS_PER_MIN]);
    assert!(s.run());
    let j = &s.jobs()[0];
    assert!(j.breakdown.paused > SimDuration::ZERO, "must have paused");
    assert_eq!(j.migrations, 0, "resumed in place");
    assert_eq!(j.state, JobState::Done);
}

#[test]
fn pause_and_migrate_requeues_after_grace_with_no_destination() {
    // One node, permanently busy after window 30, short grace: the job
    // pauses, the grace expires, there is no destination, so it returns
    // to the queue and only finishes because lingering is not allowed —
    // i.e. it never finishes within the horizon.
    let mut cfg = base_cfg(Policy::PauseAndMigrate, 1, 1, 300);
    cfg.params.pause_timeout = SimDuration::from_secs(10);
    cfg.max_time = SimTime::from_secs(900);
    let traces = vec![trace(4000, &[(30, 4000)])];
    let mut s = ClusterSim::with_traces(cfg, traces, vec![WINDOWS_PER_MIN]);
    let finished = s.run();
    assert!(!finished, "no idle node ever reappears");
    let j = &s.jobs()[0];
    assert_eq!(j.state, JobState::Queued);
    assert!(j.breakdown.queued > SimDuration::from_secs(300));
}

#[test]
fn linger_longer_rides_out_short_episode_but_migrates_from_long_one() {
    // Two nodes. Node 0 hosts the job, then turns busy for good at window
    // 60; node 1 stays idle. The LL cost model should move the job to
    // node 1 after roughly T_lingr = (1-l)/(h-l)·T_migr of lingering.
    //
    // Placement prefers the lower-cpu idle node, so make node 1 slightly
    // busier at the start to steer the job onto node 0.
    let cfg = base_cfg(Policy::LingerLonger, 2, 1, 600);
    let t_migr = cfg.params.migration.cost(8 * 1024).as_secs_f64();
    let mut n1_samples = vec![quiet(); WINDOWS_PER_MIN + 4000];
    for s in n1_samples.iter_mut().take(WINDOWS_PER_MIN + 4000) {
        s.cpu = 0.05; // idle but measurably busier than node 0's 0.02
    }
    let traces = vec![trace(4000, &[(60, 4000)]), Arc::new(CoarseTrace::from_samples(n1_samples))];
    let mut s = ClusterSim::with_traces(cfg, traces, vec![WINDOWS_PER_MIN; 2]);
    assert!(s.run());
    let j = &s.jobs()[0];
    assert_eq!(j.migrations, 1, "exactly one migration to the idle node");
    assert!(j.breakdown.lingering > SimDuration::ZERO, "lingered first");
    // It lingered at least roughly the cost-model duration:
    // T_lingr = (1-l)/(h-l)·T_migr with h=0.30, l=0.05 → 3.8·T_migr.
    let expected_lingr = (1.0 - 0.05) / (0.30 - 0.05) * t_migr;
    let lingered = j.breakdown.lingering.as_secs_f64();
    assert!(
        lingered >= 0.8 * expected_lingr,
        "lingered {lingered}s vs expected ≥ {expected_lingr}s"
    );
}

#[test]
fn linger_forever_stays_put_through_everything() {
    let mut s = sim(Policy::LingerForever, 1, 300, &[&[(30, 4000)]]);
    assert!(s.run());
    let j = &s.jobs()[0];
    assert_eq!(j.migrations, 0);
    assert!(j.breakdown.lingering > SimDuration::from_secs(100));
    // Progress at 30% local load is ~0.7 of full speed (plus overheads):
    // completion sits between demand/0.75 and demand/0.5.
    let c = j.completion_time().unwrap().as_secs_f64();
    assert!((340.0..650.0).contains(&c), "completion {c}");
}

#[test]
fn immediate_eviction_bounces_between_alternating_nodes() {
    // Node 0 busy during [60, 120); node 1 busy during [0, 60) and idle
    // afterwards: an IE job placed on node 0 is evicted at 60 and should
    // land on node 1.
    let mut s = sim(
        Policy::ImmediateEviction,
        1,
        240,
        &[&[(60, 2000)], &[(0, 55)]],
    );
    assert!(s.run());
    let j = &s.jobs()[0];
    assert!(j.migrations >= 1, "must have evicted at least once");
    assert_eq!(j.breakdown.lingering, SimDuration::ZERO);
    assert!(j.breakdown.migrating > SimDuration::ZERO);
}

#[test]
fn lingering_placement_uses_busy_nodes_when_nothing_idle() {
    // Both nodes busy from the start: LL places anyway (lingering
    // placement), IE leaves the job queued.
    let ranges: &[&[(usize, usize)]] = &[&[(0, 4000)], &[(0, 4000)]];
    let mut ll = sim(Policy::LingerLonger, 1, 120, ranges);
    assert!(ll.run(), "LL must finish by lingering");
    assert!(ll.jobs()[0].breakdown.lingering > SimDuration::ZERO);

    let mut cfg = base_cfg(Policy::ImmediateEviction, 2, 1, 120);
    cfg.max_time = SimTime::from_secs(600);
    let traces: Vec<Arc<CoarseTrace>> = ranges.iter().map(|r| trace(4000, r)).collect();
    let mut ie = ClusterSim::with_traces(cfg, traces, vec![WINDOWS_PER_MIN; 2]);
    assert!(!ie.run(), "IE has no idle node to use");
    assert_eq!(ie.jobs()[0].state, JobState::Queued);
    assert_eq!(ie.jobs()[0].first_start, None);
}

#[test]
fn foreground_delay_accrues_only_while_lingering() {
    let mut busy_host = sim(Policy::LingerForever, 1, 120, &[&[(0, 4000)]]);
    busy_host.run();
    assert!(busy_host.foreground_delay_ratio() > 0.0);

    let mut idle_host = sim(Policy::LingerForever, 1, 120, &[&[]]);
    idle_host.run();
    // Running on a recruited (but 2%-busy) node is "running", not
    // "lingering": no delay is charged.
    assert_eq!(idle_host.jobs()[0].breakdown.lingering, SimDuration::ZERO);
}

#[test]
fn eviction_storms_contend_for_the_shared_network() {
    use linger_cluster::NetworkModel;
    // Many IE jobs on a cluster whose nodes all turn busy at once: every
    // job migrates simultaneously and the 10 Mbps backbone must be split,
    // unlike the unconstrained network.
    let ranges: Vec<Vec<(usize, usize)>> = (0..6)
        .map(|n| if n < 3 { vec![(100, 160)] } else { vec![] })
        .collect();
    let build = |network: Option<NetworkModel>| {
        let mut cfg = base_cfg(Policy::ImmediateEviction, 6, 3, 400);
        cfg.network = network;
        let traces: Vec<Arc<CoarseTrace>> =
            ranges.iter().map(|r| trace(4000, r)).collect();
        ClusterSim::with_traces(cfg, traces, vec![WINDOWS_PER_MIN; 6])
    };
    let mut shared = build(Some(NetworkModel::paper_default()));
    assert!(shared.run());
    let mut unconstrained = build(Some(NetworkModel::unconstrained()));
    assert!(unconstrained.run());
    let sum = |s: &ClusterSim| -> f64 {
        s.jobs().iter().map(|j| j.breakdown.migrating.as_secs_f64()).sum()
    };
    let (shared_migr, fast_migr) = (sum(&shared), sum(&unconstrained));
    // Jobs migrated in both runs…
    assert!(shared.jobs().iter().any(|j| j.migrations > 0));
    // …but the shared backbone made transfers take real time while the
    // unconstrained network is bounded by the fixed processing cost only.
    assert!(
        shared_migr > fast_migr + 10.0,
        "shared {shared_migr}s vs unconstrained {fast_migr}s"
    );
}

#[test]
fn shared_network_matches_fixed_cost_for_a_lone_migration() {
    use linger_cluster::NetworkModel;
    // One job, one migration: the shared network at 3 Mbps per flow must
    // agree with the fixed-cost model within a couple of windows.
    let ranges: Vec<Vec<(usize, usize)>> = vec![vec![(60, 4000)], vec![]];
    let build = |network: Option<NetworkModel>| {
        let mut cfg = base_cfg(Policy::ImmediateEviction, 2, 1, 300);
        cfg.network = network;
        let traces: Vec<Arc<CoarseTrace>> =
            ranges.iter().map(|r| trace(4000, r)).collect();
        ClusterSim::with_traces(cfg, traces, vec![WINDOWS_PER_MIN; 2])
    };
    let mut fixed = build(None);
    assert!(fixed.run());
    let mut shared = build(Some(NetworkModel::paper_default()));
    assert!(shared.run());
    let f = fixed.jobs()[0].breakdown.migrating.as_secs_f64();
    let s = shared.jobs()[0].breakdown.migrating.as_secs_f64();
    assert!((f - s).abs() <= 6.0, "fixed {f}s vs shared {s}s");
}

#[test]
fn staggered_arrivals_are_honored() {
    // Jobs arriving every 100 s must not start before their arrival.
    let mut cfg = base_cfg(Policy::LingerLonger, 2, 3, 60);
    cfg.family = JobFamily::staggered(
        3,
        SimDuration::from_secs(60),
        8 * 1024,
        SimDuration::from_secs(100),
    );
    let traces = vec![trace(4000, &[]), trace(4000, &[])];
    let mut s = ClusterSim::with_traces(cfg, traces, vec![WINDOWS_PER_MIN; 2]);
    assert!(s.run());
    for (i, j) in s.jobs().iter().enumerate() {
        let arrival = 100.0 * i as f64;
        let started = j.first_start.unwrap().as_nanos() as f64 / 1e9;
        assert!(
            started + 1e-9 >= arrival,
            "job {i} started at {started} before arrival {arrival}"
        );
        // Queue time should be tiny (idle nodes waiting).
        assert!(j.breakdown.queued.as_secs_f64() <= 4.0);
    }
}
