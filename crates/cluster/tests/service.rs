//! Open-arrivals service-mode equivalence: the serving loop must keep
//! every determinism contract the closed modes honor. An open run with
//! faults, migrations, and telemetry active produces byte-identical
//! outcomes — id-ordered job records, service counters, fault tallies,
//! and the serialized journal — across shard counts, worker widths, and
//! the slot-recycling hatch, for every admission policy. And a run
//! whose arrival process is silenced reproduces the closed family
//! replay outcome record for record.

use linger::{JobFamily, Policy};
use linger_cluster::{
    AdmissionPolicy, ClusterConfig, ClusterSim, FaultConfig, RunMode, ServiceConfig,
};
use linger_sim_core::{set_default_jobs, SimDuration, SimTime};
use linger_telemetry::Recorder;
use linger_workload::{ArrivalConfig, ArrivalProcess};
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn build(
    admission: AdmissionPolicy,
    policy: Policy,
    nodes: usize,
    load: f64,
    cap: usize,
    horizon_s: u64,
    seed: u64,
    crash_rate: f64,
    fail_prob: f64,
) -> ClusterSim {
    let mut cfg = ClusterConfig::paper(policy, JobFamily::empty());
    cfg.nodes = nodes;
    cfg.trace.duration = SimDuration::from_secs(2 * 3600);
    cfg.seed = seed;
    // `nodes` servers of 120 s jobs: load 1.0 = nodes * 30 jobs/hour.
    cfg.service = ServiceConfig {
        arrivals: ArrivalConfig {
            process: ArrivalProcess::Poisson { rate_per_hour: load * nodes as f64 * 30.0 },
            mean_cpu_secs: 120.0,
            mem_kb: 8 * 1024,
        },
        admission,
        queue_capacity: cap,
        deadline_secs: 90.0,
    };
    cfg.mode = RunMode::Open { horizon: SimTime::from_secs(horizon_s) };
    cfg.faults = FaultConfig {
        crash_rate_per_hour: crash_rate,
        mean_reboot_secs: 120.0,
        migration_failure_prob: fail_prob,
    };
    ClusterSim::new(cfg)
}

/// The run's complete observable outcome as one string: population,
/// accumulators, fault counters, service counters, telemetry journal.
fn run_signature(mut sim: ClusterSim, recycle: bool, shards: usize, width: usize) -> String {
    set_default_jobs(width);
    sim.set_slot_reuse(recycle);
    sim.set_shards(shards);
    sim.set_shard_threading_min(1);
    sim.set_recorder(Recorder::with_capacity(1 << 16));
    sim.run();
    let events = sim
        .recorder()
        .journal()
        .map(|j| serde_json::to_string(&j.snapshot()).unwrap())
        .unwrap_or_default();
    // `peak_live_rows` is the slab-layout witness — it is *supposed* to
    // differ between recycled and append-only layouts, so it stays out
    // of the cross-layout signature.
    let mut service_stats = sim.service_stats().clone();
    service_stats.peak_live_rows = 0;
    let service = serde_json::to_string(&service_stats).unwrap();
    assert!(sim.service_stats().accounting_holds(), "loss accounting must balance");
    format!(
        "{:?}|{}|{}|{:?}|{}|{}",
        sim.jobs(),
        sim.foreign_cpu_delivered().as_nanos(),
        sim.foreground_delay_ratio().to_bits(),
        sim.fault_stats(),
        service,
        events,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every admission policy serves a byte-identical run across shard
    /// counts {1, 4}, worker widths {1, 4}, and both slab layouts, with
    /// faults and telemetry active and the load near saturation.
    #[test]
    fn open_runs_are_byte_identical_across_execution_plans(
        admission_idx in 0usize..4,
        policy_idx in 0usize..4,
        nodes in 8usize..24,
        load_milli in 500u64..2_500,
        seed in 0u64..10_000,
        crash_rate in 0.5f64..8.0,
        fail_prob in 0.05f64..0.4,
    ) {
        let admission = AdmissionPolicy::ALL[admission_idx];
        let policy = Policy::ALL[policy_idx];
        let load = load_milli as f64 / 1000.0;
        let cap = 2 * nodes;
        let mk = || build(admission, policy, nodes, load, cap, 1800, seed, crash_rate, fail_prob);
        let baseline = run_signature(mk(), true, 1, 1);
        for shards in [1usize, 4] {
            for width in [1usize, 4] {
                for recycle in [true, false] {
                    if recycle && shards == 1 && width == 1 {
                        continue;
                    }
                    let other = run_signature(mk(), recycle, shards, width);
                    prop_assert_eq!(
                        &baseline, &other,
                        "{}/{} diverged at shards={} width={} recycle={}",
                        admission.name(), policy, shards, width, recycle
                    );
                }
            }
        }
        set_default_jobs(0);
    }
}

/// A silenced arrival process turns the open loop into a pure drain:
/// seeding the queue with a closed family and running the open horizon
/// reproduces the closed family replay outcome record for record.
#[test]
fn silenced_open_run_matches_closed_family_replay() {
    let family = JobFamily::uniform(12, SimDuration::from_secs(150), 8 * 1024);
    let mk_closed = || {
        let mut cfg = ClusterConfig::paper(Policy::LingerLonger, family.clone());
        cfg.nodes = 8;
        cfg.trace.duration = SimDuration::from_secs(2 * 3600);
        cfg.seed = 23;
        cfg.faults = FaultConfig {
            crash_rate_per_hour: 1.0,
            mean_reboot_secs: 120.0,
            migration_failure_prob: 0.1,
        };
        cfg
    };
    let mut closed = ClusterSim::new(mk_closed());
    assert!(closed.run(), "closed replay must drain the family");

    let mut cfg = mk_closed();
    cfg.service = ServiceConfig::disabled();
    cfg.mode = RunMode::Open { horizon: SimTime::from_secs(4 * 3600) };
    let mut open = ClusterSim::new(cfg);
    open.run();

    assert_eq!(closed.completed(), open.completed());
    assert_eq!(closed.foreign_cpu_delivered(), open.foreign_cpu_delivered());
    assert_eq!(format!("{:?}", closed.jobs()), format!("{:?}", open.jobs()));
    let s = open.service_stats();
    assert_eq!(s.generated, 0, "a disabled process offers nothing");
    assert_eq!(s.shed + s.deficit + s.deadline_dropped, 0);
}
