//! Slot-recycling equivalence: whether a completed job's slab slot is
//! recycled through the free list (the default) or left in place with
//! the respawn appended (`LINGER_NO_SLOT_REUSE=1`), a throughput run
//! must produce byte-identical outcomes — every job record in id order,
//! the throughput/delay accumulators at full bit precision, the fault
//! counters, and the serialized telemetry journal — at any shard count
//! and worker width, with faults and migrations active.

use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim, FaultConfig, RunMode};
use linger_sim_core::{set_default_jobs, SimDuration, SimTime};
use linger_telemetry::Recorder;
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn build(
    policy: Policy,
    nodes: usize,
    jobs: u32,
    demand_s: u64,
    horizon_s: u64,
    seed: u64,
    crash_rate: f64,
    fail_prob: f64,
) -> ClusterSim {
    let mut cfg = ClusterConfig::paper(
        policy,
        JobFamily::uniform(jobs, SimDuration::from_secs(demand_s), 8 * 1024),
    );
    cfg.nodes = nodes;
    cfg.trace.duration = SimDuration::from_secs(3600);
    cfg.seed = seed;
    cfg.mode = RunMode::Throughput { horizon: SimTime::from_secs(horizon_s) };
    cfg.faults = FaultConfig {
        crash_rate_per_hour: crash_rate,
        mean_reboot_secs: 120.0,
        migration_failure_prob: fail_prob,
    };
    ClusterSim::new(cfg)
}

/// The run's complete observable outcome as one string (same shape as
/// the sharding-equivalence signature), plus the live/archived row
/// split so a signature match also proves the population adds up.
fn run_signature(mut sim: ClusterSim, recycle: bool, shards: usize, width: usize) -> String {
    set_default_jobs(width);
    sim.set_slot_reuse(recycle);
    sim.set_shards(shards);
    sim.set_shard_threading_min(1);
    sim.set_recorder(Recorder::with_capacity(1 << 16));
    sim.run();
    let events = sim
        .recorder()
        .journal()
        .map(|j| serde_json::to_string(&j.snapshot()).unwrap())
        .unwrap_or_default();
    // The row split itself differs between the two layouts (that is the
    // point of recycling) — only the id-ordered population and the
    // accumulators must agree, so the split stays out of the signature.
    if recycle {
        assert_eq!(
            sim.live_job_rows() + sim.archived_jobs(),
            sim.jobs().len(),
            "archive + live slots must cover the whole population"
        );
    } else {
        assert_eq!(sim.archived_jobs(), 0, "append-only mode never archives");
    }
    format!(
        "{:?}|{}|{}|{:?}|{}",
        sim.jobs(),
        sim.foreign_cpu_delivered().as_nanos(),
        sim.foreground_delay_ratio().to_bits(),
        sim.fault_stats(),
        events,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Recycled and append-only throughput runs are indistinguishable
    /// from the outside: same records, same journal, same counters —
    /// across shard counts {1, 4} and worker widths {1, 4}.
    #[test]
    fn recycled_and_append_only_runs_are_byte_identical(
        policy_idx in 0usize..4,
        nodes in 8usize..32,
        jobs in 4u32..16,
        demand_s in 60u64..240,
        seed in 0u64..10_000,
        crash_rate in 0.5f64..20.0,
        fail_prob in 0.05f64..0.5,
    ) {
        let policy = Policy::ALL[policy_idx];
        // A horizon several demand-lengths long so completed jobs
        // respawn repeatedly and recycled slots actually get reused.
        let horizon_s = demand_s * 8;
        let mk = || build(policy, nodes, jobs, demand_s, horizon_s, seed, crash_rate, fail_prob);
        let baseline = run_signature(mk(), false, 1, 1);
        for shards in [1usize, 4] {
            for width in [1usize, 4] {
                let recycled = run_signature(mk(), true, shards, width);
                prop_assert_eq!(
                    &baseline, &recycled,
                    "{} diverged with recycling at shards={} width={}",
                    policy, shards, width
                );
                let appended = run_signature(mk(), false, shards, width);
                prop_assert_eq!(
                    &baseline, &appended,
                    "{} diverged append-only at shards={} width={}",
                    policy, shards, width
                );
            }
        }
        set_default_jobs(0);
    }
}

/// Deterministic (non-proptest) turnover check: a long-horizon recycled
/// run keeps the hot lanes pinned at the initial job count while the
/// append-only twin grows them with every respawn.
#[test]
fn recycling_pins_live_rows_under_turnover() {
    let build_one = |recycle: bool| {
        let mut sim = build(Policy::LingerLonger, 24, 12, 90, 1800, 7, 2.0, 0.1);
        sim.set_slot_reuse(recycle);
        sim.run();
        sim
    };
    let recycled = build_one(true);
    let appended = build_one(false);
    assert!(recycled.completed() >= 24, "horizon must produce real turnover");
    assert_eq!(recycled.completed(), appended.completed());
    assert_eq!(recycled.live_job_rows(), 12, "live rows stay at the family size");
    assert_eq!(recycled.archived_jobs(), recycled.completed());
    assert_eq!(
        appended.live_job_rows(),
        12 + appended.completed(),
        "append-only layout grows a row per respawn"
    );
    assert_eq!(format!("{:?}", recycled.jobs()), format!("{:?}", appended.jobs()));
}
