//! Cluster-simulator invariant tests: state-machine soundness across
//! randomized configurations.

use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim, JobState, RunMode};
use linger_sim_core::{SimDuration, SimTime};
use proptest::prelude::*;

fn cfg(policy: Policy, nodes: usize, jobs: u32, demand_s: u64, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        policy,
        JobFamily::uniform(jobs, SimDuration::from_secs(demand_s), 8 * 1024),
    );
    cfg.nodes = nodes;
    cfg.trace.duration = SimDuration::from_secs(3600);
    cfg.seed = seed;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn family_runs_conserve_and_terminate(
        policy_idx in 0usize..4,
        nodes in 4usize..12,
        jobs in 1u32..16,
        demand_s in 30u64..200,
        seed in 0u64..1000,
    ) {
        let policy = Policy::ALL[policy_idx];
        let mut sim = ClusterSim::new(cfg(policy, nodes, jobs, demand_s, seed));
        prop_assert!(sim.run(), "{policy} did not terminate");
        // Conservation: delivered CPU equals total demand.
        let demand = jobs as f64 * demand_s as f64;
        prop_assert!((sim.foreign_cpu_delivered().as_secs_f64() - demand).abs() < 1e-6);
        for j in sim.jobs() {
            prop_assert_eq!(j.state, JobState::Done);
            prop_assert_eq!(j.remaining, SimDuration::ZERO);
            // Execution never precedes arrival; completion never precedes
            // first start.
            let fs = j.first_start.unwrap();
            prop_assert!(fs >= j.spec.arrival);
            prop_assert!(j.completed_at.unwrap() >= fs);
            // Jobs never run faster than their demand.
            prop_assert!(
                j.execution_time().unwrap() >= SimDuration::from_secs(demand_s),
                "{policy}: exec {:?} < demand", j.execution_time()
            );
            // Non-lingering policies never accrue linger time.
            if !policy.lingers() {
                prop_assert_eq!(j.breakdown.lingering, SimDuration::ZERO);
            }
            if policy != Policy::PauseAndMigrate {
                prop_assert_eq!(j.breakdown.paused, SimDuration::ZERO);
            }
            if policy == Policy::LingerForever {
                prop_assert_eq!(j.migrations, 0);
            }
        }
    }

    #[test]
    fn throughput_runs_hold_population(
        policy_idx in 0usize..4,
        seed in 0u64..100,
    ) {
        let policy = Policy::ALL[policy_idx];
        let mut c = cfg(policy, 6, 6, 60, seed);
        c.mode = RunMode::Throughput { horizon: SimTime::from_secs(1200) };
        let mut sim = ClusterSim::new(c);
        sim.run();
        let live = sim.jobs().iter().filter(|j| j.state != JobState::Done).count();
        prop_assert_eq!(live, 6, "{} population drifted", policy);
        // Delivered CPU is bounded by capacity.
        prop_assert!(sim.foreign_cpu_delivered().as_secs_f64() <= 6.0 * 1200.0 + 1e-6);
    }

    #[test]
    fn identical_seeds_are_identical_runs(
        policy_idx in 0usize..4,
        seed in 0u64..100,
    ) {
        let policy = Policy::ALL[policy_idx];
        let run = || {
            let mut sim = ClusterSim::new(cfg(policy, 6, 8, 90, seed));
            sim.run();
            sim.jobs()
                .iter()
                .map(|j| (j.completed_at.unwrap().as_nanos(), j.migrations))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
