//! Workload-realization cache soundness: a cluster run built through the
//! shared [`TraceLibrary`] must be indistinguishable from one that
//! synthesizes its own traces, and eviction mid-sweep must never change
//! results — only cost.

use linger::{JobFamily, Policy};
use linger_cluster::{evaluate_policy, ClusterConfig, ClusterSim};
use linger_sim_core::SimDuration;
use linger_workload::{TraceLibrary, WorkloadRealization};
use proptest::prelude::*;

fn cfg(policy: Policy, nodes: usize, jobs: u32, demand_s: u64, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        policy,
        JobFamily::uniform(jobs, SimDuration::from_secs(demand_s), 8 * 1024),
    );
    cfg.nodes = nodes;
    cfg.trace.duration = SimDuration::from_secs(1800);
    cfg.seed = seed;
    cfg
}

/// Everything observable about a finished run, exactly.
fn fingerprint(sim: &ClusterSim) -> (String, u64) {
    let jobs = sim
        .jobs()
        .iter()
        .map(|j| (j.state, j.completed_at, j.migrations, j.remaining))
        .collect::<Vec<_>>();
    (format!("{jobs:?}"), sim.foreign_cpu_delivered().as_nanos())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A cached run (`ClusterSim::new`, global library) and a
    /// cache-bypassing run (`with_traces` over a freshly synthesized
    /// realization) are bit-identical.
    #[test]
    fn cached_and_bypassing_runs_are_identical(
        policy_idx in 0usize..4,
        nodes in 2usize..10,
        jobs in 1u32..8,
        demand_s in 30u64..120,
        seed in 0u64..500,
    ) {
        let policy = Policy::ALL[policy_idx];
        let c = cfg(policy, nodes, jobs, demand_s, seed);

        let mut cached = ClusterSim::new(c.clone());
        prop_assert!(cached.run());

        let fresh = WorkloadRealization::synthesize(&c.trace, c.seed, c.nodes);
        let mut bypass =
            ClusterSim::with_traces(c, fresh.traces().to_vec(), fresh.offsets().to_vec());
        prop_assert!(bypass.run());

        prop_assert_eq!(fingerprint(&cached), fingerprint(&bypass));
    }

    /// `PolicyMetrics` computed against a warm cache equal those computed
    /// after `clear()` forces every lookup to miss and resynthesize.
    #[test]
    fn policy_metrics_survive_a_cache_flush(
        policy_idx in 0usize..4,
        nodes in 2usize..8,
        seed in 0u64..200,
    ) {
        let policy = Policy::ALL[policy_idx];
        let family = JobFamily::uniform(4, SimDuration::from_secs(60), 8 * 1024);
        let warm = evaluate_policy(policy, family.clone(), nodes, seed);
        TraceLibrary::global().clear();
        let cold = evaluate_policy(policy, family, nodes, seed);
        prop_assert_eq!(format!("{warm:?}"), format!("{cold:?}"));
    }

    /// A sweep run against a library so small it evicts on every insert
    /// produces the same runs as one with an unbounded budget: eviction
    /// changes cost, never results.
    #[test]
    fn eviction_mid_sweep_never_changes_results(
        nodes in 2usize..8,
        seed in 0u64..200,
    ) {
        let tiny = TraceLibrary::with_max_bytes(1);
        let roomy = TraceLibrary::new();
        // Interleave two keys so the tiny library keeps evicting the one
        // it is about to need again.
        for s in [seed, seed + 1, seed, seed + 1, seed] {
            let c = cfg(Policy::LingerLonger, nodes, 3, 60, s);
            let mut evicted = ClusterSim::with_realization(
                c.clone(),
                &tiny.realize(&c.trace, c.seed, c.nodes),
            );
            let mut kept = ClusterSim::with_realization(
                c.clone(),
                &roomy.realize(&c.trace, c.seed, c.nodes),
            );
            prop_assert!(evicted.run());
            prop_assert!(kept.run());
            prop_assert_eq!(fingerprint(&evicted), fingerprint(&kept));
        }
        let stats = tiny.stats();
        prop_assert!(stats.evictions > 0, "tiny library never evicted: {stats:?}");
    }
}
