//! Streamed-window equivalence: the chunked window pipeline is an
//! execution knob, never a semantic one. A simulation fed by a
//! `WindowCursor` at any chunk size, on any worker width and shard
//! count, with fault injection active and telemetry journaling, must
//! reproduce the monolithic-table run exactly — job for job, counter
//! for counter, event for event.

use linger::{JobFamily, Policy};
use linger_cluster::{ClusterConfig, ClusterSim, FaultConfig};
use linger_sim_core::{set_default_jobs, SimDuration};
use linger_telemetry::Recorder;
use linger_workload::WorkloadRealization;
use proptest::prelude::*;

fn config(
    policy: Policy,
    nodes: usize,
    jobs: u32,
    demand_s: u64,
    seed: u64,
    crash_rate: f64,
    fail_prob: f64,
) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(
        policy,
        JobFamily::uniform(jobs, SimDuration::from_secs(demand_s), 8 * 1024),
    );
    cfg.nodes = nodes;
    cfg.trace.duration = SimDuration::from_secs(3600);
    cfg.seed = seed;
    cfg.faults = FaultConfig {
        crash_rate_per_hour: crash_rate,
        mean_reboot_secs: 120.0,
        migration_failure_prob: fail_prob,
    };
    cfg
}

/// The run's complete observable outcome as one string: every job
/// record, the throughput/delay accumulators at full f64 bit precision,
/// the fault counters, and the serialized telemetry journal.
fn run_signature(cfg: ClusterConfig, real: &WorkloadRealization, shards: usize, width: usize) -> String {
    set_default_jobs(width);
    let mut sim = ClusterSim::with_realization(cfg, real);
    sim.set_shards(shards);
    // Force the scoped-thread path even on these small clusters, so
    // width > 1 actually exercises it.
    sim.set_shard_threading_min(1);
    sim.set_recorder(Recorder::with_capacity(1 << 16));
    sim.run();
    let events = sim
        .recorder()
        .journal()
        .map(|j| serde_json::to_string(&j.snapshot()).unwrap())
        .unwrap_or_default();
    format!(
        "{:?}|{}|{}|{:?}|{}",
        sim.jobs(),
        sim.foreign_cpu_delivered().as_nanos(),
        sim.foreground_delay_ratio().to_bits(),
        sim.fault_stats(),
        events,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn any_chunk_size_width_and_shards_reproduce_the_monolithic_run(
        policy_idx in 0usize..4,
        nodes in 8usize..32,
        jobs in 4u32..16,
        demand_s in 60u64..240,
        seed in 0u64..10_000,
        crash_rate in 0.5f64..20.0,
        fail_prob in 0.05f64..0.5,
    ) {
        let policy = Policy::ALL[policy_idx];
        let cfg = config(policy, nodes, jobs, demand_s, seed, crash_rate, fail_prob);
        let period = cfg.trace.sample_count();
        let mono = WorkloadRealization::synthesize_monolithic(&cfg.trace, seed, nodes);
        let baseline = run_signature(cfg.clone(), &mono, 1, 1);
        for chunk in [1usize, 7, 64, period] {
            let streamed =
                WorkloadRealization::synthesize_streamed(&cfg.trace, seed, nodes, chunk);
            prop_assert!(streamed.stream_spec().is_some());
            for shards in [1usize, 4] {
                for width in [1usize, 4] {
                    let got = run_signature(cfg.clone(), &streamed, shards, width);
                    prop_assert_eq!(
                        &baseline, &got,
                        "{} diverged at chunk={} shards={} width={}",
                        policy, chunk, shards, width
                    );
                }
            }
        }
        set_default_jobs(0);
    }
}
