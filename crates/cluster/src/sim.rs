//! The cluster scheduling simulator (paper Sec 4.2).
//!
//! Time advances in 2-second windows — the sampling period of the coarse
//! traces driving each node. Within a window, a hosted foreign job earns
//! CPU at the expected fine-grain stealing rate for the node's current
//! utilization ([`linger_node::steal_rate`], the closed-form mean of the
//! burst-accurate executor; the `cluster` bench contains the ablation
//! comparing the two). Policy decisions — eviction, pausing, the
//! Linger-Longer migration test — are evaluated at window boundaries.
//!
//! One foreign job runs per node at a time (Sec 3.2: free memory
//! "sufficient to accommodate one compute-bound foreign job of moderate
//! size"), gated by the two-pool memory model's admission check.
//!
//! ## Sharded window sweep
//!
//! The per-window sweeps are organised as *classify → merge*: the node-id
//! space is partitioned into word-aligned shards ([`ShardPlan`]) that
//! each scan their own slice of the hot struct-of-arrays slabs and record
//! per-node **intents** (pure functions of the window-start state), and a
//! single sequential pass then applies the intents in ascending node
//! order — exactly the order the historical single loop visited nodes.
//! Every side effect (index mutations, queue pushes, f64 accumulations,
//! telemetry emission) happens only in the merge, so the produced bytes
//! are identical at any shard count and any worker count; shards merely
//! decide which execution unit *computed* each intent. Shards run on
//! scoped threads only for large clusters (see
//! [`ClusterSim::set_shards`]); otherwise they run in-line, through the
//! same buffers.

use crate::config::{AdmissionPolicy, ClusterConfig, RunMode};
use crate::faults::{FaultEventKind, FaultModel, FaultStats};
use crate::service::{effective_queue_capacity, queue_budget_from_env, ServiceStats};
use crate::state::{JobCold, JobRecord, JobSlabs, JobState, NodeId, NodeSlabs, NO_JOB, NO_NODE};
use linger::cost::should_migrate;
use linger::{JobId, JobSpec, Policy};
use linger_node::steal_rate;
use linger_sim_core::{
    default_jobs, prefetch_read, NodeIndex, ShardPlan, SimDuration, SimTime,
};
use linger_telemetry::{DecisionAction, Event, EventKind, JournalCounts, Recorder};
use linger_workload::{
    ArrivalGenerator, CoarseTrace, RealizeOrigin, TraceLibrary, TwoPoolMemory, WindowCursor,
    WindowTable, WorkloadRealization, SAMPLE_PERIOD_SECS,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// One simulation window (= the coarse-trace sampling period).
pub const WINDOW: SimDuration = SimDuration::from_secs(SAMPLE_PERIOD_SECS);

/// Nodes below this count never spawn shard worker threads (the per-
/// window spawn cost would dwarf the sweep itself). Overridable via
/// `LINGER_SHARD_THREAD_MIN` and [`ClusterSim::set_shard_threading_min`].
const SHARD_THREAD_MIN_NODES: usize = 8192;

/// Default shard count for an `n`-node cluster: one shard per ~8k nodes,
/// capped so merge buffers stay small. Purely an execution choice — any
/// value produces the same bytes.
fn default_shard_count(n: usize) -> usize {
    (n / 8192).clamp(1, 16)
}

/// FNV-1a over the JSON serialization of a config — a stable name for
/// its telemetry spill file.
fn config_digest(cfg: &ClusterConfig) -> u64 {
    let text = serde_json::to_string(cfg).unwrap_or_default();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What the decision sweep resolved for one busy node — recorded by the
/// owning shard, applied in ascending node order by the merge.
#[derive(Debug, Clone, Copy)]
struct DecideIntent {
    ni: u32,
    ji: u32,
    kind: DecideKind,
}

#[derive(Debug, Clone, Copy)]
enum DecideKind {
    /// A running job's node turned non-idle: apply the policy reaction.
    NonIdle,
    /// A lingering job's node turned idle again.
    ResumeLinger,
    /// Still lingering on a non-idle node under LL: run the migration
    /// test (destination choice needs the live candidate set, so it
    /// happens in the merge).
    LingerCheck,
    /// A paused job's node turned idle again.
    ResumePause,
    /// A paused job's grace period expired.
    PauseEvict,
}

/// Progress computed for one busy node: the expensive per-node math
/// (steal-rate interpolation, residency, completion fraction) done in the
/// owning shard; the merge only applies exact integer gains and
/// pre-computed f64 terms in ascending node order.
#[derive(Debug, Clone, Copy)]
struct ProgressIntent {
    ni: u32,
    ji: u32,
    state: JobState,
    kind: ProgressKind,
    /// CPU earned this window (integer nanoseconds — exact).
    gain: SimDuration,
    /// Fraction of the window elapsed at completion (Complete only).
    frac: f64,
    /// Foreground delay seconds to accumulate (Lingering only).
    delay_add: f64,
    has_delay: bool,
}

#[derive(Debug, Clone, Copy)]
enum ProgressKind {
    /// Paused/migrating-in: account the window, no progress.
    Account,
    /// Earns `gain`, does not finish this window.
    Advance,
    /// Finishes `frac` of the way into the window.
    Complete,
}

/// Where the per-window `(cpu, idle, mem)` rows of phase 0 come from.
/// Purely an execution choice — all three sources produce identical
/// rows for the same realization (`stream::tests` and the cluster
/// streaming suite prove it bit-for-bit).
enum WindowSource {
    /// Fully materialized window-major table, `Arc`-shared with every
    /// other simulator over the same realization.
    Table(Arc<WindowTable>),
    /// Memory-bounded chunked cursor over resumable per-node trace
    /// streams; chunks are built lazily just ahead of the sweep.
    Streamed(Box<WindowCursor>),
    /// Mixed-period traces: per-node trace lookups every window.
    TraceOnly,
}

/// The cluster simulation.
pub struct ClusterSim {
    cfg: ClusterConfig,
    /// Per-node hot/cold slabs (occupancy, memory; traces behind them).
    nodes: NodeSlabs,
    /// Per-job hot/cold slabs; materialized via [`Self::jobs`].
    jobs: JobSlabs,
    queue: VecDeque<usize>,
    window: usize,
    /// Total foreign CPU delivered (throughput numerator).
    foreign_cpu: SimDuration,
    /// Local busy seconds across all nodes (delay-ratio denominator).
    local_busy_secs: f64,
    /// Added foreground latency seconds (delay-ratio numerator).
    local_delay_secs: f64,
    /// Next id for respawned jobs in throughput mode.
    next_job_id: u32,
    /// Completed job count.
    completed: usize,
    /// Nodes with no hosted foreign job, maintained incrementally at
    /// every claim/release (replaces the per-query full scan).
    free: NodeIndex,
    /// Complement of `free`: nodes hosting (or reserved for) a job.
    busy: NodeIndex,
    /// `free ∧ idle` — the destination-candidate set every placement
    /// and migration query starts from. Rebuilt from the window's idle
    /// words at the top of each window, then maintained at every
    /// claim/release, so a saturated cluster answers "no idle node" in
    /// O(1) instead of rescanning all free nodes.
    free_idle: NodeIndex,
    /// Per-window scratch: the recruitment idle flags of every node at
    /// the current window as packed bit words, and the CPU demands.
    idle_words: Vec<u64>,
    cpu_w: Vec<f64>,
    /// Scratch for the not-yet-placeable queue tail.
    place_scratch: VecDeque<usize>,
    /// Superset of the jobs currently in [`JobState::Migrating`] —
    /// appended to on every migration start, compacted each window — so
    /// transfer progress and arrivals never rescan the ever-growing job
    /// table (throughput mode appends a record per respawn).
    migrating: Vec<usize>,
    /// Per-window row source: shared table, streamed chunks, or raw
    /// per-node traces (mixed periods).
    windows: WindowSource,
    /// Word-aligned partition of the node-id space driving the
    /// classify phase of every sweep.
    plan: ShardPlan,
    /// Reusable per-shard intent buffers.
    decide_bufs: Vec<Vec<DecideIntent>>,
    progress_bufs: Vec<Vec<ProgressIntent>>,
    /// Minimum cluster size before shards run on scoped threads.
    thread_min: usize,
    /// Pre-materialized crash/reboot schedule and migration-failure
    /// draws; empty/quiet when `cfg.faults` is disabled.
    faults: FaultModel,
    /// Nodes currently down. A crashed node is in none of `free`,
    /// `free_idle`, or `busy` until its reboot event fires.
    crashed: NodeIndex,
    /// Cursor into `faults.events()` (sorted by window).
    fault_cursor: usize,
    /// Fault counters accumulated over the run.
    fault_stats: FaultStats,
    /// Event recorder — disabled by default (one `Option` branch per
    /// emission site; the event closures never run). Telemetry only
    /// *reads* simulation state and simulated time, never RNG streams,
    /// so attaching a recorder cannot change any result.
    telemetry: Recorder,
    /// Counters already flushed to the global registry (watermark, so
    /// repeated `run()` calls never double-count).
    telemetry_absorbed: JournalCounts,
    /// Open-arrivals generator, present only in [`RunMode::Open`].
    arrivals: Option<ArrivalGenerator>,
    /// Service-mode counters and steady-state estimators.
    service: ServiceStats,
    /// Effective admission-queue capacity, entries (`usize::MAX` when
    /// admission is open/unbounded or the run is closed).
    queue_cap: usize,
    /// Completion count at the previous window boundary (per-window
    /// throughput deltas for the batch-means estimator).
    last_completed: usize,
}

impl ClusterSim {
    /// Build the simulation: fetch (or synthesize) the owner-workload
    /// realization for `(cfg.trace, cfg.seed, cfg.nodes)` from the shared
    /// [`TraceLibrary`] and queue the whole family at its arrival times.
    ///
    /// Common random numbers make the realization independent of policy
    /// and cost parameters, so repeated constructions across a sweep
    /// reuse one synthesis; results are identical either way.
    pub fn new(cfg: ClusterConfig) -> Self {
        let (real, origin) =
            TraceLibrary::global().realize_with_origin(&cfg.trace, cfg.seed, cfg.nodes);
        let sim = Self::with_realization(cfg, &real);
        sim.telemetry.record(|| {
            Event::new(0, 0, match origin {
                RealizeOrigin::Hit => EventKind::TraceCacheHit,
                RealizeOrigin::Miss => EventKind::TraceCacheMiss,
                RealizeOrigin::Bypass => EventKind::TraceCacheBypass,
            })
        });
        sim
    }

    /// Build the simulation over a shared workload realization (cached or
    /// freshly synthesized) — traces, offsets, and the prebuilt window
    /// table are shared by `Arc`, never copied per policy.
    ///
    /// # Panics
    /// If the realization's node count differs from `cfg.nodes`.
    pub fn with_realization(cfg: ClusterConfig, real: &WorkloadRealization) -> Self {
        assert_eq!(real.nodes(), cfg.nodes, "realization must cover cfg.nodes");
        if real.stream_spec().is_some() {
            // Streamed realization: no per-node traces exist. Node state
            // comes from the chunk rows; initial memory demand is the
            // window-0 row (by construction the same bytes a monolithic
            // table's `mem_row(0)` would hold).
            let mut cursor = real.cursor().expect("streamed realization has a cursor");
            let slabs = {
                let chunk = cursor.ensure(0);
                NodeSlabs::traceless(chunk.mem_row(0), cfg.node_memory_kb)
            };
            return Self::assemble(cfg, slabs, WindowSource::Streamed(Box::new(cursor)));
        }
        let slabs = NodeSlabs::new(
            real.traces().to_vec(),
            real.offsets().to_vec(),
            cfg.node_memory_kb,
        );
        let source = match real.window_table().cloned() {
            Some(tbl) => WindowSource::Table(tbl),
            None => WindowSource::TraceOnly,
        };
        Self::assemble(cfg, slabs, source)
    }

    /// Build the simulation over explicit per-node traces and start
    /// offsets — for measured trace data or hand-built test scenarios.
    ///
    /// # Panics
    /// If the number of traces or offsets differs from `cfg.nodes`.
    pub fn with_traces(
        cfg: ClusterConfig,
        traces: Vec<Arc<CoarseTrace>>,
        offsets: Vec<usize>,
    ) -> Self {
        assert_eq!(traces.len(), cfg.nodes, "one trace per node");
        assert_eq!(offsets.len(), cfg.nodes, "one offset per node");
        let source = match WindowTable::build(&traces, &offsets).map(Arc::new) {
            Some(tbl) => WindowSource::Table(tbl),
            None => WindowSource::TraceOnly,
        };
        let slabs = NodeSlabs::new(traces, offsets, cfg.node_memory_kb);
        Self::assemble(cfg, slabs, source)
    }

    fn assemble(cfg: ClusterConfig, nodes: NodeSlabs, windows: WindowSource) -> Self {
        assert_eq!(nodes.len(), cfg.nodes, "one node slab entry per node");
        let jobs = JobSlabs::from_specs(cfg.family.jobs());
        let queue = (0..jobs.len()).collect();
        let next_job_id = jobs.len() as u32;
        let n = cfg.nodes;
        // The fault schedule spans the run's hard horizon; events are a
        // pure function of (faults config, seed, node), so two runs of
        // the same config realize identical failures.
        let horizon = match cfg.mode {
            RunMode::Family => cfg.max_time,
            RunMode::Throughput { horizon } | RunMode::Open { horizon } => horizon,
        };
        let max_windows = (horizon.as_nanos() / WINDOW.as_nanos()) as usize + 1;
        let faults = FaultModel::new(cfg.faults, cfg.seed, n, max_windows);
        let shards = std::env::var("LINGER_SHARDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| default_shard_count(n));
        let thread_min = std::env::var("LINGER_SHARD_THREAD_MIN")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(SHARD_THREAD_MIN_NODES);
        let plan = ShardPlan::new(n, shards.max(1));
        let shard_count = plan.shard_count().max(1);
        // Open-arrivals wiring: the generator exists only in Open mode,
        // and the admission queue is bounded only when a bounded policy
        // asks for it — the capacity is the configured entry count
        // clamped by the `LINGER_QUEUE_BUDGET` byte budget.
        let (arrivals, queue_cap, queue_budget) = match cfg.mode {
            RunMode::Open { .. } => {
                let generator = ArrivalGenerator::new(&cfg.service.arrivals, cfg.seed);
                let budget = queue_budget_from_env();
                let cap = if cfg.service.admission == AdmissionPolicy::Open {
                    usize::MAX
                } else {
                    effective_queue_capacity(cfg.service.queue_capacity, budget)
                };
                (Some(generator), cap, budget)
            }
            _ => (None, usize::MAX, 0),
        };
        ClusterSim {
            cfg,
            nodes,
            jobs,
            queue,
            window: 0,
            foreign_cpu: SimDuration::ZERO,
            local_busy_secs: 0.0,
            local_delay_secs: 0.0,
            next_job_id,
            completed: 0,
            free: NodeIndex::full(n),
            busy: NodeIndex::new(n),
            free_idle: NodeIndex::new(n),
            idle_words: vec![0; n.div_ceil(64).max(1)],
            cpu_w: vec![0.0; n],
            place_scratch: VecDeque::new(),
            migrating: Vec::new(),
            windows,
            plan,
            decide_bufs: vec![Vec::new(); shard_count],
            progress_bufs: vec![Vec::new(); shard_count],
            thread_min,
            faults,
            crashed: NodeIndex::new(n),
            fault_cursor: 0,
            fault_stats: FaultStats::default(),
            telemetry: Recorder::from_env(),
            telemetry_absorbed: JournalCounts::default(),
            arrivals,
            service: ServiceStats::new(queue_cap, queue_budget),
            queue_cap,
            last_completed: 0,
        }
    }

    /// Repartition the node-id space into (at most) `shards` shards.
    ///
    /// An execution knob only: any shard count produces byte-identical
    /// results, because all side effects are applied by the sequential
    /// index-ordered merge. Defaults to one shard per ~8k nodes;
    /// `LINGER_SHARDS` overrides the default at construction.
    pub fn set_shards(&mut self, shards: usize) {
        self.plan = ShardPlan::new(self.nodes.len(), shards.max(1));
        let shard_count = self.plan.shard_count().max(1);
        self.decide_bufs = vec![Vec::new(); shard_count];
        self.progress_bufs = vec![Vec::new(); shard_count];
    }

    /// Builder-style [`Self::set_shards`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.set_shards(shards);
        self
    }

    /// Lower the node-count threshold above which shards run on scoped
    /// worker threads (default 8192; `LINGER_SHARD_THREAD_MIN` overrides
    /// it at construction). Tests use this to exercise the threaded path
    /// on small clusters; results are identical either way.
    pub fn set_shard_threading_min(&mut self, min_nodes: usize) {
        self.thread_min = min_nodes;
    }

    /// Worker threads to use for the classify phase this window: 1 (run
    /// shards in-line) unless the cluster is large, several shards exist,
    /// and the process worker pool is wider than one.
    fn shard_workers(&self) -> usize {
        if self.plan.shard_count() <= 1 || self.nodes.len() < self.thread_min {
            1
        } else {
            default_jobs().min(self.plan.shard_count())
        }
    }

    /// Attach (or detach) an event recorder, replacing the one built
    /// from `LINGER_TELEMETRY` at construction.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.telemetry = recorder;
    }

    /// Builder-style [`Self::set_recorder`].
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// The attached recorder (disabled unless enabled by environment or
    /// [`Self::set_recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.telemetry
    }

    /// An event stamped with the current window and `t`.
    fn event_at(&self, t: SimTime, kind: EventKind) -> Event {
        Event::new(self.window as u32, t.as_nanos(), kind)
    }

    /// Current simulated time (start of the current window).
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + WINDOW.mul_f64(self.window as f64)
    }

    /// Materialized records of the full job population — archived and
    /// live — in ascending id order (inspect after a run). With the
    /// append-only layout, slab order *was* id order, so this is the
    /// same vector it always produced; slot recycling only changes
    /// which slot a live record comes from, never its place here.
    pub fn jobs(&self) -> Vec<JobRecord> {
        let mut records = Vec::with_capacity(self.jobs.total_jobs());
        records.extend(self.jobs.archived().iter().cloned());
        // Slots parked on the free list are stale copies of records
        // already in the archive (open mode retires without a respawn
        // to reuse the slot right away) — skip them.
        let mut parked: Vec<u32> = self.jobs.parked_slots().to_vec();
        parked.sort_unstable();
        for ji in 0..self.jobs.len() {
            if parked.binary_search(&(ji as u32)).is_ok() {
                continue;
            }
            let mut rec = self.jobs.record(ji);
            // Queue time accrues lazily (one multiply at dequeue); jobs
            // still on the queue carry an unflushed span — patch it in
            // here so the materialized breakdowns match the historic
            // per-window walk at any point of the run. Archived records
            // never need the patch: retirement implies completion.
            if rec.state == JobState::Queued {
                let from = self.jobs.queued_from[ji].max(self.arrival_window(ji));
                let w = self.window as u32;
                if w > from {
                    rec.breakdown.queued += Self::window_span(w - from);
                }
            }
            records.push(rec);
        }
        records.sort_unstable_by_key(|r| r.spec.id.0);
        records
    }

    /// Total foreign CPU delivered so far.
    pub fn foreign_cpu_delivered(&self) -> SimDuration {
        self.foreign_cpu
    }

    /// Cluster-wide foreground delay ratio so far (the "<0.5% slowdown"
    /// headline).
    pub fn foreground_delay_ratio(&self) -> f64 {
        if self.local_busy_secs == 0.0 {
            0.0
        } else {
            self.local_delay_secs / self.local_busy_secs
        }
    }

    /// Number of completed jobs.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Live hot-lane rows in the job slabs — the recycling invariant is
    /// that this stays `O(active jobs)` no matter how many jobs have
    /// flowed through a throughput run.
    pub fn live_job_rows(&self) -> usize {
        self.jobs.len()
    }

    /// Completed jobs whose records moved to the cold archive.
    pub fn archived_jobs(&self) -> usize {
        self.jobs.archived_len()
    }

    /// Resident bytes of the live job lanes (see
    /// [`crate::state::JobSlabs::live_lane_bytes`]).
    pub fn live_lane_bytes(&self) -> usize {
        self.jobs.live_lane_bytes()
    }

    /// Whether completed slots are recycled through the free list (on by
    /// default; `LINGER_NO_SLOT_REUSE=1` or [`Self::set_slot_reuse`]
    /// selects the historical append-only layout).
    pub fn slot_reuse(&self) -> bool {
        self.jobs.slot_reuse()
    }

    /// Force the slot-reuse mode for this sim (used by the equivalence
    /// tests and benches; outputs are byte-identical either way).
    pub fn set_slot_reuse(&mut self, on: bool) {
        self.jobs.set_slot_reuse(on);
    }

    /// Fault-injection counters accumulated so far (all zero when
    /// `cfg.faults` is disabled).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Service-mode counters and steady-state estimators (inert zeros
    /// unless the run mode is [`RunMode::Open`]).
    pub fn service_stats(&self) -> &ServiceStats {
        &self.service
    }

    /// Wall-clock seconds spent building streamed window chunks so far
    /// (0 for table-backed and trace-only realizations). Chunk builds
    /// are deferred synthesis, so harnesses attribute this to setup and
    /// subtract it from the sweep's run time.
    pub fn stream_build_secs(&self) -> f64 {
        match &self.windows {
            WindowSource::Streamed(cursor) => cursor.build_secs(),
            _ => 0.0,
        }
    }

    /// Number of window chunks built so far (0 unless streamed).
    pub fn stream_chunks_built(&self) -> u64 {
        match &self.windows {
            WindowSource::Streamed(cursor) => cursor.chunks_built(),
            _ => 0,
        }
    }

    /// Resident bytes of the streamed window arena — chunk plus per-node
    /// stream states and scratch (0 unless streamed).
    pub fn stream_arena_bytes(&self) -> usize {
        match &self.windows {
            WindowSource::Streamed(cursor) => cursor.approx_bytes(),
            _ => 0,
        }
    }

    /// Recruitment idle flag of node `ni` at the current window.
    #[inline]
    fn idle_at(&self, ni: usize) -> bool {
        self.idle_words[ni / 64] & (1u64 << (ni % 64)) != 0
    }

    /// Run to the configured termination condition. Returns `true` on
    /// normal completion, `false` if the family-mode safety horizon hit.
    pub fn run(&mut self) -> bool {
        let done = loop {
            match self.cfg.mode {
                RunMode::Family => {
                    if self.completed == self.jobs.total_jobs() {
                        break true;
                    }
                    if self.now() >= self.cfg.max_time {
                        break false;
                    }
                }
                RunMode::Throughput { horizon } | RunMode::Open { horizon } => {
                    if self.now() >= horizon {
                        break true;
                    }
                }
            }
            self.step();
        };
        self.flush_telemetry();
        done
    }

    /// Merge this run's counters into the process-wide registry (once —
    /// a watermark guards repeated calls) and spill the journal as JSON
    /// lines when `LINGER_TELEMETRY_DIR` is set. The spill file name is
    /// a digest of the serialized configuration, so identical configs
    /// overwrite each other with identical bytes and a sweep stays
    /// race-free at any `--jobs`.
    fn flush_telemetry(&mut self) {
        let Some(journal) = self.telemetry.journal() else { return };
        let counts = journal.counts();
        let delta = counts.since(&self.telemetry_absorbed);
        if delta.events > 0 {
            linger_telemetry::metrics::global()
                .absorb_counts(self.cfg.params.policy.abbrev(), delta);
        }
        self.telemetry_absorbed = counts;
        if let Some(dir) = std::env::var_os("LINGER_TELEMETRY_DIR") {
            let name = format!(
                "journal-{}-{:016x}.jsonl",
                self.cfg.params.policy.abbrev(),
                config_digest(&self.cfg)
            );
            let path = std::path::Path::new(&dir).join(name);
            if let Err(e) = journal.write_jsonl(&path) {
                eprintln!("telemetry: could not write {}: {e}", path.display());
            }
        }
    }

    /// Advance one 2-second window.
    pub fn step(&mut self) {
        let t = self.now();
        let w = self.window;
        self.telemetry.record(|| {
            self.event_at(t, EventKind::WindowStart { queue_depth: self.queue.len() as u32 })
        });
        // 0. Per-window node state: copy the window's cpu/idle lanes into
        //    the scratch arrays and refresh every node's memory demand.
        self.refresh_window(w);

        // 1. Fault events. A crash knocks the node out of every
        //    scheduling set and kills whatever it hosted (or was
        //    receiving); a reboot returns it to the free pool. The
        //    schedule is pre-sorted by window, so this is a cursor
        //    advance — O(1) per window when no faults are configured.
        while let Some(&ev) = self.faults.events().get(self.fault_cursor) {
            if ev.window > w {
                break;
            }
            self.fault_cursor += 1;
            match ev.kind {
                FaultEventKind::Crash => self.crash_node(ev.node, t),
                FaultEventKind::Reboot => self.reboot_node(ev.node),
            }
        }

        // 1b. Open arrivals and admission control (serving mode only).
        //     Injection precedes migration arrivals and placement, so an
        //     arrival admitted this window is placeable this window —
        //     matching the closed family, whose time-zero jobs are
        //     placeable in window 0.
        if self.arrivals.is_some() {
            self.inject_arrivals(t);
        }

        // 2. Shared-network transfer progress, then migration arrivals.
        //    `migrating` is a superset of the in-flight jobs, so working
        //    from it (sorted — the ascending order the old full job-table
        //    scan visited) touches the same jobs in the same order. An
        //    arrival can evict-and-remigrate (IE on a now-busy
        //    destination), pushing onto `self.migrating` mid-loop; those
        //    jobs have fresh deadlines in the future and are merged back
        //    for the next window.
        let mut mig = std::mem::take(&mut self.migrating);
        // Sort by the slot's *current occupant id*, not the raw slab
        // index: with the append-only layout the two orders coincided,
        // but a recycled slot can hold a high id at a low index and the
        // arrival order is observable (destination picks depend on what
        // earlier arrivals occupied). Equal ids mean equal slots, so
        // `dedup` still collapses duplicates after the sort.
        mig.sort_unstable_by_key(|&ji| self.jobs.id[ji].0);
        mig.dedup();
        if let Some(net) = self.cfg.network {
            let flows = mig
                .iter()
                .filter(|&&ji| {
                    self.jobs.state[ji] == JobState::Migrating
                        && self.jobs.cold[ji].migration_bits_left.is_some_and(|b| b > 0.0)
                })
                .count();
            if flows > 0 {
                let moved = net.bits_transferred(flows, WINDOW.as_secs_f64());
                for &ji in &mig {
                    if self.jobs.state[ji] == JobState::Migrating {
                        if let Some(bits) = self.jobs.cold[ji].migration_bits_left.as_mut() {
                            *bits -= moved;
                        }
                    }
                }
            }
        }
        for &ji in &mig {
            let cold = &self.jobs.cold[ji];
            let fixed_done = cold.migration_until.is_some_and(|until| t >= until);
            let bits_done = cold.migration_bits_left.is_none_or(|b| b <= 0.0);
            if self.jobs.state[ji] == JobState::Migrating && fixed_done && bits_done {
                if self.faults.migration_fails(self.jobs.id[ji].0, cold.transfer_seq) {
                    // The image was lost in transit: free the reserved
                    // destination and retry with backoff (or abandon).
                    self.fault_stats.migration_failures += 1;
                    let dest = self.jobs.node(ji).expect("migration has a destination");
                    let job = self.jobs.id[ji].0;
                    self.telemetry.record(|| {
                        self.event_at(t, EventKind::MigrationFail { dest: dest.0 as u32 })
                            .on_node(dest.0 as u32)
                            .for_job(job)
                    });
                    self.release_node(dest);
                    self.retry_migration(ji, t);
                } else {
                    self.arrive(ji, t);
                }
            }
        }
        mig.retain(|&ji| self.jobs.state[ji] == JobState::Migrating);
        mig.extend(&self.migrating);
        self.migrating = mig;

        // 3. Idle/non-idle transitions and policy decisions — hosted
        //    nodes only; the busy index skips free nodes entirely. Each
        //    shard classifies its busy nodes against the window-start
        //    state (each decision below only ever releases its *own* node
        //    or claims a free one, so per-node classification is pure
        //    over the phase start); the merge applies them ascending.
        self.classify_decisions(t);
        self.apply_decisions(t);

        // 4. Progress, completions, and delay accounting. The busy-hours
        //    sum runs over every node (same ascending order as always —
        //    f64 addition is order-sensitive, so it stays sequential);
        //    job progress only touches hosted nodes: shards do the
        //    steal-rate math, the merge applies it ascending.
        for ni in 0..self.nodes.len() {
            self.local_busy_secs += self.cpu_w[ni] * WINDOW.as_secs_f64();
        }
        self.classify_progress();
        self.apply_progress(t);

        // 5. Placement of queued jobs. Queue time is no longer accrued
        //    by a per-window queue walk: each job's accrual is an exact
        //    integer-nanosecond multiple of `WINDOW`, so it is applied
        //    in one multiply when the job leaves the queue (and patched
        //    for still-queued jobs in `jobs()`), replacing the historic
        //    phase 6 with identical bytes and zero per-window cost.
        self.place_queued(t);

        // 6. Service-mode steady-state accounting: per-window completed
        //    deltas feed the throughput batch means; depth/row peaks are
        //    the bounded-state witnesses the scorecard checks.
        if self.arrivals.is_some() {
            let delta = self.completed - self.last_completed;
            self.last_completed = self.completed;
            self.service.throughput.add(delta as f64);
            self.service.peak_queue_depth = self.service.peak_queue_depth.max(self.queue.len());
            self.service.peak_live_rows = self.service.peak_live_rows.max(self.jobs.len());
        }

        self.window += 1;
    }

    /// First window index at which a queued job accrues queue time: the
    /// first window whose start time is at or past its submission.
    /// (The historic per-window walk accrued under `t >= arrival`.)
    fn arrival_window(&self, ji: usize) -> u32 {
        self.jobs.arrival[ji].as_nanos().div_ceil(WINDOW.as_nanos()) as u32
    }

    /// Exactly `count` windows of time — integer nanoseconds, equal to
    /// `count` repeated `WINDOW` additions.
    fn window_span(count: u32) -> SimDuration {
        SimDuration::from_nanos(WINDOW.as_nanos() * count as u64)
    }

    /// Credit job `ji`'s queued time for the span it just spent on the
    /// queue: every window from `max(entry, arrival)` up to (not
    /// including) the current one — the exact set of windows the historic
    /// phase-6 walk visited it in.
    fn flush_queue_time(&mut self, ji: usize) {
        let from = self.jobs.queued_from[ji].max(self.arrival_window(ji));
        let w = self.window as u32;
        if w > from {
            self.jobs.breakdown[ji].queued += Self::window_span(w - from);
        }
    }

    /// Phase 1b (serving mode): draw this window's arrivals and run them
    /// through admission control. All counters are exact; the identity
    /// `generated == admitted + shed + deficit` holds after every window.
    fn inject_arrivals(&mut self, t: SimTime) {
        let mut generator = self.arrivals.take().expect("open mode has a generator");
        let offered = generator.begin_window();
        let policy = self.cfg.service.admission;

        // Deadline policy: renege over-age jobs from the queue head
        // before admitting, so freshly freed capacity is usable at once.
        if policy == AdmissionPolicy::Deadline {
            self.renege_expired(t);
        }

        self.service.generated += offered as u64;
        let mut admitted = 0u32;
        let mut refused = false;
        match policy {
            AdmissionPolicy::Open => {
                for _ in 0..offered {
                    self.admit_arrival(&mut generator, t);
                }
                admitted = offered;
            }
            AdmissionPolicy::Shed | AdmissionPolicy::Deadline => {
                let space = self.queue_cap.saturating_sub(self.queue.len());
                let take = (offered as usize).min(space) as u32;
                for _ in 0..take {
                    self.admit_arrival(&mut generator, t);
                }
                admitted = take;
                let dropped = offered - take;
                if dropped > 0 {
                    refused = true;
                    self.service.shed += dropped as u64;
                    self.telemetry.record(|| {
                        self.event_at(t, EventKind::AdmissionShed { count: dropped })
                    });
                }
            }
            AdmissionPolicy::Block => {
                // Backpressure: the blocked source re-offers its deficit
                // (FIFO upstream) before this window's new arrivals;
                // whatever still does not fit stays upstream as O(1)
                // counter state — nothing is lost, nothing unbounded.
                // Deficit jobs draw their demands from the window that
                // admits them, so draining needs this window's stream
                // (present whenever the window's rate was positive).
                let mut space = self.queue_cap.saturating_sub(self.queue.len());
                if generator.has_window_stream() {
                    let drain = (self.service.deficit).min(space as u64) as u32;
                    for _ in 0..drain {
                        self.admit_arrival(&mut generator, t);
                    }
                    admitted += drain;
                    self.service.deficit -= drain as u64;
                    space -= drain as usize;
                }
                let take = (offered as usize).min(space) as u32;
                for _ in 0..take {
                    self.admit_arrival(&mut generator, t);
                }
                admitted += take;
                let deferred = offered - take;
                if deferred > 0 || self.service.deficit > 0 {
                    refused = deferred > 0;
                    self.service.deferred += deferred as u64;
                    self.service.deficit += deferred as u64;
                    self.service.peak_deficit =
                        self.service.peak_deficit.max(self.service.deficit);
                    let deficit = self.service.deficit;
                    self.telemetry.record(|| {
                        self.event_at(t, EventKind::AdmissionDefer { count: deferred, deficit })
                    });
                }
            }
        }
        if refused {
            self.service.saturated_windows += 1;
        }
        if offered > 0 || admitted > 0 {
            let depth = self.queue.len() as u32;
            self.telemetry.record(|| {
                self.event_at(t, EventKind::ArrivalBurst { offered, admitted, depth })
            });
        }
        self.arrivals = Some(generator);
    }

    /// Admit one arrival: draw its demand, mint the next job id, push a
    /// live slab row (recycling a retired slot when enabled), and join
    /// the FIFO queue. Arrival time is the current window start, so the
    /// job is placeable this very window and its lazy queue-time span
    /// starts exactly here.
    fn admit_arrival(&mut self, generator: &mut ArrivalGenerator, t: SimTime) {
        let (cpu_demand, mem_kb) = generator.draw_demand();
        let spec = JobSpec { id: JobId(self.next_job_id), cpu_demand, mem_kb, arrival: t };
        self.next_job_id += 1;
        let ji = self.jobs.push(spec, self.window as u32);
        self.queue.push_back(ji);
        self.service.admitted += 1;
    }

    /// Drop queued jobs whose waiting time exceeds the deadline. The
    /// queue is FIFO and every (re)enqueue stamps the current window, so
    /// effective entry windows are non-decreasing front to back and the
    /// scan stops at the first unexpired job.
    fn renege_expired(&mut self, t: SimTime) {
        let deadline_secs = self.cfg.service.deadline_secs;
        let w = self.window as u32;
        while let Some(&ji) = self.queue.front() {
            let from = self.jobs.queued_from[ji].max(self.arrival_window(ji));
            let waited = if w > from { Self::window_span(w - from) } else { SimDuration::ZERO };
            if waited.as_secs_f64() <= deadline_secs {
                break;
            }
            self.queue.pop_front();
            self.flush_queue_time(ji);
            self.jobs.state[ji] = JobState::Done;
            self.jobs.node[ji] = NO_NODE;
            self.service.deadline_dropped += 1;
            let job = self.jobs.id[ji].0;
            let waited_secs = waited.as_secs_f64();
            self.telemetry.record(|| {
                self.event_at(t, EventKind::DeadlineDrop { waited_secs }).for_job(job)
            });
            // Dropped-unserved jobs retire like completions: record to
            // the cold archive, recycle the slot. They are *not* counted
            // completed and carry no `completed_at`.
            if self.jobs.slot_reuse() {
                self.jobs.retire(ji);
            }
        }
    }

    /// Phase 0: refresh the per-window scratch (cpu lane, idle words,
    /// memory demand) and rebuild the `free ∧ idle` candidate set.
    ///
    /// With a window table, each shard streams its own slice of the three
    /// SoA lanes: busy nodes take the full two-pool accounting path
    /// (reclaim/regrow against the hosted job), then a branch-free bulk
    /// store refreshes every node — a value-level no-op on the busy nodes
    /// just updated, and exactly equivalent to the full path on nodes
    /// with no foreign job attached.
    fn refresh_window(&mut self, w: usize) {
        if let WindowSource::Streamed(cursor) = &mut self.windows {
            // Build (or reuse) the chunk covering `w` before any row
            // borrow is taken; `ensure` recycles the arena in place.
            cursor.ensure(w);
        }
        let rows = match &self.windows {
            WindowSource::Table(tbl) => Some((tbl.cpu_row(w), tbl.mem_row(w), tbl.idle_row(w))),
            WindowSource::Streamed(cursor) => {
                let chunk = cursor.chunk();
                Some((chunk.cpu_row(w), chunk.mem_row(w), chunk.idle_row(w)))
            }
            WindowSource::TraceOnly => None,
        };
        if let Some((cpu_row, mem_row, idle_row)) = rows {
            let plan = &self.plan;
            let busy_words = self.busy.words();
            let cpu_parts = plan.split_mut(&mut self.cpu_w);
            let mem_parts = plan.split_mut(&mut self.nodes.memory);
            let idle_parts = plan.split_words_mut(&mut self.idle_words);
            let workers = {
                // Inline shard_workers(): `self` is partially borrowed.
                if plan.shard_count() <= 1 || plan.len() < self.thread_min {
                    1
                } else {
                    default_jobs().min(plan.shard_count())
                }
            };
            let shard_args = cpu_parts.into_iter().zip(mem_parts).zip(idle_parts).enumerate();
            if workers > 1 {
                std::thread::scope(|scope| {
                    for (si, ((cpu_dst, mem_dst), idle_dst)) in shard_args {
                        let range = plan.ranges()[si].clone();
                        let busy_w = &busy_words[plan.word_range(si)];
                        scope.spawn(move || {
                            refresh_shard(
                                range, cpu_dst, idle_dst, mem_dst, busy_w, cpu_row, mem_row,
                                idle_row,
                            )
                        });
                    }
                });
            } else {
                for (si, ((cpu_dst, mem_dst), idle_dst)) in shard_args {
                    let range = plan.ranges()[si].clone();
                    let busy_w = &busy_words[plan.word_range(si)];
                    refresh_shard(
                        range, cpu_dst, idle_dst, mem_dst, busy_w, cpu_row, mem_row, idle_row,
                    );
                }
            }
        } else {
            // Slow path (mixed-period traces): per-node trace lookups.
            self.idle_words.fill(0);
            for ni in 0..self.nodes.len() {
                if self.nodes.is_idle(ni, w) {
                    self.idle_words[ni / 64] |= 1u64 << (ni % 64);
                }
                self.cpu_w[ni] = self.nodes.cpu(ni, w);
                let used = self.nodes.mem_used(ni, w);
                self.nodes.memory[ni].set_local_kb(used);
            }
        }
        // One O(n/64) pass replaces the historical per-node inserts; the
        // set content is identical (`free` already excludes crashed
        // nodes).
        self.free_idle.assign_and_words(&self.idle_words, &self.free);
    }

    /// Phase 3 classify: every shard scans its slice of the busy index
    /// and records what the policy would do to each hosted job, reading
    /// only window-start state.
    fn classify_decisions(&mut self, t: SimTime) {
        let mut bufs = std::mem::take(&mut self.decide_bufs);
        let plan = &self.plan;
        let busy_words = self.busy.words();
        let hosted = &self.nodes.hosted;
        let job_state = &self.jobs.state;
        let cold = &self.jobs.cold;
        let idle_words = &self.idle_words;
        let policy = self.cfg.params.policy;
        let workers = self.shard_workers();
        let run = |si: usize, out: &mut Vec<DecideIntent>| {
            out.clear();
            let wr = plan.word_range(si);
            classify_decisions_shard(
                wr.start,
                &busy_words[wr],
                hosted,
                job_state,
                cold,
                idle_words,
                policy,
                t,
                out,
            );
        };
        if workers > 1 {
            let run = &run;
            std::thread::scope(|scope| {
                for (si, out) in bufs.iter_mut().enumerate() {
                    scope.spawn(move || run(si, out));
                }
            });
        } else {
            for (si, out) in bufs.iter_mut().enumerate() {
                run(si, out);
            }
        }
        self.decide_bufs = bufs;
    }

    /// Phase 3 merge: apply the recorded decisions in ascending node
    /// order — the order the historical single sweep visited busy nodes.
    /// Destination selection (migrations, evictions) runs here against
    /// the live candidate set, exactly as it always did.
    fn apply_decisions(&mut self, t: SimTime) {
        let mut bufs = std::mem::take(&mut self.decide_bufs);
        for buf in &mut bufs {
            for i in 0..buf.len() {
                // Start a later intent's job-record fill while this one
                // applies; every arm below touches `cold[ji]`.
                if let Some(ahead) = buf.get(i + 8) {
                    prefetch_read(&self.jobs.cold[ahead.ji as usize]);
                }
                let intent = buf[i];
                let ni = NodeId(intent.ni as usize);
                let ji = intent.ji as usize;
                match intent.kind {
                    DecideKind::NonIdle => self.on_non_idle(ji, ni, t),
                    DecideKind::ResumeLinger => {
                        // Episode over; back to plain running.
                        self.jobs.state[ji] = JobState::Running;
                        self.jobs.cold[ji].episode_start = None;
                        self.record_decision(ji, ni, t, DecisionAction::Resume, None);
                    }
                    DecideKind::LingerCheck => self.maybe_migrate_lingering(ji, ni, t),
                    DecideKind::ResumePause => {
                        self.jobs.state[ji] = JobState::Running;
                        self.jobs.cold[ji].episode_start = None;
                        self.jobs.cold[ji].pause_deadline = None;
                        self.record_decision(ji, ni, t, DecisionAction::Resume, None);
                    }
                    DecideKind::PauseEvict => self.evict(ji, ni, t),
                }
            }
            buf.clear();
        }
        self.decide_bufs = bufs;
    }

    /// Phase 4 classify: the per-busy-node steal-rate/residency math,
    /// done by the owning shard against phase-start state (progress on
    /// one node never touches another's inputs).
    fn classify_progress(&mut self) {
        let mut bufs = std::mem::take(&mut self.progress_bufs);
        let plan = &self.plan;
        let busy_words = self.busy.words();
        let hosted = &self.nodes.hosted;
        let memory = &self.nodes.memory;
        let job_state = &self.jobs.state;
        let remaining = &self.jobs.remaining;
        let cpu_w = &self.cpu_w;
        let cfg = &self.cfg;
        let workers = self.shard_workers();
        let run = |si: usize, out: &mut Vec<ProgressIntent>| {
            out.clear();
            let wr = plan.word_range(si);
            classify_progress_shard(
                wr.start,
                &busy_words[wr],
                hosted,
                job_state,
                remaining,
                memory,
                cpu_w,
                cfg,
                out,
            );
        };
        if workers > 1 {
            let run = &run;
            std::thread::scope(|scope| {
                for (si, out) in bufs.iter_mut().enumerate() {
                    scope.spawn(move || run(si, out));
                }
            });
        } else {
            for (si, out) in bufs.iter_mut().enumerate() {
                run(si, out);
            }
        }
        self.progress_bufs = bufs;
    }

    /// Phase 4 merge: apply gains, delays, and completions in ascending
    /// node order. The f64 accumulations happen here, in the historical
    /// order, with the exact expressions the shards pre-computed.
    fn apply_progress(&mut self, t: SimTime) {
        let mut bufs = std::mem::take(&mut self.progress_bufs);
        for buf in &mut bufs {
            for i in 0..buf.len() {
                // Start a later intent's demand/breakdown fills while
                // this one applies.
                if let Some(ahead) = buf.get(i + 8) {
                    let j = ahead.ji as usize;
                    prefetch_read(&self.jobs.remaining[j]);
                    prefetch_read(&self.jobs.breakdown[j]);
                }
                let p = buf[i];
                let ji = p.ji as usize;
                match p.kind {
                    ProgressKind::Account => {
                        // Paused/migrating-in jobs make no progress;
                        // account time.
                        self.jobs.breakdown[ji].add(p.state, WINDOW);
                    }
                    ProgressKind::Advance => {
                        if p.has_delay {
                            self.local_delay_secs += p.delay_add;
                        }
                        self.foreign_cpu += p.gain;
                        self.jobs.remaining[ji] =
                            self.jobs.remaining[ji].saturating_sub(p.gain);
                        self.jobs.breakdown[ji].add(p.state, WINDOW);
                    }
                    ProgressKind::Complete => {
                        if p.has_delay {
                            self.local_delay_secs += p.delay_add;
                        }
                        let remaining = self.jobs.remaining[ji];
                        let at = t + WINDOW.mul_f64(p.frac);
                        self.foreign_cpu += remaining;
                        self.jobs.remaining[ji] = SimDuration::ZERO;
                        self.jobs.breakdown[ji].add(p.state, WINDOW.mul_f64(p.frac));
                        self.complete(ji, NodeId(p.ni as usize), at);
                    }
                }
            }
            buf.clear();
        }
        self.progress_bufs = bufs;
    }

    /// Record a policy decision about `ji` on `node` (telemetry only —
    /// reads window utilization, mutates nothing).
    fn record_decision(
        &self,
        ji: usize,
        node: NodeId,
        t: SimTime,
        action: DecisionAction,
        dest: Option<NodeId>,
    ) {
        self.telemetry.record(|| {
            self.event_at(t, EventKind::Decision {
                action,
                host_cpu: Some(self.cpu_w[node.0]),
                dest_cpu: dest.map(|d| self.cpu_w[d.0]),
                age_secs: None,
                migration_secs: None,
                dest: dest.map(|d| d.0 as u32),
            })
            .on_node(node.0 as u32)
            .for_job(self.jobs.id[ji].0)
        });
    }

    /// A running job's node turned non-idle: apply the policy.
    fn on_non_idle(&mut self, ji: usize, node: NodeId, t: SimTime) {
        match self.cfg.params.policy {
            Policy::ImmediateEviction => self.evict(ji, node, t),
            Policy::PauseAndMigrate => {
                self.jobs.state[ji] = JobState::Paused;
                self.jobs.cold[ji].episode_start = Some(t);
                self.jobs.cold[ji].pause_deadline = Some(t + self.cfg.params.pause_timeout);
                self.record_decision(ji, node, t, DecisionAction::Pause, None);
            }
            Policy::LingerLonger | Policy::LingerForever => {
                self.jobs.state[ji] = JobState::Lingering;
                self.jobs.cold[ji].episode_start = Some(t);
                self.record_decision(ji, node, t, DecisionAction::Linger, None);
            }
        }
    }

    /// The Linger-Longer migration test (paper Sec 2): once the episode
    /// age reaches `T_lingr = (1−l)/(h−l)·T_migr` for the best available
    /// destination, migrate.
    fn maybe_migrate_lingering(&mut self, ji: usize, node: NodeId, t: SimTime) {
        let Some(start) = self.jobs.cold[ji].episode_start else { return };
        let mem_kb = self.jobs.mem_kb[ji];
        let Some(dest) = self.best_destination(mem_kb, Some(node)) else {
            return; // nowhere better to go; keep lingering
        };
        let h = self.cpu_w[node.0];
        let l = self.cpu_w[dest.0];
        let t_migr = self.cfg.params.migration.cost(mem_kb);
        let age = t.saturating_since(start);
        if should_migrate(age, h, l, t_migr) {
            self.telemetry.record(|| {
                self.event_at(t, EventKind::Decision {
                    action: DecisionAction::Migrate,
                    host_cpu: Some(h),
                    dest_cpu: Some(l),
                    age_secs: Some(age.as_secs_f64()),
                    migration_secs: Some(t_migr.as_secs_f64()),
                    dest: Some(dest.0 as u32),
                })
                .on_node(node.0 as u32)
                .for_job(self.jobs.id[ji].0)
            });
            self.migrate(ji, node, dest, t);
        }
    }

    /// Evict: migrate to the best idle node if one exists, otherwise
    /// return to the queue (the migration cost is then paid when the job
    /// is re-placed).
    fn evict(&mut self, ji: usize, node: NodeId, t: SimTime) {
        match self.best_destination(self.jobs.mem_kb[ji], Some(node)) {
            Some(dest) => {
                self.record_decision(ji, node, t, DecisionAction::Evict, Some(dest));
                self.migrate(ji, node, dest, t);
            }
            None => {
                self.record_decision(ji, node, t, DecisionAction::Requeue, None);
                self.release_node(node);
                self.requeue(ji, t);
            }
        }
    }

    /// Return a job to the central queue with no node and no in-flight
    /// migration state.
    fn requeue(&mut self, ji: usize, t: SimTime) {
        self.jobs.state[ji] = JobState::Queued;
        self.jobs.node[ji] = NO_NODE;
        let cold = &mut self.jobs.cold[ji];
        cold.episode_start = None;
        cold.pause_deadline = None;
        cold.migration_until = None;
        cold.migration_bits_left = None;
        cold.migration_attempts = 0;
        self.jobs.queued_from[ji] = self.window as u32;
        self.queue.push_back(ji);
        self.telemetry.record(|| {
            self.event_at(t, EventKind::QueueEnter).for_job(self.jobs.id[ji].0)
        });
    }

    /// A node crashes: it leaves every scheduling set, and the job it
    /// hosted — running, lingering, paused, or still in transit toward
    /// it — is lost and must restart elsewhere from its last checkpoint
    /// (re-placement of a `has_run` job pays a full migration).
    fn crash_node(&mut self, ni: usize, t: SimTime) {
        if self.crashed.contains(ni) {
            return;
        }
        self.crashed.insert(ni);
        self.fault_stats.crashes += 1;
        self.free.remove(ni);
        self.free_idle.remove(ni);
        let hosted = self.nodes.hosted(ni);
        self.telemetry.record(|| {
            self.event_at(t, EventKind::NodeCrash {
                evicted: hosted.map(|ji| self.jobs.id[ji].0),
            })
            .on_node(ni as u32)
        });
        if let Some(ji) = hosted {
            self.nodes.memory[ni].detach_foreign();
            self.nodes.set_hosted(ni, None);
            self.busy.remove(ni);
            self.fault_stats.crash_evictions += 1;
            self.jobs.cold[ji].crashes += 1;
            if self.jobs.state[ji] == JobState::Migrating {
                // The in-flight image died with its destination; retry
                // toward a fresh one under the same backoff budget.
                self.retry_migration(ji, t);
            } else {
                self.requeue(ji, t);
            }
        }
    }

    /// A crashed node's reboot completes: it rejoins the free pool (and
    /// the idle candidate set if its owner workload is idle).
    fn reboot_node(&mut self, ni: usize) {
        if !self.crashed.contains(ni) {
            return;
        }
        self.crashed.remove(ni);
        self.free.insert(ni);
        if self.idle_at(ni) {
            self.free_idle.insert(ni);
        }
        self.telemetry
            .record(|| self.event_at(self.now(), EventKind::NodeReboot).on_node(ni as u32));
    }

    /// A transfer attempt failed (in transit or by destination crash):
    /// start the next attempt toward the best destination after a capped
    /// exponential backoff plus checkpoint-restart cost, or abandon the
    /// migration once the attempt budget is spent. The caller has
    /// already released (or lost) the previous destination.
    fn retry_migration(&mut self, ji: usize, t: SimTime) {
        let attempt = self.jobs.cold[ji].migration_attempts.max(1);
        let retry = self.cfg.params.retry;
        if attempt >= retry.max_attempts {
            self.fault_stats.migrations_abandoned += 1;
            self.telemetry.record(|| {
                self.event_at(t, EventKind::MigrationAbandon).for_job(self.jobs.id[ji].0)
            });
            self.requeue(ji, t);
            return;
        }
        let mem_kb = self.jobs.mem_kb[ji];
        let Some(dest) = self.best_destination(mem_kb, None) else {
            // Nowhere to retry toward; fall back to the queue instead of
            // burning attempts against a saturated cluster.
            self.requeue(ji, t);
            return;
        };
        self.fault_stats.migration_retries += 1;
        self.telemetry.record(|| {
            self.event_at(t, EventKind::MigrationRetry { dest: dest.0 as u32, attempt })
                .on_node(dest.0 as u32)
                .for_job(self.jobs.id[ji].0)
        });
        let start = t + retry.retry_delay(attempt - 1);
        let (until, bits) = self.migration_terms(mem_kb, start);
        self.jobs.state[ji] = JobState::Migrating;
        self.jobs.node[ji] = dest.0 as u32;
        let cold = &mut self.jobs.cold[ji];
        cold.migration_until = Some(until);
        cold.migration_bits_left = bits;
        cold.migration_attempts = attempt + 1;
        cold.transfer_seq += 1;
        self.migrating.push(ji);
        self.claim_node(dest, ji);
    }

    /// Begin a migration from `from` to the reserved `dest`.
    fn migrate(&mut self, ji: usize, from: NodeId, dest: NodeId, t: SimTime) {
        self.telemetry.record(|| {
            self.event_at(t, EventKind::MigrationStart { dest: dest.0 as u32, attempt: 1 })
                .on_node(from.0 as u32)
                .for_job(self.jobs.id[ji].0)
        });
        self.release_node(from);
        let (until, bits) = self.migration_terms(self.jobs.mem_kb[ji], t);
        self.jobs.state[ji] = JobState::Migrating;
        self.jobs.node[ji] = dest.0 as u32;
        let cold = &mut self.jobs.cold[ji];
        cold.migration_until = Some(until);
        cold.migration_bits_left = bits;
        cold.episode_start = None;
        cold.pause_deadline = None;
        cold.migrations += 1;
        cold.migration_attempts = 1;
        cold.transfer_seq += 1;
        self.migrating.push(ji);
        self.claim_node(dest, ji); // reserve
    }

    /// Fixed-deadline and transfer terms for a migration starting at `t`.
    ///
    /// Without a shared network, the whole cost (processing + transfer at
    /// the effective rate) is a deadline. With one, the deadline covers
    /// only the fixed processing; the image's bits then drain at whatever
    /// rate the contended backbone provides.
    fn migration_terms(&self, mem_kb: u32, t: SimTime) -> (SimTime, Option<f64>) {
        match self.cfg.network {
            None => (t + self.cfg.params.migration.cost(mem_kb), None),
            Some(_) => {
                let fixed = self.cfg.params.migration.source_processing
                    + self.cfg.params.migration.dest_processing;
                (t + fixed, Some(mem_kb as f64 * 1024.0 * 8.0))
            }
        }
    }

    /// A migrating job materializes on its reserved destination.
    fn arrive(&mut self, ji: usize, t: SimTime) {
        let node = self.jobs.node(ji).expect("migration has a destination");
        self.telemetry.record(|| {
            self.event_at(t, EventKind::MigrationArrive { dest: node.0 as u32 })
                .on_node(node.0 as u32)
                .for_job(self.jobs.id[ji].0)
        });
        self.nodes.memory[node.0].attach_foreign(self.jobs.mem_kb[ji]);
        let idle = self.idle_at(node.0);
        let cold = &mut self.jobs.cold[ji];
        cold.migration_until = None;
        cold.migration_bits_left = None;
        cold.migration_attempts = 0;
        cold.has_run = true;
        if cold.first_start.is_none() {
            cold.first_start = Some(t);
        }
        self.jobs.state[ji] = JobState::Running;
        self.jobs.cold[ji].episode_start = None;
        if !idle {
            // The destination turned non-idle while the job was in
            // transit: apply the policy's non-idle reaction immediately
            // (IE evicts again — the "unnecessary, expensive migrations"
            // the paper attributes to it).
            self.on_non_idle(ji, node, t);
        }
    }

    /// Job finished: free the node, record, respawn in throughput mode.
    fn complete(&mut self, ji: usize, node: NodeId, at: SimTime) {
        self.release_node(node);
        self.jobs.state[ji] = JobState::Done;
        self.jobs.node[ji] = NO_NODE;
        self.jobs.cold[ji].completed_at = Some(at);
        self.completed += 1;
        let b = self.jobs.breakdown[ji];
        let completion_secs = at.saturating_since(self.jobs.arrival[ji]).as_secs_f64();
        let migrations = self.jobs.cold[ji].migrations;
        self.telemetry.record(|| {
            self.event_at(at, EventKind::Complete {
                queued_secs: b.queued.as_secs_f64(),
                running_secs: b.running.as_secs_f64(),
                lingering_secs: b.lingering.as_secs_f64(),
                paused_secs: b.paused.as_secs_f64(),
                migrating_secs: b.migrating.as_secs_f64(),
                completion_secs,
                migrations,
            })
            .on_node(node.0 as u32)
            .for_job(self.jobs.id[ji].0)
        });
        match self.cfg.mode {
            RunMode::Throughput { .. } => {
                // Hold the number of jobs in the system constant.
                let spec = JobSpec {
                    id: JobId(self.next_job_id),
                    arrival: at,
                    cpu_demand: self.jobs.cold[ji].cpu_demand,
                    mem_kb: self.jobs.mem_kb[ji],
                };
                self.next_job_id += 1;
                // Retire the finished record into the archive and respawn
                // in the freed slot (or append when
                // `LINGER_NO_SLOT_REUSE=1`): the id above comes from the
                // same counter either way, so recycling only changes the
                // slab index, never the identity.
                let new_ji = self.jobs.respawn(ji, spec, self.window as u32);
                self.queue.push_back(new_ji);
            }
            RunMode::Open { .. } => {
                // Serving mode: the latency estimator sees every
                // completion, and the finished row retires so live state
                // tracks the active population, not the total flow.
                self.service.latency.add(completion_secs);
                if self.jobs.slot_reuse() {
                    self.jobs.retire(ji);
                }
            }
            RunMode::Family => {}
        }
    }

    fn claim_node(&mut self, node: NodeId, ji: usize) {
        self.nodes.set_hosted(node.0, Some(ji));
        self.free.remove(node.0);
        self.free_idle.remove(node.0);
        self.busy.insert(node.0);
    }

    fn release_node(&mut self, node: NodeId) {
        self.nodes.memory[node.0].detach_foreign();
        self.nodes.set_hosted(node.0, None);
        self.free.insert(node.0);
        if self.idle_at(node.0) {
            self.free_idle.insert(node.0);
        }
        self.busy.remove(node.0);
    }

    /// The best migration destination: the free idle node with the lowest
    /// current utilization that can hold the job.
    ///
    /// The `free_idle` index iterates ascending — the order the old full
    /// scan visited nodes — so `min_by` (with the id tiebreak) picks the
    /// very same destination, and a saturated cluster (no free idle
    /// nodes) answers in O(1).
    fn best_destination(&self, mem_kb: u32, exclude: Option<NodeId>) -> Option<NodeId> {
        let ex = exclude.map(|n| n.0);
        self.free_idle
            .iter()
            .filter(|&ni| Some(ni) != ex)
            .filter(|&ni| self.nodes.memory[ni].fits(mem_kb))
            .min_by(|&a, &b| {
                self.cpu_w[a]
                    .partial_cmp(&self.cpu_w[b])
                    .expect("finite cpu")
                    .then(a.cmp(&b))
            })
            .map(NodeId)
    }

    /// FIFO placement of queued jobs: idle nodes first; lingering policies
    /// may fall back to the least-loaded non-idle node (Sec 4.2: LL "can
    /// run jobs on any semi-available node").
    fn place_queued(&mut self, t: SimTime) {
        // A saturated cluster (every node claimed or crashed) cannot
        // place anything: the pass below would pop each job and push it
        // back unchanged. Skip it — queue order, lazy queue-time spans,
        // and all indexes are untouched, so the bytes are identical.
        if self.free.is_empty() {
            return;
        }
        let mut unplaced = std::mem::take(&mut self.place_scratch);
        unplaced.clear();
        // Destination indexes for this pass, built lazily on first use:
        // each sorts one candidate pool once, so a long queue costs one
        // sweep per pool instead of a full min-scan per queued job.
        let mut idle_idx: Option<PassIndex> = None;
        let mut nonidle_idx: Option<PassIndex> = None;
        // Smallest memory demand whose scan already came up empty this
        // pass. While placing, both candidate sets only shrink (claims
        // remove nodes; free nodes' memory never changes mid-pass), so a
        // failure at `m` KB guarantees failure for any demand ≥ m — the
        // scan can be skipped without changing a single placement. This
        // turns the saturated-queue case from O(queue × free) into
        // O(queue).
        let mut idle_fail_kb = u32::MAX;
        let mut nonidle_fail_kb = u32::MAX;
        while let Some(ji) = self.queue.pop_front() {
            if self.jobs.arrival[ji] > t {
                unplaced.push_back(ji);
                continue;
            }
            // Only the dense hot lanes (`mem_kb`, `arrival`) are read on
            // the skip path — a saturated queue never touches the cold
            // job slab at all.
            let mem_kb = self.jobs.mem_kb[ji];
            let mut target = if mem_kb >= idle_fail_kb {
                None
            } else {
                let idx = idle_idx.get_or_insert_with(|| {
                    PassIndex::build(
                        self.free_idle.iter(),
                        &self.cpu_w,
                        &self.nodes.memory,
                    )
                });
                let d = idx.query(mem_kb, &self.free_idle);
                if d.is_none() {
                    idle_fail_kb = mem_kb;
                }
                d
            };
            if target.is_none()
                && self.cfg.params.policy.places_on_non_idle()
                && mem_kb < nonidle_fail_kb
            {
                // Least-loaded non-idle node that can take the job.
                let idx = nonidle_idx.get_or_insert_with(|| {
                    PassIndex::build(
                        self.free.iter().filter(|&ni| !self.idle_at(ni)),
                        &self.cpu_w,
                        &self.nodes.memory,
                    )
                });
                let d = idx.query(mem_kb, &self.free);
                if d.is_none() {
                    nonidle_fail_kb = mem_kb;
                }
                target = d;
            }
            match target {
                None => unplaced.push_back(ji),
                Some(dest) => {
                    self.flush_queue_time(ji);
                    self.claim_node(dest, ji);
                    self.telemetry.record(|| {
                        self.event_at(t, EventKind::Decision {
                            action: DecisionAction::Place,
                            host_cpu: Some(self.cpu_w[dest.0]),
                            dest_cpu: None,
                            age_secs: None,
                            migration_secs: None,
                            dest: Some(dest.0 as u32),
                        })
                        .for_job(self.jobs.id[ji].0)
                    });
                    if self.jobs.cold[ji].has_run {
                        // Re-materializing an evicted job costs a
                        // migration.
                        let (until, bits) = self.migration_terms(mem_kb, t);
                        self.jobs.state[ji] = JobState::Migrating;
                        self.jobs.node[ji] = dest.0 as u32;
                        let cold = &mut self.jobs.cold[ji];
                        cold.migration_until = Some(until);
                        cold.migration_bits_left = bits;
                        cold.migrations += 1;
                        cold.migration_attempts = 1;
                        cold.transfer_seq += 1;
                        self.migrating.push(ji);
                        self.telemetry.record(|| {
                            self.event_at(t, EventKind::MigrationStart {
                                dest: dest.0 as u32,
                                attempt: 1,
                            })
                            .for_job(self.jobs.id[ji].0)
                        });
                    } else {
                        self.nodes.memory[dest.0].attach_foreign(mem_kb);
                        let idle = self.idle_at(dest.0);
                        self.jobs.node[ji] = dest.0 as u32;
                        let cold = &mut self.jobs.cold[ji];
                        cold.has_run = true;
                        cold.first_start = Some(t);
                        if idle {
                            self.jobs.state[ji] = JobState::Running;
                        } else {
                            self.jobs.state[ji] = JobState::Lingering;
                            self.jobs.cold[ji].episode_start = Some(t);
                            self.record_decision(ji, dest, t, DecisionAction::Linger, None);
                        }
                    }
                }
            }
        }
        // The drained queue buffer becomes next window's scratch.
        std::mem::swap(&mut self.queue, &mut unplaced);
        self.place_scratch = unplaced;
    }
}

/// One placement pass's destination index over one candidate pool
/// (free ∧ idle, or free ∧ non-idle): the pool's members at first use,
/// sorted by the exact `(cpu, id)` order [`ClusterSim::best_destination`]'s
/// `min_by` visits them, with each node's free memory precomputed.
///
/// Within a pass the pool only shrinks (placements claim nodes; free
/// nodes' memory never changes mid-pass), so for a fixed demand the
/// first fitting position only moves forward — a per-demand cursor
/// turns the whole pass's lookups into one amortized sorted sweep,
/// where the plain per-job `min_by` rescans every candidate (the
/// free-but-unfitting ones over and over) and goes quadratic on big
/// clusters.
struct PassIndex {
    /// `(cpu busy fraction, node id, free KB)`, ascending `(cpu, id)`.
    cands: Vec<(f64, u32, u32)>,
    /// demand KB → resume position; one entry per distinct demand seen.
    cursors: Vec<(u32, usize)>,
}

impl PassIndex {
    fn build(
        members: impl Iterator<Item = usize>,
        cpu_w: &[f64],
        memory: &[TwoPoolMemory],
    ) -> Self {
        let mut cands: Vec<(f64, u32, u32)> = members
            .map(|ni| (cpu_w[ni], ni as u32, memory[ni].free_kb()))
            .collect();
        cands.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("finite cpu").then(a.1.cmp(&b.1))
        });
        PassIndex { cands, cursors: Vec::new() }
    }

    /// The minimum-`(cpu, id)` candidate still in `live` that fits
    /// `mem_kb` — exactly what `best_destination`'s scan would return,
    /// since skipped prefix entries are either claimed (gone for the
    /// rest of the pass) or permanently too small for this demand.
    fn query(&mut self, mem_kb: u32, live: &NodeIndex) -> Option<NodeId> {
        let slot = match self.cursors.iter().position(|c| c.0 == mem_kb) {
            Some(i) => i,
            None => {
                self.cursors.push((mem_kb, 0));
                self.cursors.len() - 1
            }
        };
        let mut pos = self.cursors[slot].1;
        while let Some(&(_, ni, room)) = self.cands.get(pos) {
            if room >= mem_kb && live.contains(ni as usize) {
                break;
            }
            pos += 1;
        }
        self.cursors[slot].1 = pos;
        self.cands.get(pos).map(|&(_, ni, _)| NodeId(ni as usize))
    }
}

/// One shard's slice of phase 0: copy the window's cpu/idle lanes and
/// refresh memory demand. `range` is the shard's node-id range (64-
/// aligned start); `busy_words` is its slice of the busy bitset.
#[allow(clippy::too_many_arguments)]
fn refresh_shard(
    range: std::ops::Range<usize>,
    cpu_dst: &mut [f64],
    idle_dst: &mut [u64],
    mem: &mut [TwoPoolMemory],
    busy_words: &[u64],
    cpu_row: &[f64],
    mem_row: &[u32],
    idle_row: &[u64],
) {
    let base = range.start;
    cpu_dst.copy_from_slice(&cpu_row[range.clone()]);
    let word_base = base / 64;
    idle_dst.copy_from_slice(&idle_row[word_base..word_base + idle_dst.len()]);
    // Busy nodes take the full two-pool accounting path (reclaim/regrow
    // against the hosted job's pool)...
    for (k, &w0) in busy_words.iter().enumerate() {
        let mut word = w0;
        while word != 0 {
            let ni = (word_base + k) * 64 + word.trailing_zeros() as usize;
            word &= word - 1;
            mem[ni - base].set_local_kb(mem_row[ni]);
        }
    }
    // ...then a branch-free bulk store refreshes every node — a value-
    // level no-op on the busy nodes just updated.
    for (m, &kb) in mem.iter_mut().zip(&mem_row[range]) {
        m.store_local_kb_unattached(kb);
    }
}

/// One shard's slice of the phase 3 classify: record what the policy
/// would do to each busy node's job, reading only window-start state.
#[allow(clippy::too_many_arguments)]
fn classify_decisions_shard(
    word_base: usize,
    busy_words: &[u64],
    hosted: &[u32],
    job_state: &[JobState],
    cold: &[JobCold],
    idle_words: &[u64],
    policy: Policy,
    t: SimTime,
    out: &mut Vec<DecideIntent>,
) {
    for (k, &w0) in busy_words.iter().enumerate() {
        let idle_word = idle_words[word_base + k];
        // Gather the word's node → job pairs first, starting each job
        // record's cache fill, so the classification below runs against
        // lines already in flight instead of stalling one miss at a
        // time. Pure reordering of reads — bit order is preserved.
        let mut pairs = [(0u32, 0u32); 64];
        let mut n = 0;
        let mut word = w0;
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            let ni = (word_base + k) * 64 + bit;
            let ji = hosted[ni];
            debug_assert_ne!(ji, NO_JOB, "busy node must host a job");
            prefetch_read(&job_state[ji as usize]);
            pairs[n] = (ni as u32, ji);
            n += 1;
        }
        for &(ni, ji) in &pairs[..n] {
            let ni = ni as usize;
            let bit = ni % 64;
            let idle = idle_word & (1u64 << bit) != 0;
            let kind = match job_state[ji as usize] {
                JobState::Running if !idle => DecideKind::NonIdle,
                JobState::Lingering if idle => DecideKind::ResumeLinger,
                JobState::Lingering if policy == Policy::LingerLonger => DecideKind::LingerCheck,
                JobState::Paused if idle => DecideKind::ResumePause,
                JobState::Paused
                    if cold[ji as usize].pause_deadline.is_some_and(|d| t >= d) =>
                {
                    DecideKind::PauseEvict
                }
                _ => continue,
            };
            out.push(DecideIntent { ni: ni as u32, ji, kind });
        }
    }
}

/// One shard's slice of the phase 4 classify: per-busy-node progress
/// math. All f64 terms are computed here with the exact expressions the
/// historical loop used; the merge only applies them in order.
#[allow(clippy::too_many_arguments)]
fn classify_progress_shard(
    word_base: usize,
    busy_words: &[u64],
    hosted: &[u32],
    job_state: &[JobState],
    remaining: &[SimDuration],
    memory: &[TwoPoolMemory],
    cpu_w: &[f64],
    cfg: &ClusterConfig,
    out: &mut Vec<ProgressIntent>,
) {
    for (k, &w0) in busy_words.iter().enumerate() {
        // Same gather-then-compute shape as the decision classify: get
        // every hosted job's state and remaining-demand lines in flight
        // before the steal-rate math dereferences them.
        let mut pairs = [(0u32, 0u32); 64];
        let mut n = 0;
        let mut word = w0;
        while word != 0 {
            let ni = (word_base + k) * 64 + word.trailing_zeros() as usize;
            word &= word - 1;
            let ji = hosted[ni];
            debug_assert_ne!(ji, NO_JOB, "busy node must host a job");
            prefetch_read(&job_state[ji as usize]);
            prefetch_read(&remaining[ji as usize]);
            pairs[n] = (ni as u32, ji);
            n += 1;
        }
        for &(ni, ji) in &pairs[..n] {
            let ni = ni as usize;
            let state = job_state[ji as usize];
            if !matches!(state, JobState::Running | JobState::Lingering) {
                out.push(ProgressIntent {
                    ni: ni as u32,
                    ji,
                    state,
                    kind: ProgressKind::Account,
                    gain: SimDuration::ZERO,
                    frac: 0.0,
                    delay_add: 0.0,
                    has_delay: false,
                });
                continue;
            }
            let u = cpu_w[ni];
            // Memory pressure: a partially-resident job pages and slows
            // proportionally.
            let residency = memory[ni].foreign_residency();
            let rate = steal_rate(&cfg.table, u, cfg.params.context_switch) * residency;
            let (has_delay, delay_add) = if state == JobState::Lingering {
                // Added foreground latency: one context switch per local
                // run burst; expected bursts in the window = u·W / R(u).
                let run_mean = cfg.table.interpolate(u).run_mean;
                if run_mean > 0.0 {
                    (
                        true,
                        cfg.params.context_switch.as_secs_f64()
                            * (u * WINDOW.as_secs_f64() / run_mean),
                    )
                } else {
                    (false, 0.0)
                }
            } else {
                (false, 0.0)
            };
            let gain = WINDOW.mul_f64(rate);
            let rem = remaining[ji as usize];
            if rate > 0.0 && rem <= gain {
                // Completes within this window.
                let frac = rem.as_secs_f64() / gain.as_secs_f64();
                out.push(ProgressIntent {
                    ni: ni as u32,
                    ji,
                    state,
                    kind: ProgressKind::Complete,
                    gain,
                    frac,
                    delay_add,
                    has_delay,
                });
            } else {
                out.push(ProgressIntent {
                    ni: ni as u32,
                    ji,
                    state,
                    kind: ProgressKind::Advance,
                    gain,
                    frac: 0.0,
                    delay_add,
                    has_delay,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linger::JobFamily;
    use linger_sim_core::SimDuration;

    fn small_cfg(policy: Policy) -> ClusterConfig {
        let mut cfg = ClusterConfig::paper(
            policy,
            JobFamily::uniform(8, SimDuration::from_secs(120), 8 * 1024),
        );
        cfg.nodes = 8;
        cfg.trace.duration = SimDuration::from_secs(2 * 3600);
        cfg.seed = 11;
        cfg
    }

    #[test]
    fn family_completes_under_each_policy() {
        for policy in Policy::ALL {
            let mut sim = ClusterSim::new(small_cfg(policy));
            assert!(sim.run(), "{policy} did not finish");
            assert_eq!(sim.completed(), 8);
            for j in sim.jobs() {
                assert_eq!(j.state, JobState::Done);
                assert_eq!(j.remaining, SimDuration::ZERO);
                assert!(j.completion_time().unwrap() >= SimDuration::from_secs(120));
            }
        }
    }

    #[test]
    fn cpu_conservation() {
        // Foreign CPU delivered equals the family's total demand.
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerLonger));
        sim.run();
        let expect = 8.0 * 120.0;
        let got = sim.foreign_cpu_delivered().as_secs_f64();
        assert!((got - expect).abs() < 1e-6, "delivered {got} vs {expect}");
    }

    #[test]
    fn linger_forever_never_migrates() {
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerForever));
        sim.run();
        for j in sim.jobs() {
            assert_eq!(j.migrations, 0, "LF must never migrate");
            assert_eq!(j.breakdown.migrating, SimDuration::ZERO);
        }
    }

    #[test]
    fn immediate_eviction_never_lingers() {
        let mut sim = ClusterSim::new(small_cfg(Policy::ImmediateEviction));
        sim.run();
        for j in sim.jobs() {
            assert_eq!(j.breakdown.lingering, SimDuration::ZERO);
            assert_eq!(j.breakdown.paused, SimDuration::ZERO);
        }
    }

    #[test]
    fn pause_and_migrate_pauses() {
        let mut sim = ClusterSim::new(small_cfg(Policy::PauseAndMigrate));
        sim.run();
        let paused: f64 = sim.jobs().iter().map(|j| j.breakdown.paused.as_secs_f64()).sum();
        let lingered: f64 =
            sim.jobs().iter().map(|j| j.breakdown.lingering.as_secs_f64()).sum();
        assert_eq!(lingered, 0.0, "PM never lingers");
        // With several 2-minute jobs on user workstations, at least one
        // pause episode is overwhelmingly likely.
        assert!(paused > 0.0, "PM should pause at least once");
    }

    #[test]
    fn lingering_policies_linger() {
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerForever));
        sim.run();
        let lingered: f64 =
            sim.jobs().iter().map(|j| j.breakdown.lingering.as_secs_f64()).sum();
        assert!(lingered > 0.0, "LF on user workstations must linger");
    }

    #[test]
    fn state_breakdown_accounts_for_completion_time() {
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerLonger));
        sim.run();
        for j in sim.jobs() {
            let total = j.breakdown.total().as_secs_f64();
            let completion = j.completion_time().unwrap().as_secs_f64();
            // Window-granular accounting: within one window per state
            // transition of the exact value.
            assert!(
                (total - completion).abs() <= 8.0,
                "breakdown {total} vs completion {completion}"
            );
        }
    }

    #[test]
    fn throughput_mode_holds_job_count() {
        let mut cfg = small_cfg(Policy::LingerLonger).with_throughput_mode();
        cfg.mode = RunMode::Throughput { horizon: SimTime::from_secs(900) };
        let mut sim = ClusterSim::new(cfg);
        sim.run();
        // Live jobs (not Done) should still number 8.
        let live = sim.jobs().iter().filter(|j| j.state != JobState::Done).count();
        assert_eq!(live, 8);
        assert!(sim.foreign_cpu_delivered() > SimDuration::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = ClusterSim::new(small_cfg(Policy::LingerLonger));
            sim.run();
            sim.jobs()
                .iter()
                .map(|j| j.completed_at.unwrap().as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// Full observable outcome of a run, for sharding equivalence checks.
    type Outcome = (Vec<(u64, u64, u32)>, u64, u64, u64, FaultStats);

    fn run_outcome(mut sim: ClusterSim) -> Outcome {
        sim.run();
        let jobs: Vec<(u64, u64, u32)> = sim
            .jobs()
            .iter()
            .map(|j| {
                (
                    j.completed_at.map_or(0, |t| t.as_nanos()),
                    j.breakdown.total().as_nanos(),
                    j.migrations,
                )
            })
            .collect();
        (
            jobs,
            sim.foreign_cpu_delivered().as_nanos(),
            sim.local_busy_secs.to_bits(),
            sim.local_delay_secs.to_bits(),
            sim.fault_stats(),
        )
    }

    #[test]
    fn shard_count_never_changes_results() {
        for policy in Policy::ALL {
            let baseline = run_outcome(ClusterSim::new(small_cfg(policy)).with_shards(1));
            for shards in [2, 3, 7, 16] {
                let sharded =
                    run_outcome(ClusterSim::new(small_cfg(policy)).with_shards(shards));
                assert_eq!(baseline, sharded, "{policy} diverged at {shards} shards");
            }
        }
    }

    #[test]
    fn threaded_shards_never_change_results() {
        let baseline = run_outcome(ClusterSim::new(small_cfg(Policy::LingerLonger)));
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerLonger)).with_shards(4);
        sim.set_shard_threading_min(1);
        assert_eq!(baseline, run_outcome(sim));
    }

    #[test]
    fn node_indices_track_hosted_state() {
        // The incremental free/busy indices must equal the naive hosted
        // scan after every window, for every policy.
        for policy in Policy::ALL {
            let mut sim = ClusterSim::new(small_cfg(policy));
            for _ in 0..300 {
                sim.step();
                let free_scan: Vec<usize> = (0..sim.nodes.len())
                    .filter(|&ni| sim.nodes.hosted(ni).is_none())
                    .collect();
                let busy_scan: Vec<usize> = (0..sim.nodes.len())
                    .filter(|&ni| sim.nodes.hosted(ni).is_some())
                    .collect();
                assert_eq!(sim.free.iter().collect::<Vec<_>>(), free_scan, "{policy}");
                assert_eq!(sim.busy.iter().collect::<Vec<_>>(), busy_scan, "{policy}");
                let free_idle_scan: Vec<usize> = (0..sim.nodes.len())
                    .filter(|&ni| sim.nodes.hosted(ni).is_none() && sim.idle_at(ni))
                    .collect();
                assert_eq!(
                    sim.free_idle.iter().collect::<Vec<_>>(),
                    free_idle_scan,
                    "{policy}"
                );
            }
        }
    }

    #[test]
    fn crashes_evict_jobs_and_nodes_recover() {
        let mut cfg = small_cfg(Policy::LingerLonger);
        cfg.faults = crate::faults::FaultConfig {
            crash_rate_per_hour: 30.0,
            mean_reboot_secs: 60.0,
            migration_failure_prob: 0.0,
        };
        let mut sim = ClusterSim::new(cfg);
        assert!(sim.run(), "family must still complete under crashes");
        assert_eq!(sim.completed(), 8);
        let fs = sim.fault_stats();
        assert!(fs.crashes > 0, "30 crashes/node-hour must fire");
        // Reboots are ~1 min; by completion most nodes should be back.
        for j in sim.jobs() {
            assert_eq!(j.state, JobState::Done);
            assert_eq!(j.remaining, SimDuration::ZERO);
        }
    }

    #[test]
    fn node_indices_respect_crashed_nodes() {
        let mut cfg = small_cfg(Policy::LingerLonger);
        cfg.faults = crate::faults::FaultConfig {
            crash_rate_per_hour: 40.0,
            mean_reboot_secs: 120.0,
            migration_failure_prob: 0.2,
        };
        let mut sim = ClusterSim::new(cfg);
        let mut saw_crashed = false;
        for _ in 0..900 {
            sim.step();
            for ni in 0..sim.nodes.len() {
                if sim.crashed.contains(ni) {
                    saw_crashed = true;
                    assert!(!sim.free.contains(ni), "crashed node in free");
                    assert!(!sim.busy.contains(ni), "crashed node in busy");
                    assert!(!sim.free_idle.contains(ni), "crashed node in free_idle");
                    assert!(sim.nodes.hosted(ni).is_none(), "crashed node hosts a job");
                } else {
                    assert_eq!(sim.free.contains(ni), sim.nodes.hosted(ni).is_none());
                    assert_eq!(sim.busy.contains(ni), sim.nodes.hosted(ni).is_some());
                }
            }
        }
        assert!(saw_crashed, "the fault schedule must down at least one node");
    }

    #[test]
    fn migration_failures_retry_and_jobs_still_finish() {
        // Heavier than `small_cfg` so IE performs plenty of transfers.
        let mut cfg = ClusterConfig::paper(
            Policy::ImmediateEviction,
            JobFamily::uniform(16, SimDuration::from_secs(600), 8 * 1024),
        );
        cfg.nodes = 8;
        cfg.trace.duration = SimDuration::from_secs(6 * 3600);
        cfg.seed = 11;
        cfg.faults = crate::faults::FaultConfig {
            crash_rate_per_hour: 0.0,
            mean_reboot_secs: 120.0,
            migration_failure_prob: 0.5,
        };
        let mut sim = ClusterSim::new(cfg);
        assert!(sim.run(), "family must complete despite transfer failures");
        assert_eq!(sim.completed(), 16);
        let fs = sim.fault_stats();
        assert_eq!(fs.crashes, 0);
        assert!(fs.migration_failures > 0, "p=0.5 must lose some transfers");
        assert!(
            fs.migration_retries > 0 || fs.migrations_abandoned > 0,
            "failed transfers must retry or abandon"
        );
    }

    #[test]
    fn fault_runs_are_deterministic_given_seed() {
        let run = || {
            let mut cfg = small_cfg(Policy::LingerLonger);
            cfg.faults = crate::faults::FaultConfig {
                crash_rate_per_hour: 20.0,
                mean_reboot_secs: 90.0,
                migration_failure_prob: 0.3,
            };
            let mut sim = ClusterSim::new(cfg);
            sim.run();
            let fs = sim.fault_stats();
            let times: Vec<u64> = sim
                .jobs()
                .iter()
                .filter_map(|j| j.completed_at.map(|t| t.as_nanos()))
                .collect();
            (fs, times)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disabled_fault_params_do_not_perturb_runs() {
        // With crash rate and failure probability at zero, the *other*
        // fault knobs must not leak into the simulation at all.
        let run = |reboot: f64| {
            let mut cfg = small_cfg(Policy::LingerLonger);
            cfg.faults.mean_reboot_secs = reboot;
            let mut sim = ClusterSim::new(cfg);
            sim.run();
            sim.jobs()
                .iter()
                .map(|j| j.completed_at.unwrap().as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(120.0), run(999_999.0));
    }

    #[test]
    fn foreground_delay_is_small() {
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerForever));
        sim.run();
        let d = sim.foreground_delay_ratio();
        assert!(d < 0.02, "foreground delay {d} too large");
    }

    /// An 8-node open-arrivals config. `load` is the offered utilization
    /// (arrival rate × mean demand ÷ capacity); above 1.0 oversubscribes.
    fn open_cfg(admission: AdmissionPolicy, load: f64, cap: usize, horizon_secs: u64) -> ClusterConfig {
        use crate::config::ServiceConfig;
        use linger_workload::{ArrivalConfig, ArrivalProcess};
        let mut cfg = ClusterConfig::paper(Policy::LingerLonger, JobFamily::empty());
        cfg.nodes = 8;
        cfg.trace.duration = SimDuration::from_secs(2 * 3600);
        cfg.seed = 11;
        // 8 nodes × 3600 s/h ÷ 120 s/job = 240 jobs/hour at load 1.0.
        cfg.service = ServiceConfig {
            arrivals: ArrivalConfig {
                process: ArrivalProcess::Poisson { rate_per_hour: load * 240.0 },
                mean_cpu_secs: 120.0,
                mem_kb: 8 * 1024,
            },
            admission,
            queue_capacity: cap,
            deadline_secs: 120.0,
        };
        cfg.mode = RunMode::Open { horizon: SimTime::from_secs(horizon_secs) };
        cfg
    }

    #[test]
    fn open_mode_serves_under_light_load() {
        let mut sim = ClusterSim::new(open_cfg(AdmissionPolicy::Shed, 0.3, 64, 3600));
        assert!(sim.run());
        let s = sim.service_stats();
        assert!(s.generated > 0, "poisson at 72/hour must generate arrivals");
        assert_eq!(s.shed, 0, "an undersubscribed bounded queue sheds nothing");
        assert_eq!(s.deadline_dropped, 0);
        assert!(s.accounting_holds());
        assert!(sim.completed() > 0, "light load must complete jobs");
        assert!(s.throughput.batches() > 0, "one-hour run forms throughput batches");
    }

    #[test]
    fn open_mode_shed_bounds_queue_and_counts_exactly() {
        let cap = 16;
        let mut sim = ClusterSim::new(open_cfg(AdmissionPolicy::Shed, 4.0, cap, 3600));
        assert!(sim.run());
        let s = sim.service_stats().clone();
        assert!(s.shed > 0, "4× overload at capacity {cap} must shed");
        assert!(s.saturated_windows > 0);
        assert_eq!(s.generated, s.admitted + s.shed);
        assert_eq!(s.deficit, 0, "shed never defers");
        // The queue itself never exceeds the admission capacity by more
        // than the already-admitted work a window can bounce back
        // (evictions/crashes bypass admission by design).
        assert!(
            s.peak_queue_depth <= cap + sim.cfg.nodes,
            "peak depth {} above bound {}",
            s.peak_queue_depth,
            cap + sim.cfg.nodes
        );
        // Bounded queue + per-node hosting ⇒ bounded live rows: the
        // flat-memory witness under sustained 4× overload.
        assert!(
            s.peak_live_rows <= cap + 2 * sim.cfg.nodes,
            "live rows {} not flat",
            s.peak_live_rows
        );
        assert!(sim.completed() > 0);
    }

    #[test]
    fn open_mode_block_defers_without_loss() {
        let cap = 16;
        let mut sim = ClusterSim::new(open_cfg(AdmissionPolicy::Block, 3.0, cap, 3600));
        assert!(sim.run());
        let s = sim.service_stats();
        assert!(s.deferred > 0, "3× overload must defer");
        assert_eq!(s.shed, 0, "backpressure never drops");
        assert_eq!(s.deadline_dropped, 0);
        assert!(s.deficit > 0, "sustained overload keeps a deficit");
        assert!(s.peak_deficit >= s.deficit);
        assert!(s.accounting_holds());
        assert!(s.peak_queue_depth <= cap + sim.cfg.nodes);
    }

    #[test]
    fn open_mode_deadline_drops_stale_jobs() {
        let mut cfg = open_cfg(AdmissionPolicy::Deadline, 4.0, 32, 3600);
        cfg.service.deadline_secs = 60.0;
        let mut sim = ClusterSim::new(cfg);
        assert!(sim.run());
        let s = sim.service_stats();
        assert!(s.deadline_dropped > 0, "60 s deadline under 4× overload must drop");
        assert!(s.accounting_holds());
        // Dropped jobs are archived unserved: no completion stamp.
        let records = sim.jobs();
        let unserved = records
            .iter()
            .filter(|r| r.state == JobState::Done && r.completed_at.is_none())
            .count() as u64;
        assert_eq!(unserved, s.deadline_dropped);
        // Every record is archived or live exactly once.
        assert_eq!(records.len(), sim.jobs.total_jobs());
    }

    #[test]
    fn open_admission_baseline_grows_where_bounded_stays_flat() {
        // The motivating contrast: same 4× overload, open admission lets
        // the queue grow past any bound a shed queue respects.
        let open = {
            let mut sim = ClusterSim::new(open_cfg(AdmissionPolicy::Open, 4.0, 16, 1800));
            sim.run();
            sim.service_stats().clone()
        };
        let shed = {
            let mut sim = ClusterSim::new(open_cfg(AdmissionPolicy::Shed, 4.0, 16, 1800));
            sim.run();
            sim.service_stats().clone()
        };
        assert_eq!(open.shed, 0);
        assert!(
            open.peak_queue_depth > 4 * shed.peak_queue_depth,
            "unbounded {} vs bounded {}",
            open.peak_queue_depth,
            shed.peak_queue_depth
        );
    }

    #[test]
    fn open_mode_deterministic_across_shards_and_slot_reuse() {
        for admission in AdmissionPolicy::ALL {
            let outcome = |shards: usize, reuse: bool| {
                let mut cfg = open_cfg(admission, 2.0, 24, 1800);
                cfg.faults.crash_rate_per_hour = 0.5;
                cfg.faults.migration_failure_prob = 0.2;
                let mut sim = ClusterSim::new(cfg).with_shards(shards);
                sim.set_slot_reuse(reuse);
                sim.set_shard_threading_min(1);
                run_outcome(sim)
            };
            let base = outcome(1, true);
            assert_eq!(base, outcome(4, true), "{admission:?}: shards changed bytes");
            assert_eq!(base, outcome(1, false), "{admission:?}: slot reuse changed bytes");
            assert_eq!(base, outcome(4, false), "{admission:?}: both changed bytes");
        }
    }

    #[test]
    fn zero_rate_open_run_reproduces_family_outcome() {
        // A closed-equivalent schedule: the same family, no arrivals.
        // Open mode must reproduce the batch replay byte for byte (the
        // horizon only adds post-completion windows, which touch no job).
        let family = {
            let mut sim = ClusterSim::new(small_cfg(Policy::LingerLonger));
            sim.run();
            (sim.jobs(), sim.completed(), sim.foreign_cpu_delivered())
        };
        let open = {
            let mut cfg = small_cfg(Policy::LingerLonger);
            cfg.mode = RunMode::Open { horizon: SimTime::from_secs(3600) };
            let mut sim = ClusterSim::new(cfg);
            sim.run();
            (sim.jobs(), sim.completed(), sim.foreign_cpu_delivered())
        };
        assert_eq!(family.1, open.1, "same completions");
        assert_eq!(family.2, open.2, "same foreign CPU");
        assert_eq!(family.0, open.0, "identical job records");
    }

    #[test]
    fn service_stats_inert_in_closed_modes() {
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerLonger));
        sim.run();
        let s = sim.service_stats();
        assert_eq!(s.generated, 0);
        assert_eq!(s.admitted, 0);
        assert_eq!(s.throughput.batches(), 0);
        assert_eq!(s.peak_queue_depth, 0);
    }
}
