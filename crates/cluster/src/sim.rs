//! The cluster scheduling simulator (paper Sec 4.2).
//!
//! Time advances in 2-second windows — the sampling period of the coarse
//! traces driving each node. Within a window, a hosted foreign job earns
//! CPU at the expected fine-grain stealing rate for the node's current
//! utilization ([`linger_node::steal_rate`], the closed-form mean of the
//! burst-accurate executor; the `cluster` bench contains the ablation
//! comparing the two). Policy decisions — eviction, pausing, the
//! Linger-Longer migration test — are evaluated at window boundaries.
//!
//! One foreign job runs per node at a time (Sec 3.2: free memory
//! "sufficient to accommodate one compute-bound foreign job of moderate
//! size"), gated by the two-pool memory model's admission check.

use crate::config::{ClusterConfig, RunMode};
use crate::faults::{FaultEventKind, FaultModel, FaultStats};
use crate::state::{JobRecord, JobState, NodeId, NodeState};
use linger::cost::should_migrate;
use linger::{JobId, JobSpec, Policy};
use linger_node::steal_rate;
use linger_sim_core::{NodeIndex, SimDuration, SimTime};
use linger_telemetry::{DecisionAction, Event, EventKind, JournalCounts, Recorder};
use linger_workload::{
    CoarseTrace, RealizeOrigin, TraceLibrary, TwoPoolMemory, WindowTable, WorkloadRealization,
    SAMPLE_PERIOD_SECS,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// One simulation window (= the coarse-trace sampling period).
pub const WINDOW: SimDuration = SimDuration::from_secs(SAMPLE_PERIOD_SECS);

/// FNV-1a over the JSON serialization of a config — a stable name for
/// its telemetry spill file.
fn config_digest(cfg: &ClusterConfig) -> u64 {
    let text = serde_json::to_string(cfg).unwrap_or_default();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cluster simulation.
pub struct ClusterSim {
    cfg: ClusterConfig,
    nodes: Vec<NodeState>,
    jobs: Vec<JobRecord>,
    queue: VecDeque<usize>,
    window: usize,
    /// Total foreign CPU delivered (throughput numerator).
    foreign_cpu: SimDuration,
    /// Local busy seconds across all nodes (delay-ratio denominator).
    local_busy_secs: f64,
    /// Added foreground latency seconds (delay-ratio numerator).
    local_delay_secs: f64,
    /// Next id for respawned jobs in throughput mode.
    next_job_id: u32,
    /// Completed job count.
    completed: usize,
    /// Nodes with no hosted foreign job, maintained incrementally at
    /// every claim/release (replaces the per-query full scan).
    free: NodeIndex,
    /// Complement of `free`: nodes hosting (or reserved for) a job.
    busy: NodeIndex,
    /// `free ∧ idle_w` — the destination-candidate set every placement
    /// and migration query starts from. Rebuilt from the traces at the
    /// top of each window, then maintained at every claim/release, so a
    /// saturated cluster answers "no idle node" in O(1) instead of
    /// rescanning all free nodes.
    free_idle: NodeIndex,
    /// Per-window scratch: `is_idle`/`cpu` of every node at the current
    /// window, filled once per [`Self::step`].
    idle_w: Vec<bool>,
    cpu_w: Vec<f64>,
    /// Reusable buffers for the window loop (snapshot of `busy`, and the
    /// not-yet-placeable queue tail).
    busy_scratch: Vec<usize>,
    place_scratch: VecDeque<usize>,
    /// Superset of the jobs currently in [`JobState::Migrating`] —
    /// appended to on every migration start, compacted each window — so
    /// transfer progress and arrivals never rescan the ever-growing job
    /// table (throughput mode appends a record per respawn).
    migrating: Vec<usize>,
    /// Window-major `(cpu, idle, mem)` table, shared with every other
    /// simulator over the same realization; `None` when the traces have
    /// unequal periods.
    window_table: Option<Arc<WindowTable>>,
    /// Pre-materialized crash/reboot schedule and migration-failure
    /// draws; empty/quiet when `cfg.faults` is disabled.
    faults: FaultModel,
    /// Nodes currently down. A crashed node is in none of `free`,
    /// `free_idle`, or `busy` until its reboot event fires.
    crashed: NodeIndex,
    /// Cursor into `faults.events()` (sorted by window).
    fault_cursor: usize,
    /// Fault counters accumulated over the run.
    fault_stats: FaultStats,
    /// Event recorder — disabled by default (one `Option` branch per
    /// emission site; the event closures never run). Telemetry only
    /// *reads* simulation state and simulated time, never RNG streams,
    /// so attaching a recorder cannot change any result.
    telemetry: Recorder,
    /// Counters already flushed to the global registry (watermark, so
    /// repeated `run()` calls never double-count).
    telemetry_absorbed: JournalCounts,
}

impl ClusterSim {
    /// Build the simulation: fetch (or synthesize) the owner-workload
    /// realization for `(cfg.trace, cfg.seed, cfg.nodes)` from the shared
    /// [`TraceLibrary`] and queue the whole family at its arrival times.
    ///
    /// Common random numbers make the realization independent of policy
    /// and cost parameters, so repeated constructions across a sweep
    /// reuse one synthesis; results are identical either way.
    pub fn new(cfg: ClusterConfig) -> Self {
        let (real, origin) =
            TraceLibrary::global().realize_with_origin(&cfg.trace, cfg.seed, cfg.nodes);
        let sim = Self::with_realization(cfg, &real);
        sim.telemetry.record(|| {
            Event::new(0, 0, match origin {
                RealizeOrigin::Hit => EventKind::TraceCacheHit,
                RealizeOrigin::Miss => EventKind::TraceCacheMiss,
                RealizeOrigin::Bypass => EventKind::TraceCacheBypass,
            })
        });
        sim
    }

    /// Build the simulation over a shared workload realization (cached or
    /// freshly synthesized) — traces, offsets, and the prebuilt window
    /// table are shared by `Arc`, never copied per policy.
    ///
    /// # Panics
    /// If the realization's node count differs from `cfg.nodes`.
    pub fn with_realization(cfg: ClusterConfig, real: &WorkloadRealization) -> Self {
        assert_eq!(real.nodes(), cfg.nodes, "realization must cover cfg.nodes");
        Self::assemble(
            cfg,
            real.traces().to_vec(),
            real.offsets().to_vec(),
            real.window_table().cloned(),
        )
    }

    /// Build the simulation over explicit per-node traces and start
    /// offsets — for measured trace data or hand-built test scenarios.
    ///
    /// # Panics
    /// If the number of traces or offsets differs from `cfg.nodes`.
    pub fn with_traces(
        cfg: ClusterConfig,
        traces: Vec<Arc<CoarseTrace>>,
        offsets: Vec<usize>,
    ) -> Self {
        let window_table = WindowTable::build(&traces, &offsets).map(Arc::new);
        Self::assemble(cfg, traces, offsets, window_table)
    }

    fn assemble(
        cfg: ClusterConfig,
        traces: Vec<Arc<CoarseTrace>>,
        offsets: Vec<usize>,
        window_table: Option<Arc<WindowTable>>,
    ) -> Self {
        assert_eq!(traces.len(), cfg.nodes, "one trace per node");
        assert_eq!(offsets.len(), cfg.nodes, "one offset per node");
        let nodes: Vec<NodeState> = traces
            .into_iter()
            .zip(offsets)
            .map(|(trace, offset)| {
                let mem0 = trace.sample(offset).mem_used_kb;
                NodeState {
                    trace,
                    offset,
                    memory: TwoPoolMemory::new(cfg.node_memory_kb, mem0),
                    hosted: None,
                }
            })
            .collect();
        let jobs: Vec<JobRecord> = cfg.family.jobs().iter().map(|s| JobRecord::new(*s)).collect();
        let queue = (0..jobs.len()).collect();
        let next_job_id = jobs.len() as u32;
        let n = cfg.nodes;
        // The fault schedule spans the run's hard horizon; events are a
        // pure function of (faults config, seed, node), so two runs of
        // the same config realize identical failures.
        let horizon = match cfg.mode {
            RunMode::Family => cfg.max_time,
            RunMode::Throughput { horizon } => horizon,
        };
        let max_windows = (horizon.as_nanos() / WINDOW.as_nanos()) as usize + 1;
        let faults = FaultModel::new(cfg.faults, cfg.seed, n, max_windows);
        ClusterSim {
            cfg,
            nodes,
            jobs,
            queue,
            window: 0,
            foreign_cpu: SimDuration::ZERO,
            local_busy_secs: 0.0,
            local_delay_secs: 0.0,
            next_job_id,
            completed: 0,
            free: NodeIndex::full(n),
            busy: NodeIndex::new(n),
            free_idle: NodeIndex::new(n),
            idle_w: vec![false; n],
            cpu_w: vec![0.0; n],
            busy_scratch: Vec::with_capacity(n),
            place_scratch: VecDeque::new(),
            migrating: Vec::new(),
            window_table,
            faults,
            crashed: NodeIndex::new(n),
            fault_cursor: 0,
            fault_stats: FaultStats::default(),
            telemetry: Recorder::from_env(),
            telemetry_absorbed: JournalCounts::default(),
        }
    }

    /// Attach (or detach) an event recorder, replacing the one built
    /// from `LINGER_TELEMETRY` at construction.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.telemetry = recorder;
    }

    /// Builder-style [`Self::set_recorder`].
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// The attached recorder (disabled unless enabled by environment or
    /// [`Self::set_recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.telemetry
    }

    /// An event stamped with the current window and `t`.
    fn event_at(&self, t: SimTime, kind: EventKind) -> Event {
        Event::new(self.window as u32, t.as_nanos(), kind)
    }

    /// Current simulated time (start of the current window).
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + WINDOW.mul_f64(self.window as f64)
    }

    /// The job records (inspect after a run).
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Total foreign CPU delivered so far.
    pub fn foreign_cpu_delivered(&self) -> SimDuration {
        self.foreign_cpu
    }

    /// Cluster-wide foreground delay ratio so far (the "<0.5% slowdown"
    /// headline).
    pub fn foreground_delay_ratio(&self) -> f64 {
        if self.local_busy_secs == 0.0 {
            0.0
        } else {
            self.local_delay_secs / self.local_busy_secs
        }
    }

    /// Number of completed jobs.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Fault-injection counters accumulated so far (all zero when
    /// `cfg.faults` is disabled).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Run to the configured termination condition. Returns `true` on
    /// normal completion, `false` if the family-mode safety horizon hit.
    pub fn run(&mut self) -> bool {
        let done = loop {
            match self.cfg.mode {
                RunMode::Family => {
                    if self.completed == self.jobs.len() {
                        break true;
                    }
                    if self.now() >= self.cfg.max_time {
                        break false;
                    }
                }
                RunMode::Throughput { horizon } => {
                    if self.now() >= horizon {
                        break true;
                    }
                }
            }
            self.step();
        };
        self.flush_telemetry();
        done
    }

    /// Merge this run's counters into the process-wide registry (once —
    /// a watermark guards repeated calls) and spill the journal as JSON
    /// lines when `LINGER_TELEMETRY_DIR` is set. The spill file name is
    /// a digest of the serialized configuration, so identical configs
    /// overwrite each other with identical bytes and a sweep stays
    /// race-free at any `--jobs`.
    fn flush_telemetry(&mut self) {
        let Some(journal) = self.telemetry.journal() else { return };
        let counts = journal.counts();
        let delta = counts.since(&self.telemetry_absorbed);
        if delta.events > 0 {
            linger_telemetry::metrics::global()
                .absorb_counts(self.cfg.params.policy.abbrev(), delta);
        }
        self.telemetry_absorbed = counts;
        if let Some(dir) = std::env::var_os("LINGER_TELEMETRY_DIR") {
            let name = format!(
                "journal-{}-{:016x}.jsonl",
                self.cfg.params.policy.abbrev(),
                config_digest(&self.cfg)
            );
            let path = std::path::Path::new(&dir).join(name);
            if let Err(e) = journal.write_jsonl(&path) {
                eprintln!("telemetry: could not write {}: {e}", path.display());
            }
        }
    }

    /// Advance one 2-second window.
    pub fn step(&mut self) {
        let t = self.now();
        let w = self.window;
        self.telemetry.record(|| {
            self.event_at(t, EventKind::WindowStart { queue_depth: self.queue.len() as u32 })
        });

        // 0. Per-window node state: one trace lookup per node, reused by
        //    every policy/placement query below instead of re-deriving
        //    idle/cpu from the trace at each query.
        // (Memory demand refreshes in the same pass: each node's fields
        // are independent, so fusing the loops only saves a second walk
        // over the node array. The window-major table holds the exact
        // values the per-trace lookups would return.)
        self.free_idle.clear();
        if let Some(tbl) = &self.window_table {
            let row = tbl.row(w);
            for (ni, c) in row.iter().enumerate() {
                self.idle_w[ni] = c.idle;
                self.cpu_w[ni] = c.cpu;
                self.nodes[ni].memory.set_local_kb(c.mem_kb);
                if c.idle && self.free.contains(ni) {
                    self.free_idle.insert(ni);
                }
            }
        } else {
            for ni in 0..self.nodes.len() {
                let node = &mut self.nodes[ni];
                let idle = node.is_idle(w);
                self.idle_w[ni] = idle;
                self.cpu_w[ni] = node.cpu(w);
                let used = node.mem_used(w);
                node.memory.set_local_kb(used);
                if idle && self.free.contains(ni) {
                    self.free_idle.insert(ni);
                }
            }
        }

        // 1. Fault events. A crash knocks the node out of every
        //    scheduling set and kills whatever it hosted (or was
        //    receiving); a reboot returns it to the free pool. The
        //    schedule is pre-sorted by window, so this is a cursor
        //    advance — O(1) per window when no faults are configured.
        while let Some(&ev) = self.faults.events().get(self.fault_cursor) {
            if ev.window > w {
                break;
            }
            self.fault_cursor += 1;
            match ev.kind {
                FaultEventKind::Crash => self.crash_node(ev.node, t),
                FaultEventKind::Reboot => self.reboot_node(ev.node),
            }
        }

        // 2. Shared-network transfer progress, then migration arrivals.
        //    `migrating` is a superset of the in-flight jobs, so working
        //    from it (sorted — the ascending order the old full job-table
        //    scan visited) touches the same jobs in the same order. An
        //    arrival can evict-and-remigrate (IE on a now-busy
        //    destination), pushing onto `self.migrating` mid-loop; those
        //    jobs have fresh deadlines in the future and are merged back
        //    for the next window.
        let mut mig = std::mem::take(&mut self.migrating);
        mig.sort_unstable();
        mig.dedup();
        if let Some(net) = self.cfg.network {
            let flows = mig
                .iter()
                .filter(|&&ji| {
                    let j = &self.jobs[ji];
                    j.state == JobState::Migrating
                        && j.migration_bits_left.is_some_and(|b| b > 0.0)
                })
                .count();
            if flows > 0 {
                let moved = net.bits_transferred(flows, WINDOW.as_secs_f64());
                for &ji in &mig {
                    let j = &mut self.jobs[ji];
                    if j.state == JobState::Migrating {
                        if let Some(bits) = j.migration_bits_left.as_mut() {
                            *bits -= moved;
                        }
                    }
                }
            }
        }
        for &ji in &mig {
            let j = &self.jobs[ji];
            let fixed_done = j.migration_until.is_some_and(|until| t >= until);
            let bits_done = j.migration_bits_left.is_none_or(|b| b <= 0.0);
            if j.state == JobState::Migrating && fixed_done && bits_done {
                if self.faults.migration_fails(j.spec.id.0, j.transfer_seq) {
                    // The image was lost in transit: free the reserved
                    // destination and retry with backoff (or abandon).
                    self.fault_stats.migration_failures += 1;
                    let dest = j.node.expect("migration has a destination");
                    let job = j.spec.id.0;
                    self.telemetry.record(|| {
                        self.event_at(t, EventKind::MigrationFail { dest: dest.0 as u32 })
                            .on_node(dest.0 as u32)
                            .for_job(job)
                    });
                    self.release_node(dest);
                    self.retry_migration(ji, t);
                } else {
                    self.arrive(ji, t);
                }
            }
        }
        mig.retain(|&ji| self.jobs[ji].state == JobState::Migrating);
        mig.extend(&self.migrating);
        self.migrating = mig;

        // 3. Idle/non-idle transitions and policy decisions — hosted
        //    nodes only; the busy index skips free nodes entirely.
        //    Snapshot it first: migrations during the loop reshape the
        //    set, but any node (re)claimed mid-loop hosts a Migrating
        //    job, which every arm below ignores, and released nodes are
        //    caught by the re-check on `hosted`.
        let mut busy_scratch = std::mem::take(&mut self.busy_scratch);
        busy_scratch.clear();
        busy_scratch.extend(self.busy.iter());
        for &ni in &busy_scratch {
            let Some(ji) = self.nodes[ni].hosted else { continue };
            match self.jobs[ji].state {
                JobState::Running
                    if !self.idle_w[ni] => {
                        self.on_non_idle(ji, NodeId(ni), t);
                    }
                JobState::Lingering => {
                    if self.idle_w[ni] {
                        // Episode over; back to plain running.
                        self.jobs[ji].state = JobState::Running;
                        self.jobs[ji].episode_start = None;
                        self.record_decision(ji, NodeId(ni), t, DecisionAction::Resume, None);
                    } else if self.cfg.params.policy == Policy::LingerLonger {
                        self.maybe_migrate_lingering(ji, NodeId(ni), t);
                    }
                }
                JobState::Paused => {
                    if self.idle_w[ni] {
                        self.jobs[ji].state = JobState::Running;
                        self.jobs[ji].episode_start = None;
                        self.jobs[ji].pause_deadline = None;
                        self.record_decision(ji, NodeId(ni), t, DecisionAction::Resume, None);
                    } else if self.jobs[ji].pause_deadline.is_some_and(|d| t >= d) {
                        self.evict(ji, NodeId(ni), t);
                    }
                }
                _ => {}
            }
        }

        // 4. Progress, completions, and delay accounting. The busy-hours
        //    sum runs over every node (same ascending order as before);
        //    job progress only touches hosted nodes.
        for ni in 0..self.nodes.len() {
            self.local_busy_secs += self.cpu_w[ni] * WINDOW.as_secs_f64();
        }
        busy_scratch.clear();
        busy_scratch.extend(self.busy.iter());
        for &ni in &busy_scratch {
            let u = self.cpu_w[ni];
            let Some(ji) = self.nodes[ni].hosted else { continue };
            let state = self.jobs[ji].state;
            if !matches!(state, JobState::Running | JobState::Lingering) {
                // Paused/migrating-in jobs make no progress; account time.
                self.jobs[ji].breakdown.add(state, WINDOW);
                continue;
            }
            // Memory pressure: a partially-resident job pages and slows
            // proportionally.
            let residency = self.nodes[ni].memory.foreign_residency();
            let rate = steal_rate(&self.cfg.table, u, self.cfg.params.context_switch) * residency;
            if state == JobState::Lingering {
                // Added foreground latency: one context switch per local
                // run burst; expected bursts in the window = u·W / R(u).
                let run_mean = self.cfg.table.interpolate(u).run_mean;
                if run_mean > 0.0 {
                    self.local_delay_secs += self.cfg.params.context_switch.as_secs_f64()
                        * (u * WINDOW.as_secs_f64() / run_mean);
                }
            }
            let gain = WINDOW.mul_f64(rate);
            let remaining = self.jobs[ji].remaining;
            if rate > 0.0 && remaining <= gain {
                // Completes within this window.
                let frac = remaining.as_secs_f64() / gain.as_secs_f64();
                let at = t + WINDOW.mul_f64(frac);
                self.foreign_cpu += remaining;
                self.jobs[ji].remaining = SimDuration::ZERO;
                self.jobs[ji].breakdown.add(state, WINDOW.mul_f64(frac));
                self.complete(ji, NodeId(ni), at);
            } else {
                self.foreign_cpu += gain;
                self.jobs[ji].remaining = remaining.saturating_sub(gain);
                self.jobs[ji].breakdown.add(state, WINDOW);
            }
        }
        self.busy_scratch = busy_scratch;

        // 5. Placement of queued jobs.
        self.place_queued(t);

        // 6. Queue-time accounting. After placement, `self.queue` holds
        //    exactly the jobs in `JobState::Queued` (everything else on
        //    it was placed or deferred by arrival time), so walking it
        //    touches the same records the old full job-table scan did —
        //    without visiting every completed job of the run. A job in
        //    `Migrating` always has a reserved destination (both
        //    migration starts set one), so the old scan's off-node
        //    migration arm never fired.
        // Queue time starts at submission, not at simulation start.
        for qi in 0..self.queue.len() {
            let ji = self.queue[qi];
            let j = &mut self.jobs[ji];
            debug_assert_eq!(j.state, JobState::Queued);
            if t >= j.spec.arrival {
                j.breakdown.add(JobState::Queued, WINDOW);
            }
        }

        self.window += 1;
    }

    /// Record a policy decision about `ji` on `node` (telemetry only —
    /// reads window utilization, mutates nothing).
    fn record_decision(
        &self,
        ji: usize,
        node: NodeId,
        t: SimTime,
        action: DecisionAction,
        dest: Option<NodeId>,
    ) {
        self.telemetry.record(|| {
            self.event_at(t, EventKind::Decision {
                action,
                host_cpu: Some(self.cpu_w[node.0]),
                dest_cpu: dest.map(|d| self.cpu_w[d.0]),
                age_secs: None,
                migration_secs: None,
                dest: dest.map(|d| d.0 as u32),
            })
            .on_node(node.0 as u32)
            .for_job(self.jobs[ji].spec.id.0)
        });
    }

    /// A running job's node turned non-idle: apply the policy.
    fn on_non_idle(&mut self, ji: usize, node: NodeId, t: SimTime) {
        match self.cfg.params.policy {
            Policy::ImmediateEviction => self.evict(ji, node, t),
            Policy::PauseAndMigrate => {
                self.jobs[ji].state = JobState::Paused;
                self.jobs[ji].episode_start = Some(t);
                self.jobs[ji].pause_deadline = Some(t + self.cfg.params.pause_timeout);
                self.record_decision(ji, node, t, DecisionAction::Pause, None);
            }
            Policy::LingerLonger | Policy::LingerForever => {
                self.jobs[ji].state = JobState::Lingering;
                self.jobs[ji].episode_start = Some(t);
                self.record_decision(ji, node, t, DecisionAction::Linger, None);
            }
        }
    }

    /// The Linger-Longer migration test (paper Sec 2): once the episode
    /// age reaches `T_lingr = (1−l)/(h−l)·T_migr` for the best available
    /// destination, migrate.
    fn maybe_migrate_lingering(&mut self, ji: usize, node: NodeId, t: SimTime) {
        let Some(start) = self.jobs[ji].episode_start else { return };
        let Some(dest) = self.best_destination(self.jobs[ji].spec, Some(node)) else {
            return; // nowhere better to go; keep lingering
        };
        let h = self.cpu_w[node.0];
        let l = self.cpu_w[dest.0];
        let t_migr = self.cfg.params.migration.cost(self.jobs[ji].spec.mem_kb);
        let age = t.saturating_since(start);
        if should_migrate(age, h, l, t_migr) {
            self.telemetry.record(|| {
                self.event_at(t, EventKind::Decision {
                    action: DecisionAction::Migrate,
                    host_cpu: Some(h),
                    dest_cpu: Some(l),
                    age_secs: Some(age.as_secs_f64()),
                    migration_secs: Some(t_migr.as_secs_f64()),
                    dest: Some(dest.0 as u32),
                })
                .on_node(node.0 as u32)
                .for_job(self.jobs[ji].spec.id.0)
            });
            self.migrate(ji, node, dest, t);
        }
    }

    /// Evict: migrate to the best idle node if one exists, otherwise
    /// return to the queue (the migration cost is then paid when the job
    /// is re-placed).
    fn evict(&mut self, ji: usize, node: NodeId, t: SimTime) {
        match self.best_destination(self.jobs[ji].spec, Some(node)) {
            Some(dest) => {
                self.record_decision(ji, node, t, DecisionAction::Evict, Some(dest));
                self.migrate(ji, node, dest, t);
            }
            None => {
                self.record_decision(ji, node, t, DecisionAction::Requeue, None);
                self.release_node(node);
                self.requeue(ji, t);
            }
        }
    }

    /// Return a job to the central queue with no node and no in-flight
    /// migration state.
    fn requeue(&mut self, ji: usize, t: SimTime) {
        let j = &mut self.jobs[ji];
        j.state = JobState::Queued;
        j.node = None;
        j.episode_start = None;
        j.pause_deadline = None;
        j.migration_until = None;
        j.migration_bits_left = None;
        j.migration_attempts = 0;
        self.queue.push_back(ji);
        self.telemetry.record(|| {
            self.event_at(t, EventKind::QueueEnter).for_job(self.jobs[ji].spec.id.0)
        });
    }

    /// A node crashes: it leaves every scheduling set, and the job it
    /// hosted — running, lingering, paused, or still in transit toward
    /// it — is lost and must restart elsewhere from its last checkpoint
    /// (re-placement of a `has_run` job pays a full migration).
    fn crash_node(&mut self, ni: usize, t: SimTime) {
        if self.crashed.contains(ni) {
            return;
        }
        self.crashed.insert(ni);
        self.fault_stats.crashes += 1;
        self.free.remove(ni);
        self.free_idle.remove(ni);
        let hosted = self.nodes[ni].hosted;
        self.telemetry.record(|| {
            self.event_at(t, EventKind::NodeCrash {
                evicted: hosted.map(|ji| self.jobs[ji].spec.id.0),
            })
            .on_node(ni as u32)
        });
        if let Some(ji) = hosted {
            self.nodes[ni].memory.detach_foreign();
            self.nodes[ni].hosted = None;
            self.busy.remove(ni);
            self.fault_stats.crash_evictions += 1;
            self.jobs[ji].crashes += 1;
            if self.jobs[ji].state == JobState::Migrating {
                // The in-flight image died with its destination; retry
                // toward a fresh one under the same backoff budget.
                self.retry_migration(ji, t);
            } else {
                self.requeue(ji, t);
            }
        }
    }

    /// A crashed node's reboot completes: it rejoins the free pool (and
    /// the idle candidate set if its owner workload is idle).
    fn reboot_node(&mut self, ni: usize) {
        if !self.crashed.contains(ni) {
            return;
        }
        self.crashed.remove(ni);
        self.free.insert(ni);
        if self.idle_w[ni] {
            self.free_idle.insert(ni);
        }
        self.telemetry
            .record(|| self.event_at(self.now(), EventKind::NodeReboot).on_node(ni as u32));
    }

    /// A transfer attempt failed (in transit or by destination crash):
    /// start the next attempt toward the best destination after a capped
    /// exponential backoff plus checkpoint-restart cost, or abandon the
    /// migration once the attempt budget is spent. The caller has
    /// already released (or lost) the previous destination.
    fn retry_migration(&mut self, ji: usize, t: SimTime) {
        let attempt = self.jobs[ji].migration_attempts.max(1);
        let retry = self.cfg.params.retry;
        if attempt >= retry.max_attempts {
            self.fault_stats.migrations_abandoned += 1;
            self.telemetry.record(|| {
                self.event_at(t, EventKind::MigrationAbandon).for_job(self.jobs[ji].spec.id.0)
            });
            self.requeue(ji, t);
            return;
        }
        let spec = self.jobs[ji].spec;
        let Some(dest) = self.best_destination(spec, None) else {
            // Nowhere to retry toward; fall back to the queue instead of
            // burning attempts against a saturated cluster.
            self.requeue(ji, t);
            return;
        };
        self.fault_stats.migration_retries += 1;
        self.telemetry.record(|| {
            self.event_at(t, EventKind::MigrationRetry { dest: dest.0 as u32, attempt })
                .on_node(dest.0 as u32)
                .for_job(spec.id.0)
        });
        let start = t + retry.retry_delay(attempt - 1);
        let (until, bits) = self.migration_terms(spec.mem_kb, start);
        let j = &mut self.jobs[ji];
        j.state = JobState::Migrating;
        j.node = Some(dest);
        j.migration_until = Some(until);
        j.migration_bits_left = bits;
        j.migration_attempts = attempt + 1;
        j.transfer_seq += 1;
        self.migrating.push(ji);
        self.claim_node(dest, ji);
    }

    /// Begin a migration from `from` to the reserved `dest`.
    fn migrate(&mut self, ji: usize, from: NodeId, dest: NodeId, t: SimTime) {
        self.telemetry.record(|| {
            self.event_at(t, EventKind::MigrationStart { dest: dest.0 as u32, attempt: 1 })
                .on_node(from.0 as u32)
                .for_job(self.jobs[ji].spec.id.0)
        });
        self.release_node(from);
        let (until, bits) = self.migration_terms(self.jobs[ji].spec.mem_kb, t);
        let j = &mut self.jobs[ji];
        j.state = JobState::Migrating;
        j.node = Some(dest);
        j.migration_until = Some(until);
        j.migration_bits_left = bits;
        j.episode_start = None;
        j.pause_deadline = None;
        j.migrations += 1;
        j.migration_attempts = 1;
        j.transfer_seq += 1;
        self.migrating.push(ji);
        self.claim_node(dest, ji); // reserve
    }

    /// Fixed-deadline and transfer terms for a migration starting at `t`.
    ///
    /// Without a shared network, the whole cost (processing + transfer at
    /// the effective rate) is a deadline. With one, the deadline covers
    /// only the fixed processing; the image's bits then drain at whatever
    /// rate the contended backbone provides.
    fn migration_terms(&self, mem_kb: u32, t: SimTime) -> (SimTime, Option<f64>) {
        match self.cfg.network {
            None => (t + self.cfg.params.migration.cost(mem_kb), None),
            Some(_) => {
                let fixed = self.cfg.params.migration.source_processing
                    + self.cfg.params.migration.dest_processing;
                (t + fixed, Some(mem_kb as f64 * 1024.0 * 8.0))
            }
        }
    }

    /// A migrating job materializes on its reserved destination.
    fn arrive(&mut self, ji: usize, t: SimTime) {
        let node = self.jobs[ji].node.expect("migration has a destination");
        self.telemetry.record(|| {
            self.event_at(t, EventKind::MigrationArrive { dest: node.0 as u32 })
                .on_node(node.0 as u32)
                .for_job(self.jobs[ji].spec.id.0)
        });
        self.nodes[node.0].memory.attach_foreign(self.jobs[ji].spec.mem_kb);
        let idle = self.idle_w[node.0];
        let j = &mut self.jobs[ji];
        j.migration_until = None;
        j.migration_bits_left = None;
        j.migration_attempts = 0;
        j.has_run = true;
        if j.first_start.is_none() {
            j.first_start = Some(t);
        }
        j.state = JobState::Running;
        j.episode_start = None;
        if !idle {
            // The destination turned non-idle while the job was in
            // transit: apply the policy's non-idle reaction immediately
            // (IE evicts again — the "unnecessary, expensive migrations"
            // the paper attributes to it).
            self.on_non_idle(ji, node, t);
        }
    }

    /// Job finished: free the node, record, respawn in throughput mode.
    fn complete(&mut self, ji: usize, node: NodeId, at: SimTime) {
        self.release_node(node);
        let j = &mut self.jobs[ji];
        j.state = JobState::Done;
        j.node = None;
        j.completed_at = Some(at);
        self.completed += 1;
        let j = &self.jobs[ji];
        self.telemetry.record(|| {
            self.event_at(at, EventKind::Complete {
                queued_secs: j.breakdown.queued.as_secs_f64(),
                running_secs: j.breakdown.running.as_secs_f64(),
                lingering_secs: j.breakdown.lingering.as_secs_f64(),
                paused_secs: j.breakdown.paused.as_secs_f64(),
                migrating_secs: j.breakdown.migrating.as_secs_f64(),
                completion_secs: j
                    .completion_time()
                    .map(|d| d.as_secs_f64())
                    .unwrap_or(0.0),
                migrations: j.migrations,
            })
            .on_node(node.0 as u32)
            .for_job(j.spec.id.0)
        });
        let j = &mut self.jobs[ji];
        if let RunMode::Throughput { .. } = self.cfg.mode {
            // Hold the number of jobs in the system constant.
            let spec = JobSpec {
                id: JobId(self.next_job_id),
                arrival: at,
                ..j.spec
            };
            self.next_job_id += 1;
            self.jobs.push(JobRecord::new(spec));
            self.queue.push_back(self.jobs.len() - 1);
        }
    }

    fn claim_node(&mut self, node: NodeId, ji: usize) {
        self.nodes[node.0].hosted = Some(ji);
        self.free.remove(node.0);
        self.free_idle.remove(node.0);
        self.busy.insert(node.0);
    }

    fn release_node(&mut self, node: NodeId) {
        self.nodes[node.0].memory.detach_foreign();
        self.nodes[node.0].hosted = None;
        self.free.insert(node.0);
        if self.idle_w[node.0] {
            self.free_idle.insert(node.0);
        }
        self.busy.remove(node.0);
    }

    /// The best migration destination: the free idle node with the lowest
    /// current utilization that can hold the job.
    ///
    /// The `free_idle` index iterates ascending — the order the old full
    /// scan visited nodes — so `min_by` (with the id tiebreak) picks the
    /// very same destination, and a saturated cluster (no free idle
    /// nodes) answers in O(1).
    fn best_destination(&self, spec: JobSpec, exclude: Option<NodeId>) -> Option<NodeId> {
        let ex = exclude.map(|n| n.0);
        self.free_idle
            .iter()
            .filter(|&ni| Some(ni) != ex)
            .filter(|&ni| self.nodes[ni].memory.fits(spec.mem_kb))
            .min_by(|&a, &b| {
                self.cpu_w[a]
                    .partial_cmp(&self.cpu_w[b])
                    .expect("finite cpu")
                    .then(a.cmp(&b))
            })
            .map(NodeId)
    }

    /// FIFO placement of queued jobs: idle nodes first; lingering policies
    /// may fall back to the least-loaded non-idle node (Sec 4.2: LL "can
    /// run jobs on any semi-available node").
    fn place_queued(&mut self, t: SimTime) {
        let mut unplaced = std::mem::take(&mut self.place_scratch);
        unplaced.clear();
        // Smallest memory demand whose scan already came up empty this
        // pass. While placing, both candidate sets only shrink (claims
        // remove nodes; free nodes' memory never changes mid-pass), so a
        // failure at `m` KB guarantees failure for any demand ≥ m — the
        // scan can be skipped without changing a single placement. This
        // turns the saturated-queue case from O(queue × free) into
        // O(queue).
        let mut idle_fail_kb = u32::MAX;
        let mut nonidle_fail_kb = u32::MAX;
        while let Some(ji) = self.queue.pop_front() {
            if self.jobs[ji].spec.arrival > t {
                unplaced.push_back(ji);
                continue;
            }
            let spec = self.jobs[ji].spec;
            let mut target = if spec.mem_kb >= idle_fail_kb {
                None
            } else {
                let d = self.best_destination(spec, None);
                if d.is_none() {
                    idle_fail_kb = spec.mem_kb;
                }
                d
            };
            if target.is_none()
                && self.cfg.params.policy.places_on_non_idle()
                && spec.mem_kb < nonidle_fail_kb
            {
                // Least-loaded non-idle node that can take the job.
                let d = self
                    .free
                    .iter()
                    .filter(|&ni| !self.idle_w[ni])
                    .filter(|&ni| self.nodes[ni].memory.fits(spec.mem_kb))
                    .min_by(|&a, &b| {
                        self.cpu_w[a]
                            .partial_cmp(&self.cpu_w[b])
                            .expect("finite cpu")
                            .then(a.cmp(&b))
                    })
                    .map(NodeId);
                if d.is_none() {
                    nonidle_fail_kb = spec.mem_kb;
                }
                target = d;
            }
            match target {
                None => unplaced.push_back(ji),
                Some(dest) => {
                    self.claim_node(dest, ji);
                    self.telemetry.record(|| {
                        self.event_at(t, EventKind::Decision {
                            action: DecisionAction::Place,
                            host_cpu: Some(self.cpu_w[dest.0]),
                            dest_cpu: None,
                            age_secs: None,
                            migration_secs: None,
                            dest: Some(dest.0 as u32),
                        })
                        .for_job(spec.id.0)
                    });
                    if self.jobs[ji].has_run {
                        // Re-materializing an evicted job costs a
                        // migration.
                        let (until, bits) = self.migration_terms(spec.mem_kb, t);
                        let j = &mut self.jobs[ji];
                        j.state = JobState::Migrating;
                        j.node = Some(dest);
                        j.migration_until = Some(until);
                        j.migration_bits_left = bits;
                        j.migrations += 1;
                        j.migration_attempts = 1;
                        j.transfer_seq += 1;
                        self.migrating.push(ji);
                        self.telemetry.record(|| {
                            self.event_at(t, EventKind::MigrationStart {
                                dest: dest.0 as u32,
                                attempt: 1,
                            })
                            .for_job(spec.id.0)
                        });
                    } else {
                        self.nodes[dest.0].memory.attach_foreign(spec.mem_kb);
                        let idle = self.idle_w[dest.0];
                        let j = &mut self.jobs[ji];
                        j.node = Some(dest);
                        j.has_run = true;
                        j.first_start = Some(t);
                        if idle {
                            j.state = JobState::Running;
                        } else {
                            j.state = JobState::Lingering;
                            j.episode_start = Some(t);
                            self.record_decision(ji, dest, t, DecisionAction::Linger, None);
                        }
                    }
                }
            }
        }
        // The drained queue buffer becomes next window's scratch.
        std::mem::swap(&mut self.queue, &mut unplaced);
        self.place_scratch = unplaced;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linger::JobFamily;
    use linger_sim_core::SimDuration;

    fn small_cfg(policy: Policy) -> ClusterConfig {
        let mut cfg = ClusterConfig::paper(
            policy,
            JobFamily::uniform(8, SimDuration::from_secs(120), 8 * 1024),
        );
        cfg.nodes = 8;
        cfg.trace.duration = SimDuration::from_secs(2 * 3600);
        cfg.seed = 11;
        cfg
    }

    #[test]
    fn family_completes_under_each_policy() {
        for policy in Policy::ALL {
            let mut sim = ClusterSim::new(small_cfg(policy));
            assert!(sim.run(), "{policy} did not finish");
            assert_eq!(sim.completed(), 8);
            for j in sim.jobs() {
                assert_eq!(j.state, JobState::Done);
                assert_eq!(j.remaining, SimDuration::ZERO);
                assert!(j.completion_time().unwrap() >= SimDuration::from_secs(120));
            }
        }
    }

    #[test]
    fn cpu_conservation() {
        // Foreign CPU delivered equals the family's total demand.
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerLonger));
        sim.run();
        let expect = 8.0 * 120.0;
        let got = sim.foreign_cpu_delivered().as_secs_f64();
        assert!((got - expect).abs() < 1e-6, "delivered {got} vs {expect}");
    }

    #[test]
    fn linger_forever_never_migrates() {
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerForever));
        sim.run();
        for j in sim.jobs() {
            assert_eq!(j.migrations, 0, "LF must never migrate");
            assert_eq!(j.breakdown.migrating, SimDuration::ZERO);
        }
    }

    #[test]
    fn immediate_eviction_never_lingers() {
        let mut sim = ClusterSim::new(small_cfg(Policy::ImmediateEviction));
        sim.run();
        for j in sim.jobs() {
            assert_eq!(j.breakdown.lingering, SimDuration::ZERO);
            assert_eq!(j.breakdown.paused, SimDuration::ZERO);
        }
    }

    #[test]
    fn pause_and_migrate_pauses() {
        let mut sim = ClusterSim::new(small_cfg(Policy::PauseAndMigrate));
        sim.run();
        let paused: f64 = sim.jobs().iter().map(|j| j.breakdown.paused.as_secs_f64()).sum();
        let lingered: f64 =
            sim.jobs().iter().map(|j| j.breakdown.lingering.as_secs_f64()).sum();
        assert_eq!(lingered, 0.0, "PM never lingers");
        // With several 2-minute jobs on user workstations, at least one
        // pause episode is overwhelmingly likely.
        assert!(paused > 0.0, "PM should pause at least once");
    }

    #[test]
    fn lingering_policies_linger() {
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerForever));
        sim.run();
        let lingered: f64 =
            sim.jobs().iter().map(|j| j.breakdown.lingering.as_secs_f64()).sum();
        assert!(lingered > 0.0, "LF on user workstations must linger");
    }

    #[test]
    fn state_breakdown_accounts_for_completion_time() {
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerLonger));
        sim.run();
        for j in sim.jobs() {
            let total = j.breakdown.total().as_secs_f64();
            let completion = j.completion_time().unwrap().as_secs_f64();
            // Window-granular accounting: within one window per state
            // transition of the exact value.
            assert!(
                (total - completion).abs() <= 8.0,
                "breakdown {total} vs completion {completion}"
            );
        }
    }

    #[test]
    fn throughput_mode_holds_job_count() {
        let mut cfg = small_cfg(Policy::LingerLonger).with_throughput_mode();
        cfg.mode = RunMode::Throughput { horizon: SimTime::from_secs(900) };
        let mut sim = ClusterSim::new(cfg);
        sim.run();
        // Live jobs (not Done) should still number 8.
        let live = sim.jobs().iter().filter(|j| j.state != JobState::Done).count();
        assert_eq!(live, 8);
        assert!(sim.foreign_cpu_delivered() > SimDuration::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = ClusterSim::new(small_cfg(Policy::LingerLonger));
            sim.run();
            sim.jobs()
                .iter()
                .map(|j| j.completed_at.unwrap().as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn node_indices_track_hosted_state() {
        // The incremental free/busy indices must equal the naive hosted
        // scan after every window, for every policy.
        for policy in Policy::ALL {
            let mut sim = ClusterSim::new(small_cfg(policy));
            for _ in 0..300 {
                sim.step();
                let free_scan: Vec<usize> = (0..sim.nodes.len())
                    .filter(|&ni| sim.nodes[ni].hosted.is_none())
                    .collect();
                let busy_scan: Vec<usize> = (0..sim.nodes.len())
                    .filter(|&ni| sim.nodes[ni].hosted.is_some())
                    .collect();
                assert_eq!(sim.free.iter().collect::<Vec<_>>(), free_scan, "{policy}");
                assert_eq!(sim.busy.iter().collect::<Vec<_>>(), busy_scan, "{policy}");
                let free_idle_scan: Vec<usize> = (0..sim.nodes.len())
                    .filter(|&ni| sim.nodes[ni].hosted.is_none() && sim.idle_w[ni])
                    .collect();
                assert_eq!(
                    sim.free_idle.iter().collect::<Vec<_>>(),
                    free_idle_scan,
                    "{policy}"
                );
            }
        }
    }

    #[test]
    fn crashes_evict_jobs_and_nodes_recover() {
        let mut cfg = small_cfg(Policy::LingerLonger);
        cfg.faults = crate::faults::FaultConfig {
            crash_rate_per_hour: 30.0,
            mean_reboot_secs: 60.0,
            migration_failure_prob: 0.0,
        };
        let mut sim = ClusterSim::new(cfg);
        assert!(sim.run(), "family must still complete under crashes");
        assert_eq!(sim.completed(), 8);
        let fs = sim.fault_stats();
        assert!(fs.crashes > 0, "30 crashes/node-hour must fire");
        // Reboots are ~1 min; by completion most nodes should be back.
        for j in sim.jobs() {
            assert_eq!(j.state, JobState::Done);
            assert_eq!(j.remaining, SimDuration::ZERO);
        }
    }

    #[test]
    fn node_indices_respect_crashed_nodes() {
        let mut cfg = small_cfg(Policy::LingerLonger);
        cfg.faults = crate::faults::FaultConfig {
            crash_rate_per_hour: 40.0,
            mean_reboot_secs: 120.0,
            migration_failure_prob: 0.2,
        };
        let mut sim = ClusterSim::new(cfg);
        let mut saw_crashed = false;
        for _ in 0..900 {
            sim.step();
            for ni in 0..sim.nodes.len() {
                if sim.crashed.contains(ni) {
                    saw_crashed = true;
                    assert!(!sim.free.contains(ni), "crashed node in free");
                    assert!(!sim.busy.contains(ni), "crashed node in busy");
                    assert!(!sim.free_idle.contains(ni), "crashed node in free_idle");
                    assert!(sim.nodes[ni].hosted.is_none(), "crashed node hosts a job");
                } else {
                    assert_eq!(sim.free.contains(ni), sim.nodes[ni].hosted.is_none());
                    assert_eq!(sim.busy.contains(ni), sim.nodes[ni].hosted.is_some());
                }
            }
        }
        assert!(saw_crashed, "the fault schedule must down at least one node");
    }

    #[test]
    fn migration_failures_retry_and_jobs_still_finish() {
        // Heavier than `small_cfg` so IE performs plenty of transfers.
        let mut cfg = ClusterConfig::paper(
            Policy::ImmediateEviction,
            JobFamily::uniform(16, SimDuration::from_secs(600), 8 * 1024),
        );
        cfg.nodes = 8;
        cfg.trace.duration = SimDuration::from_secs(6 * 3600);
        cfg.seed = 11;
        cfg.faults = crate::faults::FaultConfig {
            crash_rate_per_hour: 0.0,
            mean_reboot_secs: 120.0,
            migration_failure_prob: 0.5,
        };
        let mut sim = ClusterSim::new(cfg);
        assert!(sim.run(), "family must complete despite transfer failures");
        assert_eq!(sim.completed(), 16);
        let fs = sim.fault_stats();
        assert_eq!(fs.crashes, 0);
        assert!(fs.migration_failures > 0, "p=0.5 must lose some transfers");
        assert!(
            fs.migration_retries > 0 || fs.migrations_abandoned > 0,
            "failed transfers must retry or abandon"
        );
    }

    #[test]
    fn fault_runs_are_deterministic_given_seed() {
        let run = || {
            let mut cfg = small_cfg(Policy::LingerLonger);
            cfg.faults = crate::faults::FaultConfig {
                crash_rate_per_hour: 20.0,
                mean_reboot_secs: 90.0,
                migration_failure_prob: 0.3,
            };
            let mut sim = ClusterSim::new(cfg);
            sim.run();
            let fs = sim.fault_stats();
            let times: Vec<u64> = sim
                .jobs()
                .iter()
                .filter_map(|j| j.completed_at.map(|t| t.as_nanos()))
                .collect();
            (fs, times)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disabled_fault_params_do_not_perturb_runs() {
        // With crash rate and failure probability at zero, the *other*
        // fault knobs must not leak into the simulation at all.
        let run = |reboot: f64| {
            let mut cfg = small_cfg(Policy::LingerLonger);
            cfg.faults.mean_reboot_secs = reboot;
            let mut sim = ClusterSim::new(cfg);
            sim.run();
            sim.jobs()
                .iter()
                .map(|j| j.completed_at.unwrap().as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(120.0), run(999_999.0));
    }

    #[test]
    fn foreground_delay_is_small() {
        let mut sim = ClusterSim::new(small_cfg(Policy::LingerForever));
        sim.run();
        let d = sim.foreground_delay_ratio();
        assert!(d < 0.02, "foreground delay {d} too large");
    }
}
