//! Cluster experiment configuration.

use crate::faults::FaultConfig;
use crate::network::NetworkModel;
use linger::{JobFamily, Policy, PolicyParams};
use linger_sim_core::{SimDuration, SimTime};
use linger_workload::{BurstParamTable, CoarseTraceConfig, TOTAL_MEMORY_KB};
use serde::{Deserialize, Serialize};

/// What the simulation run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunMode {
    /// Submit the family at time zero and run until every job completes
    /// (the Fig 7 Avg-Job / Variation / Family-Time columns).
    Family,
    /// Hold the number of jobs in the system constant for a fixed horizon
    /// (the Fig 7 Throughput column: "we hold the number of jobs in the
    /// system … constant for a simulated one-hour execution").
    Throughput {
        /// The fixed horizon (paper: one hour).
        horizon: SimTime,
    },
}

/// Full configuration of a cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of workstations (paper: 64).
    pub nodes: usize,
    /// Scheduling policy and its parameters.
    pub params: PolicyParams,
    /// The foreign jobs to run.
    pub family: JobFamily,
    /// Family or constant-load throughput mode.
    pub mode: RunMode,
    /// Coarse-trace synthesis configuration (one trace per node, replayed
    /// from a random offset).
    pub trace: CoarseTraceConfig,
    /// Fine-grain burst parameter table.
    pub table: BurstParamTable,
    /// Physical memory per node, KB.
    pub node_memory_kb: u32,
    /// Shared migration network. `None` charges each migration the fixed
    /// per-flow cost from [`linger::MigrationCostModel`]; `Some` makes
    /// concurrent migrations contend for the backbone.
    pub network: Option<NetworkModel>,
    /// Fault injection (node crashes and migration failures). The
    /// default is fully disabled, which leaves every run bit-identical
    /// to a fault-free simulation.
    pub faults: FaultConfig,
    /// Master seed.
    pub seed: u64,
    /// Safety horizon for family mode (a run that exceeds it aborts).
    pub max_time: SimTime,
}

impl ClusterConfig {
    /// The paper's Sec 4.2 setup for the given policy and job family:
    /// 64 nodes, paper-calibrated workload models and migration costs.
    pub fn paper(policy: Policy, family: JobFamily) -> Self {
        ClusterConfig {
            nodes: 64,
            params: PolicyParams::paper(policy),
            family,
            mode: RunMode::Family,
            trace: CoarseTraceConfig {
                duration: SimDuration::from_secs(4 * 3600),
                ..Default::default()
            },
            table: BurstParamTable::paper_calibrated(),
            node_memory_kb: TOTAL_MEMORY_KB,
            network: None,
            faults: FaultConfig::disabled(),
            seed: 0,
            max_time: SimTime::from_secs(24 * 3600),
        }
    }

    /// Switch to constant-load throughput mode with the paper's one-hour
    /// horizon.
    pub fn with_throughput_mode(mut self) -> Self {
        self.mode = RunMode::Throughput { horizon: SimTime::from_secs(3600) };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let c = ClusterConfig::paper(Policy::LingerLonger, JobFamily::workload_1());
        assert_eq!(c.nodes, 64);
        assert_eq!(c.family.len(), 128);
        assert_eq!(c.mode, RunMode::Family);
        assert_eq!(c.node_memory_kb, 64 * 1024);
    }

    #[test]
    fn throughput_mode_sets_one_hour() {
        let c = ClusterConfig::paper(Policy::LingerLonger, JobFamily::workload_2())
            .with_throughput_mode();
        assert_eq!(c.mode, RunMode::Throughput { horizon: SimTime::from_secs(3600) });
    }
}
