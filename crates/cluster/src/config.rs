//! Cluster experiment configuration.

use crate::faults::FaultConfig;
use crate::network::NetworkModel;
use linger::{JobFamily, Policy, PolicyParams};
use linger_sim_core::{SimDuration, SimTime};
use linger_workload::{ArrivalConfig, BurstParamTable, CoarseTraceConfig, TOTAL_MEMORY_KB};
use serde::{Deserialize, Serialize};

/// What the simulation run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunMode {
    /// Submit the family at time zero and run until every job completes
    /// (the Fig 7 Avg-Job / Variation / Family-Time columns).
    Family,
    /// Hold the number of jobs in the system constant for a fixed horizon
    /// (the Fig 7 Throughput column: "we hold the number of jobs in the
    /// system … constant for a simulated one-hour execution").
    Throughput {
        /// The fixed horizon (paper: one hour).
        horizon: SimTime,
    },
    /// Open-arrivals serving mode: jobs arrive from the configured
    /// [`ServiceConfig`] process window by window, admission control
    /// bounds the queue, and the run ends at the horizon regardless of
    /// in-flight work (steady-state metrics come from batch means).
    Open {
        /// The serving horizon (sweeps use multi-day horizons).
        horizon: SimTime,
    },
}

/// What admission control does when arrivals meet a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Admit everything; the queue is unbounded. The measurement
    /// baseline that shows *why* the bounded policies exist — under
    /// sustained overload its queue grows without limit.
    Open,
    /// Shed on full: arrivals beyond the queue capacity are dropped on
    /// the floor and counted. Loss system semantics (M/·/c/K).
    Shed,
    /// Backpressure: arrivals beyond capacity are deferred upstream (a
    /// blocked-source deficit, O(1) state) and re-offered before new
    /// arrivals in later windows. Nothing is lost; the source waits.
    Block,
    /// Shed on full *and* drop queued jobs whose waiting time exceeds
    /// the configured deadline — the staleness-bounding variant.
    Deadline,
}

impl AdmissionPolicy {
    /// Stable label used by sweep tables and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::Open => "open",
            AdmissionPolicy::Shed => "shed",
            AdmissionPolicy::Block => "block",
            AdmissionPolicy::Deadline => "deadline",
        }
    }

    /// Every policy, in declaration order.
    pub const ALL: [AdmissionPolicy; 4] = [
        AdmissionPolicy::Open,
        AdmissionPolicy::Shed,
        AdmissionPolicy::Block,
        AdmissionPolicy::Deadline,
    ];
}

/// Open-arrivals service configuration: the arrival process plus the
/// overload-control contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Arrival process and per-job demand model.
    pub arrivals: ArrivalConfig,
    /// What to do when arrivals meet a full queue.
    pub admission: AdmissionPolicy,
    /// Admission-queue capacity, entries. The effective capacity is the
    /// minimum of this and the `LINGER_QUEUE_BUDGET` byte budget divided
    /// by the per-job row cost. Ignored by [`AdmissionPolicy::Open`].
    pub queue_capacity: usize,
    /// Queueing deadline, seconds ([`AdmissionPolicy::Deadline`] only):
    /// a job still queued after this long is dropped unserved.
    pub deadline_secs: f64,
}

impl ServiceConfig {
    /// The inert default carried by closed-mode configs: zero-rate
    /// arrivals, open admission. Serves nothing and changes nothing.
    pub fn disabled() -> Self {
        ServiceConfig {
            arrivals: ArrivalConfig::disabled(),
            admission: AdmissionPolicy::Open,
            queue_capacity: usize::MAX,
            // Finite sentinel: the vendored serde_json writes non-finite
            // floats as `null`, which would not round-trip.
            deadline_secs: f64::MAX,
        }
    }
}

/// Full configuration of a cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of workstations (paper: 64).
    pub nodes: usize,
    /// Scheduling policy and its parameters.
    pub params: PolicyParams,
    /// The foreign jobs to run.
    pub family: JobFamily,
    /// Family or constant-load throughput mode.
    pub mode: RunMode,
    /// Coarse-trace synthesis configuration (one trace per node, replayed
    /// from a random offset).
    pub trace: CoarseTraceConfig,
    /// Fine-grain burst parameter table.
    pub table: BurstParamTable,
    /// Physical memory per node, KB.
    pub node_memory_kb: u32,
    /// Shared migration network. `None` charges each migration the fixed
    /// per-flow cost from [`linger::MigrationCostModel`]; `Some` makes
    /// concurrent migrations contend for the backbone.
    pub network: Option<NetworkModel>,
    /// Fault injection (node crashes and migration failures). The
    /// default is fully disabled, which leaves every run bit-identical
    /// to a fault-free simulation.
    pub faults: FaultConfig,
    /// Open-arrivals service configuration. Inert (zero-rate, open
    /// admission) unless `mode` is [`RunMode::Open`].
    pub service: ServiceConfig,
    /// Master seed.
    pub seed: u64,
    /// Safety horizon for family mode (a run that exceeds it aborts).
    pub max_time: SimTime,
}

impl ClusterConfig {
    /// The paper's Sec 4.2 setup for the given policy and job family:
    /// 64 nodes, paper-calibrated workload models and migration costs.
    pub fn paper(policy: Policy, family: JobFamily) -> Self {
        ClusterConfig {
            nodes: 64,
            params: PolicyParams::paper(policy),
            family,
            mode: RunMode::Family,
            trace: CoarseTraceConfig {
                duration: SimDuration::from_secs(4 * 3600),
                ..Default::default()
            },
            table: BurstParamTable::paper_calibrated(),
            node_memory_kb: TOTAL_MEMORY_KB,
            network: None,
            faults: FaultConfig::disabled(),
            service: ServiceConfig::disabled(),
            seed: 0,
            max_time: SimTime::from_secs(24 * 3600),
        }
    }

    /// Switch to constant-load throughput mode with the paper's one-hour
    /// horizon.
    pub fn with_throughput_mode(mut self) -> Self {
        self.mode = RunMode::Throughput { horizon: SimTime::from_secs(3600) };
        self
    }

    /// Switch to open-arrivals serving mode for `horizon` under the
    /// given service configuration. The closed family is still submitted
    /// at time zero (pass an empty family for a pure open run).
    pub fn with_open_mode(mut self, service: ServiceConfig, horizon: SimTime) -> Self {
        self.mode = RunMode::Open { horizon };
        self.service = service;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let c = ClusterConfig::paper(Policy::LingerLonger, JobFamily::workload_1());
        assert_eq!(c.nodes, 64);
        assert_eq!(c.family.len(), 128);
        assert_eq!(c.mode, RunMode::Family);
        assert_eq!(c.node_memory_kb, 64 * 1024);
    }

    #[test]
    fn throughput_mode_sets_one_hour() {
        let c = ClusterConfig::paper(Policy::LingerLonger, JobFamily::workload_2())
            .with_throughput_mode();
        assert_eq!(c.mode, RunMode::Throughput { horizon: SimTime::from_secs(3600) });
    }

    #[test]
    fn open_mode_carries_service_config() {
        use linger_workload::{ArrivalConfig, ArrivalProcess};
        let service = ServiceConfig {
            arrivals: ArrivalConfig {
                process: ArrivalProcess::Poisson { rate_per_hour: 600.0 },
                mean_cpu_secs: 120.0,
                mem_kb: 8 * 1024,
            },
            admission: AdmissionPolicy::Shed,
            queue_capacity: 128,
            deadline_secs: 300.0,
        };
        let c = ClusterConfig::paper(Policy::LingerLonger, JobFamily::empty())
            .with_open_mode(service, SimTime::from_secs(48 * 3600));
        assert_eq!(c.mode, RunMode::Open { horizon: SimTime::from_secs(48 * 3600) });
        assert_eq!(c.service.admission, AdmissionPolicy::Shed);
        assert_eq!(c.service.queue_capacity, 128);
    }

    #[test]
    fn admission_policy_names_are_distinct() {
        let mut names: Vec<&str> = AdmissionPolicy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), AdmissionPolicy::ALL.len());
    }

    #[test]
    fn disabled_service_config_round_trips_through_json() {
        // The digest serializes every config; the sentinel values must
        // survive a JSON round trip (no non-finite floats).
        let s = ServiceConfig::disabled();
        let line = serde_json::to_string(&s).unwrap();
        let back: ServiceConfig = serde_json::from_str(&line).unwrap();
        assert_eq!(s, back);
    }
}
