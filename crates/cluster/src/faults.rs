//! Deterministic fault injection: node crash/reboot processes and
//! in-transit migration failures.
//!
//! The paper's simulations assume a perfectly reliable network of
//! workstations; on a real NOW, machines reboot and transfers get cut
//! short. This module injects both failure modes **deterministically**:
//! every fault is a pure function of `(fault config, master seed, node or
//! job identity)`, never of scheduling order or thread count, so a faulty
//! run is exactly as reproducible as a fault-free one and a sweep is
//! byte-identical at any `--jobs` setting.
//!
//! Two independent processes, each on its own RNG domain:
//!
//! * **Node crashes** ([`domains::NODE_FAULTS`], one stream per node):
//!   alternating Exp-distributed uptime gaps and reboot downtimes,
//!   pre-materialized into a window-aligned event schedule at
//!   construction. A crashed node leaves every scheduling set and kills
//!   whatever it hosted; it rejoins when its reboot completes.
//! * **Migration failures** ([`domains::MIGRATION_FAULTS`], one draw per
//!   transfer attempt, keyed by `(job id, lifetime transfer number)`):
//!   a completed transfer is declared lost with probability
//!   `migration_failure_prob`, triggering the retry-with-backoff path in
//!   [`linger::MigrationRetryPolicy`].
//!
//! With both knobs at zero the model generates no events, draws no random
//! numbers, and the simulation is bit-identical to one built before fault
//! injection existed.

use linger_sim_core::{domains, RngFactory};
use linger_stats::{Distribution, Exponential};
use linger_workload::SAMPLE_PERIOD_SECS;
use serde::{Deserialize, Serialize};

/// Fault-injection knobs. The default ([`FaultConfig::disabled`]) turns
/// both failure processes off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Mean crashes per node per hour of uptime (Poisson process;
    /// `0` disables crashes entirely).
    pub crash_rate_per_hour: f64,
    /// Mean downtime of a reboot, seconds (exponentially distributed,
    /// rounded up to whole windows).
    pub mean_reboot_secs: f64,
    /// Probability that any single migration transfer attempt is lost in
    /// transit (`0` disables migration failures).
    pub migration_failure_prob: f64,
}

impl FaultConfig {
    /// No faults: crash rate zero and migration failures impossible.
    pub const fn disabled() -> Self {
        FaultConfig {
            crash_rate_per_hour: 0.0,
            mean_reboot_secs: 120.0,
            migration_failure_prob: 0.0,
        }
    }

    /// Does either failure process do anything?
    pub fn enabled(&self) -> bool {
        self.crash_rate_per_hour > 0.0 || self.migration_failure_prob > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// What happens to a node at a fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// The node goes down, losing any hosted or in-flight job.
    Crash,
    /// The node's reboot completes; it rejoins the free pool.
    Reboot,
}

/// One scheduled node fault, aligned to a window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Window index at which the event fires.
    pub window: usize,
    /// The affected node.
    pub node: usize,
    /// Crash or reboot.
    pub kind: FaultEventKind,
}

/// Counters the simulator accumulates while faults are active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Node crash events applied.
    pub crashes: usize,
    /// Crashes that killed a hosted (or inbound) job.
    pub crash_evictions: usize,
    /// Migration transfer attempts lost in transit.
    pub migration_failures: usize,
    /// Retry transfers started after a failure.
    pub migration_retries: usize,
    /// Migrations abandoned after exhausting the retry budget.
    pub migrations_abandoned: usize,
}

/// The realized fault schedule for one simulation run.
///
/// Crash/reboot events are pre-materialized (sorted by `(window, node)`)
/// so the simulator consumes them with a cursor in O(1) per window;
/// migration-failure draws are made lazily but keyed purely by
/// `(job id, transfer number)`, independent of evaluation order.
#[derive(Debug, Clone)]
pub struct FaultModel {
    cfg: FaultConfig,
    rng: RngFactory,
    events: Vec<FaultEvent>,
}

impl FaultModel {
    /// Materialize the schedule for `nodes` nodes over `max_windows`
    /// windows from `seed`. A zero crash rate yields an empty schedule
    /// without touching any RNG stream.
    pub fn new(cfg: FaultConfig, seed: u64, nodes: usize, max_windows: usize) -> Self {
        let rng = RngFactory::new(seed);
        let mut events = Vec::new();
        if cfg.crash_rate_per_hour > 0.0 {
            let uptime = Exponential::with_mean(3600.0 / cfg.crash_rate_per_hour);
            let downtime = Exponential::with_mean(cfg.mean_reboot_secs.max(1e-9));
            let wsecs = SAMPLE_PERIOD_SECS as f64;
            for node in 0..nodes {
                let mut r = rng.stream_for(domains::NODE_FAULTS, node as u64);
                let mut w = 0usize;
                loop {
                    let gap = (uptime.sample(&mut r) / wsecs).ceil().max(1.0) as usize;
                    w = w.saturating_add(gap);
                    if w >= max_windows {
                        break;
                    }
                    events.push(FaultEvent { window: w, node, kind: FaultEventKind::Crash });
                    let down = (downtime.sample(&mut r) / wsecs).ceil().max(1.0) as usize;
                    w = w.saturating_add(down);
                    if w >= max_windows {
                        break; // node stays down past the horizon
                    }
                    events.push(FaultEvent { window: w, node, kind: FaultEventKind::Reboot });
                }
            }
            // Per node the events already alternate in increasing window
            // order; the merge across nodes fixes a global order (ties
            // broken by node id) so the simulator applies same-window
            // events deterministically.
            events.sort_unstable_by_key(|e| (e.window, e.node));
        }
        FaultModel { cfg, rng, events }
    }

    /// The configuration this schedule was drawn from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The crash/reboot schedule, sorted by `(window, node)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Does transfer number `transfer_seq` of job `job` fail in transit?
    ///
    /// Pure in `(config, seed, job, transfer_seq)`: the draw comes from a
    /// dedicated stream per `(job, transfer_seq)` pair, so it does not
    /// depend on when (or in what order) the simulator asks.
    pub fn migration_fails(&self, job: u32, transfer_seq: u32) -> bool {
        if self.cfg.migration_failure_prob <= 0.0 {
            return false;
        }
        let key = ((job as u64) << 32) | transfer_seq as u64;
        let mut r = self.rng.stream_for(domains::MIGRATION_FAULTS, key);
        use rand::Rng;
        r.random::<f64>() < self.cfg.migration_failure_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, reboot: f64, prob: f64) -> FaultConfig {
        FaultConfig {
            crash_rate_per_hour: rate,
            mean_reboot_secs: reboot,
            migration_failure_prob: prob,
        }
    }

    #[test]
    fn disabled_model_is_empty_and_never_fails() {
        let m = FaultModel::new(FaultConfig::disabled(), 1998, 64, 100_000);
        assert!(m.events().is_empty());
        assert!(!m.migration_fails(0, 1));
        assert!(!FaultConfig::disabled().enabled());
    }

    #[test]
    fn schedule_is_a_pure_function_of_config_and_seed() {
        let a = FaultModel::new(cfg(2.0, 300.0, 0.1), 42, 32, 50_000);
        let b = FaultModel::new(cfg(2.0, 300.0, 0.1), 42, 32, 50_000);
        assert_eq!(a.events(), b.events());
        let c = FaultModel::new(cfg(2.0, 300.0, 0.1), 43, 32, 50_000);
        assert_ne!(a.events(), c.events(), "different seed, different schedule");
    }

    #[test]
    fn events_alternate_crash_reboot_per_node() {
        let m = FaultModel::new(cfg(6.0, 120.0, 0.0), 7, 16, 100_000);
        assert!(!m.events().is_empty());
        for node in 0..16 {
            let mut expect = FaultEventKind::Crash;
            let mut last_w = 0;
            for e in m.events().iter().filter(|e| e.node == node) {
                assert_eq!(e.kind, expect, "node {node}");
                assert!(e.window > last_w, "strictly increasing windows");
                last_w = e.window;
                expect = match expect {
                    FaultEventKind::Crash => FaultEventKind::Reboot,
                    FaultEventKind::Reboot => FaultEventKind::Crash,
                };
            }
        }
    }

    #[test]
    fn schedule_is_sorted_and_bounded() {
        let m = FaultModel::new(cfg(12.0, 600.0, 0.0), 9, 8, 20_000);
        let mut prev = (0usize, 0usize);
        for e in m.events() {
            assert!(e.window < 20_000);
            assert!((e.window, e.node) >= prev, "sorted by (window, node)");
            prev = (e.window, e.node);
        }
    }

    #[test]
    fn higher_crash_rate_means_more_events() {
        let lo = FaultModel::new(cfg(0.5, 120.0, 0.0), 5, 32, 100_000);
        let hi = FaultModel::new(cfg(8.0, 120.0, 0.0), 5, 32, 100_000);
        assert!(hi.events().len() > lo.events().len());
    }

    #[test]
    fn migration_failure_draw_is_deterministic_per_key() {
        let m = FaultModel::new(cfg(0.0, 120.0, 0.5), 11, 4, 1000);
        for job in 0..50u32 {
            for seq in 1..4u32 {
                assert_eq!(m.migration_fails(job, seq), m.migration_fails(job, seq));
            }
        }
        // Extremes are certain.
        let never = FaultModel::new(cfg(0.0, 120.0, 0.0), 11, 4, 1000);
        let always = FaultModel::new(cfg(0.0, 120.0, 1.0), 11, 4, 1000);
        for job in 0..20u32 {
            assert!(!never.migration_fails(job, 1));
            assert!(always.migration_fails(job, 1));
        }
        // Roughly half fail at p = 0.5.
        let fails = (0..1000u32).filter(|&j| m.migration_fails(j, 1)).count();
        assert!((300..700).contains(&fails), "p=0.5 hit {fails}/1000");
    }
}
