//! # linger-cluster
//!
//! The cluster simulator of *Linger Longer* (SC'98), Sec 4.2: sequential
//! foreign jobs scheduled across a cluster of user workstations under the
//! four policies (LL, LF, IE, PM), with trace-driven local workloads,
//! two-pool memory gating, and the fixed + size/bandwidth migration cost
//! model.
//!
//! * [`config`] — experiment configuration (the paper's 64-node setup);
//! * [`faults`] — deterministic fault injection (node crash/reboot
//!   schedules and in-transit migration failures);
//! * [`state`] — job lifecycle states and the Fig 8 breakdown;
//! * [`network`] — the shared migration network (eviction-storm
//!   contention);
//! * [`sim`] — the window-stepped simulation;
//! * [`metrics`] — the Fig 7 metrics and the policy-comparison driver.

//! ## Example
//!
//! ```
//! use linger::{JobFamily, Policy};
//! use linger_cluster::{ClusterConfig, ClusterSim};
//! use linger_sim_core::SimDuration;
//!
//! let mut cfg = ClusterConfig::paper(
//!     Policy::LingerLonger,
//!     JobFamily::uniform(4, SimDuration::from_secs(60), 8 * 1024),
//! );
//! cfg.nodes = 4;
//! cfg.trace.duration = SimDuration::from_secs(1800);
//! let mut sim = ClusterSim::new(cfg);
//! assert!(sim.run());
//! assert_eq!(sim.completed(), 4);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod faults;
pub mod metrics;
pub mod network;
pub mod service;
pub mod sim;
pub mod state;

pub use config::{AdmissionPolicy, ClusterConfig, RunMode, ServiceConfig};
pub use service::{ServiceStats, DEFAULT_QUEUE_BUDGET_BYTES};
pub use faults::{FaultConfig, FaultEvent, FaultEventKind, FaultModel, FaultStats};
pub use metrics::{
    evaluate_policy, evaluate_policy_replicated, policy_comparison, BreakdownSecs, Estimate,
    PolicyMetrics, ReplicatedMetrics,
};
pub use network::NetworkModel;
pub use sim::{ClusterSim, WINDOW};
pub use state::{JobCold, JobRecord, JobSlabs, JobState, NodeId, NodeSlabs, StateBreakdown};
