//! Shared-link network model for process migration.
//!
//! The paper transfers process images "over a 10 Mbps Ethernet at an
//! effective rate of 3 Mbps (to limit the load placed on the network by
//! process migration)" — a per-flow throttle protecting a shared
//! backbone. The default migration model charges that fixed effective
//! rate per migration; this module adds the shared medium itself, so an
//! eviction storm (many simultaneous IE migrations) contends for the
//! backbone and slows every transfer — the behaviour the throttle exists
//! to bound, and the subject of the network ablation.

use serde::{Deserialize, Serialize};

/// A shared migration network: concurrent flows split the backbone
/// fairly, each additionally capped at a per-flow rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Total backbone capacity, bits per second (paper: 10 Mbps Ethernet).
    pub backbone_bps: f64,
    /// Per-flow throttle, bits per second (paper: 3 Mbps effective).
    pub per_flow_bps: f64,
}

impl NetworkModel {
    /// The paper's network: 10 Mbps Ethernet with a 3 Mbps per-flow
    /// throttle.
    pub fn paper_default() -> Self {
        NetworkModel { backbone_bps: 10.0e6, per_flow_bps: 3.0e6 }
    }

    /// An effectively infinite network (isolates policy effects).
    pub fn unconstrained() -> Self {
        NetworkModel { backbone_bps: f64::INFINITY, per_flow_bps: f64::INFINITY }
    }

    /// The rate each of `flows` concurrent transfers receives.
    pub fn per_flow_rate(&self, flows: usize) -> f64 {
        if flows == 0 {
            return 0.0;
        }
        let fair = self.backbone_bps / flows as f64;
        fair.min(self.per_flow_bps)
    }

    /// Bits a single flow moves during `secs` when `flows` transfers are
    /// active.
    pub fn bits_transferred(&self, flows: usize, secs: f64) -> f64 {
        self.per_flow_rate(flows) * secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_the_throttle() {
        let n = NetworkModel::paper_default();
        assert_eq!(n.per_flow_rate(1), 3.0e6);
        // Two or three flows still fit under the backbone.
        assert_eq!(n.per_flow_rate(3), 3.0e6);
    }

    #[test]
    fn many_flows_split_the_backbone() {
        let n = NetworkModel::paper_default();
        assert!((n.per_flow_rate(5) - 2.0e6).abs() < 1e-6);
        assert!((n.per_flow_rate(10) - 1.0e6).abs() < 1e-6);
    }

    #[test]
    fn zero_flows_move_nothing() {
        let n = NetworkModel::paper_default();
        assert_eq!(n.per_flow_rate(0), 0.0);
        assert_eq!(n.bits_transferred(0, 10.0), 0.0);
    }

    #[test]
    fn unconstrained_is_instant_in_the_limit() {
        let n = NetworkModel::unconstrained();
        assert!(n.per_flow_rate(100).is_infinite());
    }

    #[test]
    fn transferred_bits_scale_with_time() {
        let n = NetworkModel::paper_default();
        assert!((n.bits_transferred(1, 2.0) - 6.0e6).abs() < 1e-6);
        assert!((n.bits_transferred(10, 2.0) - 2.0e6).abs() < 1e-6);
    }
}
