//! Cluster performance metrics and the Fig 7 / Fig 8 experiment drivers.
//!
//! Fig 7's four metrics, verbatim from the paper:
//! * **Average completion time** — "the average time to completion of a
//!   foreign job. This includes waiting time before initially being
//!   executed, paused time, and migration time."
//! * **Variation** — "the standard deviation of job execution time (time
//!   from first starting execution to completion)", reported relative to
//!   the mean.
//! * **Family Time** — "the completion time of the last job in the family".
//! * **Throughput** — "the average amount of processor time used by
//!   foreign jobs per second when the number of jobs in the system was
//!   held constant."

use crate::config::ClusterConfig;
use crate::sim::ClusterSim;
use crate::state::StateBreakdown;
use linger::{JobFamily, Policy};
use linger_sim_core::{par_map_indexed, replication_seed, SimTime};
use linger_stats::Online;
use linger_workload::TraceLibrary;

use serde::{Deserialize, Serialize};

/// The Fig 7 row plus the Fig 8 bars for one policy on one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyMetrics {
    /// The policy evaluated.
    pub policy: Policy,
    /// Mean job completion time, seconds.
    pub avg_completion_secs: f64,
    /// Std-dev of execution time relative to its mean (Fig 7 "Variation").
    pub variation: f64,
    /// Completion time of the last job, seconds.
    pub family_time_secs: f64,
    /// Foreign CPU-seconds delivered per second of constant-load run.
    pub throughput: f64,
    /// Cluster-wide foreground delay ratio (family run).
    pub foreground_delay: f64,
    /// Mean per-job state breakdown, seconds per state (Fig 8).
    pub avg_breakdown: BreakdownSecs,
    /// Mean migrations per job.
    pub avg_migrations: f64,
    /// Whether the family run finished before the safety horizon.
    pub finished: bool,
}

/// [`StateBreakdown`] in seconds, averaged per job (the Fig 8 bars).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BreakdownSecs {
    /// Mean queued time.
    pub queued: f64,
    /// Mean running-on-idle-node time.
    pub running: f64,
    /// Mean lingering time.
    pub lingering: f64,
    /// Mean paused time.
    pub paused: f64,
    /// Mean migrating time.
    pub migrating: f64,
}

impl BreakdownSecs {
    fn from_total(total: &StateBreakdown, jobs: f64) -> Self {
        BreakdownSecs {
            queued: total.queued.as_secs_f64() / jobs,
            running: total.running.as_secs_f64() / jobs,
            lingering: total.lingering.as_secs_f64() / jobs,
            paused: total.paused.as_secs_f64() / jobs,
            migrating: total.migrating.as_secs_f64() / jobs,
        }
    }

    /// Sum of all bars.
    pub fn total(&self) -> f64 {
        self.queued + self.running + self.lingering + self.paused + self.migrating
    }
}

/// Evaluate one policy on one workload: a family run (completion metrics)
/// plus a constant-load run (throughput).
///
/// Both runs replay the same owner-workload realization, fetched once
/// from the shared [`TraceLibrary`] — across a [`policy_comparison`] the
/// four policies reuse one synthesis (1 miss + 3 hits).
pub fn evaluate_policy(policy: Policy, family: JobFamily, nodes: usize, seed: u64) -> PolicyMetrics {
    let mut cfg = ClusterConfig::paper(policy, family.clone());
    cfg.nodes = nodes;
    cfg.seed = seed;
    let real = TraceLibrary::global().realize(&cfg.trace, cfg.seed, cfg.nodes);

    let mut fam_sim = ClusterSim::with_realization(cfg.clone(), &real);
    let finished = fam_sim.run();

    let mut completion = Online::new();
    let mut execution = Online::new();
    let mut family_end = SimTime::ZERO;
    let mut total_breakdown = StateBreakdown::default();
    let mut migrations = 0u64;
    let mut done = 0usize;
    for j in fam_sim.jobs() {
        if let Some(c) = j.completion_time() {
            completion.add(c.as_secs_f64());
            done += 1;
        }
        if let Some(e) = j.execution_time() {
            execution.add(e.as_secs_f64());
        }
        if let Some(at) = j.completed_at {
            family_end = family_end.max(at);
        }
        total_breakdown.merge(&j.breakdown);
        migrations += j.migrations as u64;
    }

    // The throughput run varies only the termination mode — same trace
    // config, seed, and node count, hence the same realization.
    let tp_cfg = cfg.with_throughput_mode();
    let mut tp_sim = ClusterSim::with_realization(tp_cfg, &real);
    tp_sim.run();
    let horizon = tp_sim.now().as_secs_f64();
    let throughput = if horizon > 0.0 {
        tp_sim.foreign_cpu_delivered().as_secs_f64() / horizon
    } else {
        0.0
    };

    PolicyMetrics {
        policy,
        avg_completion_secs: completion.mean(),
        variation: execution.cv(),
        family_time_secs: family_end.as_secs_f64(),
        throughput,
        foreground_delay: fam_sim.foreground_delay_ratio(),
        avg_breakdown: BreakdownSecs::from_total(&total_breakdown, done.max(1) as f64),
        avg_migrations: migrations as f64 / done.max(1) as f64,
        finished,
    }
}

/// The full Fig 7 table (and Fig 8 data) for one workload: all four
/// policies on identical workload realizations (common random numbers —
/// every policy sees the same traces and offsets because they derive from
/// the same master seed).
///
/// The four policy runs are independent simulations and fan out across
/// worker threads; results come back in `Policy::ALL` order regardless
/// of thread count.
pub fn policy_comparison(family: JobFamily, nodes: usize, seed: u64) -> Vec<PolicyMetrics> {
    par_map_indexed(Policy::ALL.len(), None, |i| {
        evaluate_policy(Policy::ALL[i], family.clone(), nodes, seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linger_sim_core::SimDuration;

    /// A scaled-down workload-1: jobs ≈ 2× nodes, heavy contention.
    fn heavy() -> JobFamily {
        JobFamily::uniform(24, SimDuration::from_secs(300), 8 * 1024)
    }

    /// A scaled-down workload-2: jobs ≈ nodes/4, light load.
    fn light() -> JobFamily {
        JobFamily::uniform(3, SimDuration::from_secs(600), 8 * 1024)
    }

    const NODES: usize = 12;
    const SEED: u64 = 42;

    #[test]
    fn heavy_load_lingering_beats_eviction() {
        // The paper's central cluster result (Fig 7, workload-1): LL/LF
        // improve average completion time and throughput substantially
        // over IE/PM.
        let m = policy_comparison(heavy(), NODES, SEED);
        let (ll, lf, ie, pm) = (&m[0], &m[1], &m[2], &m[3]);
        assert!(ll.finished && lf.finished && ie.finished && pm.finished);
        assert!(
            ll.avg_completion_secs < 0.85 * ie.avg_completion_secs,
            "LL {} vs IE {}",
            ll.avg_completion_secs,
            ie.avg_completion_secs
        );
        assert!(
            lf.avg_completion_secs < 0.85 * pm.avg_completion_secs,
            "LF {} vs PM {}",
            lf.avg_completion_secs,
            pm.avg_completion_secs
        );
        assert!(
            ll.throughput > 1.25 * ie.throughput,
            "LL throughput {} vs IE {}",
            ll.throughput,
            ie.throughput
        );
        assert!(ll.family_time_secs < ie.family_time_secs);
    }

    #[test]
    fn light_load_policies_are_similar() {
        // Fig 7, workload-2: "the average job completion time of all four
        // policies is almost identical" because idle capacity suffices.
        let m = policy_comparison(light(), NODES, SEED);
        let base = m[0].avg_completion_secs;
        for pm in &m {
            assert!(
                (pm.avg_completion_secs - base).abs() / base < 0.25,
                "{}: {} vs {}",
                pm.policy,
                pm.avg_completion_secs,
                base
            );
        }
    }

    #[test]
    fn foreground_delay_stays_small() {
        // "For both workloads the delay … for local (foreground)
        // processes was less than 0.5%." This scaled-down test keeps
        // every node saturated with a lingering job (2 jobs per node,
        // denser than the paper's mix), so allow up to the single-node
        // ~1% bound; the full 64-node Fig 7 run checks the 0.5% headline.
        for m in policy_comparison(heavy(), NODES, SEED) {
            assert!(
                m.foreground_delay < 0.01,
                "{}: delay {}",
                m.policy,
                m.foreground_delay
            );
        }
    }

    #[test]
    fn queue_time_dominates_eviction_policies_under_load() {
        // Fig 8(a): "The major difference between the linger and
        // non-linger policies is due to the reduced queue time."
        let m = policy_comparison(heavy(), NODES, SEED);
        let (ll, ie) = (&m[0], &m[2]);
        assert!(
            ie.avg_breakdown.queued > 1.5 * ll.avg_breakdown.queued,
            "IE queued {} vs LL queued {}",
            ie.avg_breakdown.queued,
            ll.avg_breakdown.queued
        );
        // Lingering policies spend some time lingering; IE none.
        assert!(ll.avg_breakdown.lingering > 0.0);
        assert_eq!(ie.avg_breakdown.lingering, 0.0);
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let b = BreakdownSecs {
            queued: 1.5,
            running: 2.25,
            lingering: 0.75,
            paused: 4.0,
            migrating: 0.5,
        };
        assert_eq!(b.total(), 1.5 + 2.25 + 0.75 + 4.0 + 0.5);
        assert_eq!(BreakdownSecs::default().total(), 0.0);
    }

    #[test]
    fn breakdown_from_total_divides_each_state_by_job_count() {
        let total = StateBreakdown {
            queued: SimDuration::from_secs(40),
            running: SimDuration::from_secs(100),
            lingering: SimDuration::from_secs(20),
            paused: SimDuration::from_secs(8),
            migrating: SimDuration::from_secs(4),
        };
        let b = BreakdownSecs::from_total(&total, 4.0);
        assert_eq!(b.queued, 10.0);
        assert_eq!(b.running, 25.0);
        assert_eq!(b.lingering, 5.0);
        assert_eq!(b.paused, 2.0);
        assert_eq!(b.migrating, 1.0);
        // Per-job mean of the sum equals the sum of per-job means.
        assert!((b.total() - 172.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn per_job_breakdown_reconciles_with_completion_time() {
        // For every completed job the per-state breakdown must account
        // for the arrival-to-completion interval to within one
        // scheduling window (state time is charged at 2-second window
        // boundaries, so the final partial window is not attributed).
        let mut cfg = ClusterConfig::paper(Policy::LingerLonger, heavy());
        cfg.nodes = NODES;
        cfg.seed = SEED;
        let mut sim = ClusterSim::new(cfg);
        assert!(sim.run());
        let mut checked = 0;
        for j in sim.jobs() {
            let Some(c) = j.completion_time() else { continue };
            let b = &j.breakdown;
            let total = b.queued.as_secs_f64()
                + b.running.as_secs_f64()
                + b.lingering.as_secs_f64()
                + b.paused.as_secs_f64()
                + b.migrating.as_secs_f64();
            assert!(
                (total - c.as_secs_f64()).abs() <= 2.0 + 1e-6,
                "job {:?}: breakdown {} vs completion {}",
                j.spec.id,
                total,
                c.as_secs_f64()
            );
            checked += 1;
        }
        assert!(checked > 0, "no completed jobs to reconcile");
    }

    #[test]
    fn breakdown_totals_approximate_completion() {
        for m in policy_comparison(light(), NODES, SEED) {
            let total = m.avg_breakdown.total();
            assert!(
                (total - m.avg_completion_secs).abs() <= 10.0,
                "{}: breakdown {} vs completion {}",
                m.policy,
                total,
                m.avg_completion_secs
            );
        }
    }
}

/// Mean ± 95% confidence half-width over replicated runs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Estimate {
    /// Mean over replications.
    pub mean: f64,
    /// Normal-approximation 95% CI half-width.
    pub ci95: f64,
}

impl Estimate {
    fn from(o: &Online) -> Self {
        let ci95 = o
            .ci_half_width(0.95)
            .expect("0.95 is a supported confidence level");
        Estimate { mean: o.mean(), ci95 }
    }
}

/// [`PolicyMetrics`] aggregated over independent replications.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedMetrics {
    /// The policy evaluated.
    pub policy: Policy,
    /// Replications run.
    pub replications: u32,
    /// Average job completion time (s).
    pub avg_completion_secs: Estimate,
    /// Steady-state throughput (cpu-s/s).
    pub throughput: Estimate,
    /// Family completion time (s).
    pub family_time_secs: Estimate,
    /// Cluster-wide foreground delay ratio.
    pub foreground_delay: Estimate,
}

/// Replicate [`evaluate_policy`] over `reps` master seeds and report
/// means with confidence intervals — the missing error bars of Fig 7.
/// Replication `r` uses seed [`replication_seed`]`(base_seed, r)` (a
/// wrapping walk — see the seed-space contract in `sim-core::rng`),
/// identical across policies (common random numbers), so policy
/// *differences* are tighter than the marginal intervals suggest.
///
/// Replications are independent and fan out across worker threads; the
/// seed of replication `r` depends only on `r`, so the aggregate is
/// byte-identical at any thread count (accumulation happens afterwards,
/// in replication order).
pub fn evaluate_policy_replicated(
    policy: Policy,
    family: JobFamily,
    nodes: usize,
    base_seed: u64,
    reps: u32,
) -> ReplicatedMetrics {
    assert!(reps >= 2, "need at least two replications for an interval");
    let runs = par_map_indexed(reps as usize, None, |r| {
        evaluate_policy(policy, family.clone(), nodes, replication_seed(base_seed, r as u64))
    });
    let mut avg = Online::new();
    let mut tput = Online::new();
    let mut fam = Online::new();
    let mut delay = Online::new();
    for m in &runs {
        avg.add(m.avg_completion_secs);
        tput.add(m.throughput);
        fam.add(m.family_time_secs);
        delay.add(m.foreground_delay);
    }
    ReplicatedMetrics {
        policy,
        replications: reps,
        avg_completion_secs: Estimate::from(&avg),
        throughput: Estimate::from(&tput),
        family_time_secs: Estimate::from(&fam),
        foreground_delay: Estimate::from(&delay),
    }
}

#[cfg(test)]
mod replication_tests {
    use super::*;
    use linger_sim_core::SimDuration;

    #[test]
    fn replication_produces_finite_intervals() {
        let fam = JobFamily::uniform(10, SimDuration::from_secs(120), 8 * 1024);
        let r = evaluate_policy_replicated(Policy::LingerLonger, fam, 8, 100, 4);
        assert_eq!(r.replications, 4);
        assert!(r.avg_completion_secs.mean > 120.0);
        assert!(r.avg_completion_secs.ci95.is_finite());
        assert!(r.throughput.ci95.is_finite());
    }

    #[test]
    fn policy_gap_exceeds_both_intervals() {
        // The LL/IE gap should be statistically solid even with few
        // replications (common random numbers).
        let fam = JobFamily::uniform(16, SimDuration::from_secs(180), 8 * 1024);
        let ll = evaluate_policy_replicated(Policy::LingerLonger, fam.clone(), 8, 50, 4);
        let ie = evaluate_policy_replicated(Policy::ImmediateEviction, fam, 8, 50, 4);
        let gap = ie.avg_completion_secs.mean - ll.avg_completion_secs.mean;
        assert!(
            gap > ll.avg_completion_secs.ci95 + ie.avg_completion_secs.ci95,
            "gap {gap} vs CIs {} + {}",
            ll.avg_completion_secs.ci95,
            ie.avg_completion_secs.ci95
        );
    }

    #[test]
    fn replication_seeds_wrap_near_the_top_of_the_seed_space() {
        // Before the explicit wrapping walk this overflowed (panicking in
        // debug builds) for base seeds near u64::MAX.
        let fam = JobFamily::uniform(2, SimDuration::from_secs(60), 8 * 1024);
        let r = evaluate_policy_replicated(Policy::LingerLonger, fam, 4, u64::MAX - 1, 3);
        assert_eq!(r.replications, 3);
        assert!(r.avg_completion_secs.mean.is_finite());
    }

    #[test]
    #[should_panic]
    fn single_replication_is_rejected() {
        let fam = JobFamily::uniform(2, SimDuration::from_secs(60), 8 * 1024);
        let _ = evaluate_policy_replicated(Policy::LingerLonger, fam, 4, 1, 1);
    }
}
