//! Open-arrivals service accounting: the admission queue's byte budget
//! and the exact counters the overload-control contract promises.
//!
//! The contract mirrors the telemetry ring: a bounded structure (the
//! admission queue) with an explicit byte budget (`LINGER_QUEUE_BUDGET`),
//! and *exact* counters for everything the bound caused — shed arrivals,
//! deferred arrivals, deadline drops, saturated windows. Under any
//! offered load the identity
//! `generated == admitted + shed + deficit` holds window by window, so a
//! sweep can assert loss accounting to the last job.

use crate::state::JobSlabs;
use linger_stats::BatchMeans;
use serde::{Deserialize, Serialize};

/// Default admission-queue byte budget (64 MiB of job rows).
pub const DEFAULT_QUEUE_BUDGET_BYTES: usize = 64 << 20;

/// Windows per throughput batch for the steady-state batch-means
/// estimator (128 windows = 256 simulated seconds per batch).
pub const THROUGHPUT_BATCH_WINDOWS: usize = 128;

/// Completions per latency batch for the batch-means estimator.
pub const LATENCY_BATCH_JOBS: usize = 64;

/// The admission-queue byte budget from the environment
/// (`LINGER_QUEUE_BUDGET`, bytes), or the default.
pub fn queue_budget_from_env() -> usize {
    std::env::var("LINGER_QUEUE_BUDGET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_QUEUE_BUDGET_BYTES)
}

/// Effective admission-queue capacity in entries: the configured entry
/// capacity clamped by the byte budget divided by the per-job row cost.
pub fn effective_queue_capacity(configured: usize, budget_bytes: usize) -> usize {
    configured.min((budget_bytes / JobSlabs::job_row_bytes()).max(1))
}

/// Exact service-mode counters plus the steady-state estimators.
///
/// All counters are window-ordered deterministic tallies — byte-identical
/// across worker counts and shard plans, like every other simulator
/// output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Arrivals the process offered over the run.
    pub generated: u64,
    /// Arrivals admitted into the queue (includes drained deficit).
    pub admitted: u64,
    /// Arrivals dropped at a full queue (shed / deadline policies).
    pub shed: u64,
    /// Arrival deferral events charged to backpressure (each arrival
    /// counts once when it is first deferred).
    pub deferred: u64,
    /// Arrivals currently blocked upstream (backpressure deficit).
    pub deficit: u64,
    /// Largest deficit ever reached.
    pub peak_deficit: u64,
    /// Queued jobs dropped for exceeding the deadline.
    pub deadline_dropped: u64,
    /// Windows in which admission hit the capacity limit.
    pub saturated_windows: u64,
    /// Largest admission-queue depth observed at a window boundary.
    pub peak_queue_depth: usize,
    /// Largest live job-slab row count observed at a window boundary
    /// (the flat-memory witness: bounded capacity ⇒ bounded rows).
    pub peak_live_rows: usize,
    /// Effective queue capacity in entries (`usize::MAX` = unbounded).
    pub queue_capacity: usize,
    /// The byte budget the capacity was clamped under.
    pub queue_budget_bytes: usize,
    /// Per-window completed-job counts, batch-means aggregated.
    pub throughput: BatchMeans,
    /// Completion latency (seconds), batch-means aggregated.
    pub latency: BatchMeans,
}

impl ServiceStats {
    /// Fresh counters for a run under the given effective capacity.
    pub fn new(queue_capacity: usize, queue_budget_bytes: usize) -> Self {
        ServiceStats {
            generated: 0,
            admitted: 0,
            shed: 0,
            deferred: 0,
            deficit: 0,
            peak_deficit: 0,
            deadline_dropped: 0,
            saturated_windows: 0,
            peak_queue_depth: 0,
            peak_live_rows: 0,
            queue_capacity,
            queue_budget_bytes,
            throughput: BatchMeans::new(THROUGHPUT_BATCH_WINDOWS),
            latency: BatchMeans::new(LATENCY_BATCH_JOBS),
        }
    }

    /// The loss-accounting identity every window must preserve.
    pub fn accounting_holds(&self) -> bool {
        self.generated == self.admitted + self.shed + self.deficit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_clamps_to_budget() {
        let row = JobSlabs::job_row_bytes();
        // Budget for exactly 10 rows.
        assert_eq!(effective_queue_capacity(1000, 10 * row), 10);
        // Configured capacity below the budget wins.
        assert_eq!(effective_queue_capacity(4, 10 * row), 4);
        // A degenerate budget still admits one entry.
        assert_eq!(effective_queue_capacity(1000, 0), 1);
    }

    #[test]
    fn fresh_stats_account() {
        let s = ServiceStats::new(64, DEFAULT_QUEUE_BUDGET_BYTES);
        assert!(s.accounting_holds());
        assert_eq!(s.queue_capacity, 64);
        assert_eq!(s.throughput.batches(), 0);
    }
}
