//! Runtime state of jobs and nodes in the cluster simulation.
//!
//! Both populations are held as struct-of-arrays slabs ([`NodeSlabs`],
//! [`JobSlabs`]): the fields the window sweep reads for *every* busy
//! node — occupancy, lifecycle state, remaining demand — live in dense
//! parallel arrays keyed by index, while rarely-touched bookkeeping
//! (migration deadlines, completion stamps, fault counters) sits in a
//! separate cold slab. The hot sweep therefore streams a few contiguous
//! arrays instead of striding through ~100-byte records, which is what
//! keeps the per-node-window cost flat as clusters grow past the
//! last-level cache. [`JobRecord`] remains the materialized per-job view
//! handed to metrics and tests.

use linger::{JobId, JobSpec};
use linger_sim_core::{SimDuration, SimTime};
use linger_workload::{CoarseTrace, TwoPoolMemory};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Index of a node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Where a job is in its lifecycle. Mirrors the Fig 8 state breakdown
/// ("queued, running, lingering (running on a non-idle node), paused,
/// migrating").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the central queue with no node.
    Queued,
    /// Executing on an idle (recruited) node.
    Running,
    /// Executing at starvation priority on a non-idle node.
    Lingering,
    /// Suspended in place (Pause-and-Migrate grace period).
    Paused,
    /// In transit between nodes (or re-materializing after eviction).
    Migrating,
    /// Finished.
    Done,
}

/// Cumulative time a job has spent in each state (the Fig 8 bars).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StateBreakdown {
    /// Time in the central queue.
    pub queued: SimDuration,
    /// Time running on idle nodes.
    pub running: SimDuration,
    /// Time lingering on non-idle nodes.
    pub lingering: SimDuration,
    /// Time suspended by Pause-and-Migrate.
    pub paused: SimDuration,
    /// Time in transit.
    pub migrating: SimDuration,
}

impl StateBreakdown {
    /// Record `dt` in the bucket for `state`.
    pub fn add(&mut self, state: JobState, dt: SimDuration) {
        match state {
            JobState::Queued => self.queued += dt,
            JobState::Running => self.running += dt,
            JobState::Lingering => self.lingering += dt,
            JobState::Paused => self.paused += dt,
            JobState::Migrating => self.migrating += dt,
            JobState::Done => {}
        }
    }

    /// Sum over all states.
    pub fn total(&self) -> SimDuration {
        self.queued + self.running + self.lingering + self.paused + self.migrating
    }

    /// Merge another breakdown (for averaging across jobs).
    pub fn merge(&mut self, other: &StateBreakdown) {
        self.queued += other.queued;
        self.running += other.running;
        self.lingering += other.lingering;
        self.paused += other.paused;
        self.migrating += other.migrating;
    }
}

/// A job being tracked by the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The static spec.
    pub spec: JobSpec,
    /// CPU time still owed.
    pub remaining: SimDuration,
    /// Current lifecycle state.
    pub state: JobState,
    /// Node currently hosting (or receiving) the job.
    pub node: Option<NodeId>,
    /// When the current non-idle episode began (while lingering/paused).
    pub episode_start: Option<SimTime>,
    /// Migration completes at this time (while migrating; with a shared
    /// network this covers only the fixed processing part).
    pub migration_until: Option<SimTime>,
    /// Bits still to transfer (shared-network mode only).
    pub migration_bits_left: Option<f64>,
    /// PM grace period expires at this time (while paused).
    pub pause_deadline: Option<SimTime>,
    /// First time the job started executing (for the Variation metric).
    pub first_start: Option<SimTime>,
    /// Completion time.
    pub completed_at: Option<SimTime>,
    /// Whether the job has ever run (re-placements pay migration cost).
    pub has_run: bool,
    /// Per-state time accounting.
    pub breakdown: StateBreakdown,
    /// Number of migrations (including evictions) the job suffered.
    pub migrations: u32,
    /// Transfer attempts made for the migration currently in flight
    /// (1 on the first attempt; reset when the job arrives or requeues).
    pub migration_attempts: u32,
    /// Lifetime count of transfer starts — the RNG key for in-transit
    /// failure draws, unique per attempt across the job's whole life.
    pub transfer_seq: u32,
    /// Times a node crash killed this job (hosted or inbound).
    pub crashes: u32,
}

impl JobRecord {
    /// A fresh record for `spec`, queued.
    pub fn new(spec: JobSpec) -> Self {
        JobRecord {
            spec,
            remaining: spec.cpu_demand,
            state: JobState::Queued,
            node: None,
            episode_start: None,
            migration_until: None,
            migration_bits_left: None,
            pause_deadline: None,
            first_start: None,
            completed_at: None,
            has_run: false,
            breakdown: StateBreakdown::default(),
            migrations: 0,
            migration_attempts: 0,
            transfer_seq: 0,
            crashes: 0,
        }
    }

    /// Completion time from submission (the Fig 7 "Avg. Job" metric
    /// includes "waiting time before initially being executed, paused
    /// time, and migration time").
    pub fn completion_time(&self) -> Option<SimDuration> {
        self.completed_at.map(|t| t.saturating_since(self.spec.arrival))
    }

    /// Execution time from first start to completion (the Fig 7
    /// "Variation" metric is its std-dev).
    pub fn execution_time(&self) -> Option<SimDuration> {
        match (self.first_start, self.completed_at) {
            (Some(s), Some(e)) => Some(e.saturating_since(s)),
            _ => None,
        }
    }
}

/// Sentinel for "no job" in the packed [`NodeSlabs::hosted`] /
/// [`JobSlabs`] node slabs.
pub const NO_JOB: u32 = u32::MAX;

/// Sentinel for "no node" in the packed [`JobSlabs`] node slab.
pub const NO_NODE: u32 = u32::MAX;

/// Per-node state as parallel slabs keyed by node id.
///
/// `hosted` (the occupancy array every placement and decision sweep
/// reads) and `memory` (refreshed from the trace row each window) are
/// the hot slabs; the trace handles and phase offsets are cold — they
/// are only consulted on the slow path when no shared window table
/// exists.
pub struct NodeSlabs {
    /// Job index hosted on (or reserved for) each node; [`NO_JOB`] when
    /// free.
    pub(crate) hosted: Vec<u32>,
    /// Two-pool memory state per node.
    pub(crate) memory: Vec<TwoPoolMemory>,
    /// Replayed coarse trace per node (cold).
    pub(crate) traces: Vec<Arc<CoarseTrace>>,
    /// Start offset into each trace (random per node, Sec 4.2; cold).
    pub(crate) offsets: Vec<usize>,
}

impl NodeSlabs {
    /// Assemble the slabs for `traces`/`offsets`, with each node's memory
    /// pool initialised from its trace sample at the start offset.
    pub fn new(traces: Vec<Arc<CoarseTrace>>, offsets: Vec<usize>, node_memory_kb: u32) -> Self {
        let memory = traces
            .iter()
            .zip(&offsets)
            .map(|(trace, &offset)| {
                TwoPoolMemory::new(node_memory_kb, trace.sample(offset).mem_used_kb)
            })
            .collect();
        let hosted = vec![NO_JOB; traces.len()];
        NodeSlabs { hosted, memory, traces, offsets }
    }

    /// Assemble the slabs without resident traces — the streamed window
    /// pipeline supplies all per-window node state through its chunk
    /// cursor instead. `initial_mem_kb` is the chunk's window-0 memory
    /// row, which by construction equals `trace.sample(offset).mem_used_kb`
    /// (so both constructors initialise the pools identically).
    ///
    /// The trace slow-path accessors ([`NodeSlabs::cpu`] etc.) must not
    /// be called on a traceless slab; the simulator only uses them when
    /// it has no window source, and a streamed realization always is one.
    pub fn traceless(initial_mem_kb: &[u32], node_memory_kb: u32) -> Self {
        let memory = initial_mem_kb
            .iter()
            .map(|&kb| TwoPoolMemory::new(node_memory_kb, kb))
            .collect();
        let hosted = vec![NO_JOB; initial_mem_kb.len()];
        NodeSlabs { hosted, memory, traces: Vec::new(), offsets: Vec::new() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.hosted.len()
    }

    /// True for an empty cluster.
    pub fn is_empty(&self) -> bool {
        self.hosted.is_empty()
    }

    /// The job hosted on (or reserved for) node `ni`, if any.
    #[inline]
    pub fn hosted(&self, ni: usize) -> Option<usize> {
        let ji = self.hosted[ni];
        (ji != NO_JOB).then_some(ji as usize)
    }

    /// Point node `ni` at job `ji` (or clear with `None`).
    #[inline]
    pub(crate) fn set_hosted(&mut self, ni: usize, ji: Option<usize>) {
        self.hosted[ni] = ji.map_or(NO_JOB, |j| j as u32);
    }

    /// The memory pool of node `ni`.
    pub fn memory(&self, ni: usize) -> &TwoPoolMemory {
        &self.memory[ni]
    }

    /// Local CPU utilization of node `ni` during window `w` (trace slow
    /// path).
    pub fn cpu(&self, ni: usize, w: usize) -> f64 {
        self.traces[ni].sample(self.offsets[ni] + w).cpu
    }

    /// Recruited (idle) during window `w`? (trace slow path)
    pub fn is_idle(&self, ni: usize, w: usize) -> bool {
        self.traces[ni].is_idle(self.offsets[ni] + w)
    }

    /// Local memory demand of node `ni` during window `w`, KB (trace slow
    /// path).
    pub fn mem_used(&self, ni: usize, w: usize) -> u32 {
        self.traces[ni].sample(self.offsets[ni] + w).mem_used_kb
    }
}

/// Cold per-job bookkeeping: fields touched on state transitions (a few
/// per job per run), not by the per-window sweeps.
#[derive(Debug, Clone)]
pub struct JobCold {
    /// Total CPU demand from the spec.
    pub cpu_demand: SimDuration,
    /// When the current non-idle episode began (while lingering/paused).
    pub episode_start: Option<SimTime>,
    /// Migration completes at this time (while migrating; with a shared
    /// network this covers only the fixed processing part).
    pub migration_until: Option<SimTime>,
    /// Bits still to transfer (shared-network mode only).
    pub migration_bits_left: Option<f64>,
    /// PM grace period expires at this time (while paused).
    pub pause_deadline: Option<SimTime>,
    /// First time the job started executing (for the Variation metric).
    pub first_start: Option<SimTime>,
    /// Completion time.
    pub completed_at: Option<SimTime>,
    /// Whether the job has ever run (re-placements pay migration cost).
    pub has_run: bool,
    /// Number of migrations (including evictions) the job suffered.
    pub migrations: u32,
    /// Transfer attempts made for the migration currently in flight
    /// (1 on the first attempt; reset when the job arrives or requeues).
    pub migration_attempts: u32,
    /// Lifetime count of transfer starts — the RNG key for in-transit
    /// failure draws, unique per attempt across the job's whole life.
    pub transfer_seq: u32,
    /// Times a node crash killed this job (hosted or inbound).
    pub crashes: u32,
}

impl JobCold {
    /// The cold record of a freshly queued job owing `cpu_demand`.
    fn fresh(cpu_demand: SimDuration) -> Self {
        JobCold {
            cpu_demand,
            episode_start: None,
            migration_until: None,
            migration_bits_left: None,
            pause_deadline: None,
            first_start: None,
            completed_at: None,
            has_run: false,
            migrations: 0,
            migration_attempts: 0,
            transfer_seq: 0,
            crashes: 0,
        }
    }
}


/// Per-job state as parallel slabs keyed by job index.
///
/// The hot slabs are exactly what the window sweeps consult: lifecycle
/// `state` and `remaining` for progress, `node` for occupancy checks,
/// `mem_kb`/`arrival`/`id` for placement and telemetry, the per-window
/// `breakdown` accounting, and the `queued_from` entry window that
/// queue-time accrual flushes at dequeue. Everything else lives in the
/// [`JobCold`] slab.
///
/// ## Slot recycling
///
/// Slab *indices* are transient handles, not identities: a finished
/// job's full record can be moved to the append-only `archived` store
/// ([`JobSlabs::retire`]) and its slot parked on a free list, which the
/// next [`JobSlabs::push`] reuses. Throughput mode retires every
/// completed job before respawning its successor, so the live lanes
/// stay `O(active jobs)` no matter how many jobs flow through the
/// system — at a million nodes, ~2M rows (~420 MB) flat instead of
/// ~13M (~2.7 GB) growing with the horizon.
/// [`JobId`]s are minted by the simulator's own counter in the same
/// order as ever; only the slot a job occupies is reused, and
/// [`JobSlabs::all_records`] reconstructs the full population in id
/// order, so recycling is invisible in every output
/// (`LINGER_NO_SLOT_REUSE=1` pins the historical append-only layout,
/// and the slot-reuse proptests hold the two byte-identical).
pub struct JobSlabs {
    /// Lifecycle state.
    pub(crate) state: Vec<JobState>,
    /// Hosting (or receiving) node id; [`NO_NODE`] when off-node.
    pub(crate) node: Vec<u32>,
    /// CPU time still owed.
    pub(crate) remaining: Vec<SimDuration>,
    /// Working-set size from the spec, KB.
    pub(crate) mem_kb: Vec<u32>,
    /// Submission time from the spec.
    pub(crate) arrival: Vec<SimTime>,
    /// Job id from the spec.
    pub(crate) id: Vec<JobId>,
    /// Per-state time accounting (hot: one bucket add per busy node and
    /// per queued job, every window).
    pub(crate) breakdown: Vec<StateBreakdown>,
    /// Window index at which each job last entered the central queue (0
    /// for the initial population). Queue time is accrued in one exact
    /// multiply at dequeue instead of one add per queued job per window.
    /// Lives here — set by the same push/recycle transaction as every
    /// other lane — so no call site can grow the slabs without it.
    pub(crate) queued_from: Vec<u32>,
    /// Everything the sweeps do not read.
    pub(crate) cold: Vec<JobCold>,
    /// Finished records moved out of the slabs at retirement, in
    /// retirement order (cold: written once per completion, read only
    /// when materializing the population).
    archived: Vec<JobRecord>,
    /// Retired slot indices awaiting reuse.
    free: Vec<u32>,
    /// Whether [`Self::push`] may reuse retired slots
    /// (`LINGER_NO_SLOT_REUSE=1` disables at construction).
    recycle: bool,
}

/// The `LINGER_NO_SLOT_REUSE=1` escape hatch: pin the historical
/// append-only slab layout (finished rows stay live, nothing is
/// archived, every respawn appends). Outputs are byte-identical either
/// way; the hatch exists so CI and the proptests can prove exactly
/// that.
fn slot_reuse_disabled() -> bool {
    match std::env::var("LINGER_NO_SLOT_REUSE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

impl JobSlabs {
    /// Slabs seeded with one queued record per spec.
    pub fn from_specs(specs: &[JobSpec]) -> Self {
        let mut slabs = JobSlabs {
            state: Vec::with_capacity(specs.len()),
            node: Vec::with_capacity(specs.len()),
            remaining: Vec::with_capacity(specs.len()),
            mem_kb: Vec::with_capacity(specs.len()),
            arrival: Vec::with_capacity(specs.len()),
            id: Vec::with_capacity(specs.len()),
            breakdown: Vec::with_capacity(specs.len()),
            queued_from: Vec::with_capacity(specs.len()),
            cold: Vec::with_capacity(specs.len()),
            archived: Vec::new(),
            free: Vec::new(),
            recycle: !slot_reuse_disabled(),
        };
        for spec in specs {
            slabs.push(*spec, 0);
        }
        slabs
    }

    /// Add a fresh queued job for `spec`, entering the queue at window
    /// `queued_from`; returns its slot index. Reuses a retired slot when
    /// one is free (and recycling is on), otherwise appends. Every lane
    /// — including `queued_from` — is initialized by this one
    /// transaction, so the slabs can never skew.
    pub fn push(&mut self, spec: JobSpec, queued_from: u32) -> usize {
        if self.recycle {
            if let Some(slot) = self.free.pop() {
                let ji = slot as usize;
                debug_assert_eq!(self.state[ji], JobState::Done, "free slot must be retired");
                self.state[ji] = JobState::Queued;
                self.node[ji] = NO_NODE;
                self.remaining[ji] = spec.cpu_demand;
                self.mem_kb[ji] = spec.mem_kb;
                self.arrival[ji] = spec.arrival;
                self.id[ji] = spec.id;
                self.breakdown[ji] = StateBreakdown::default();
                self.queued_from[ji] = queued_from;
                self.cold[ji] = JobCold::fresh(spec.cpu_demand);
                return ji;
            }
        }
        self.state.push(JobState::Queued);
        self.node.push(NO_NODE);
        self.remaining.push(spec.cpu_demand);
        self.mem_kb.push(spec.mem_kb);
        self.arrival.push(spec.arrival);
        self.id.push(spec.id);
        self.breakdown.push(StateBreakdown::default());
        self.queued_from.push(queued_from);
        self.cold.push(JobCold::fresh(spec.cpu_demand));
        self.state.len() - 1
    }

    /// Move the finished job in slot `ji` to the cold archive and park
    /// the slot on the free list for the next [`Self::push`]. The
    /// materialized record is final — the job must be `Done` and off
    /// every node/queue/worklist before retirement.
    pub fn retire(&mut self, ji: usize) {
        debug_assert_eq!(self.state[ji], JobState::Done, "only Done jobs retire");
        debug_assert_eq!(self.node[ji], NO_NODE, "retired job still on a node");
        self.archived.push(self.record(ji));
        self.free.push(ji as u32);
    }

    /// Retire the finished job in slot `ji` and push its replacement in
    /// one transaction — throughput-mode respawn. With recycling on,
    /// the replacement lands in the slot just vacated; with the
    /// `LINGER_NO_SLOT_REUSE=1` hatch nothing is retired and the
    /// replacement appends, reproducing the historical layout byte for
    /// byte (the Done row simply stays live, exactly as it always did).
    pub fn respawn(&mut self, ji: usize, spec: JobSpec, queued_from: u32) -> usize {
        if self.recycle {
            self.retire(ji);
        }
        self.push(spec, queued_from)
    }

    /// Number of live slab rows (active jobs plus retired-but-unreused
    /// slots) — the hot-lane footprint the window sweeps stride over.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when no job has been submitted.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty() && self.archived.is_empty()
    }

    /// Jobs ever tracked: live slab rows plus archived records. Slots
    /// parked on the free list hold stale copies of archived records,
    /// so they are excluded.
    pub fn total_jobs(&self) -> usize {
        self.state.len() - self.free.len() + self.archived.len()
    }

    /// Slots parked on the free list (retired, awaiting reuse). Their
    /// rows are stale copies of already-archived records; population
    /// walks must skip them.
    pub fn parked_slots(&self) -> &[u32] {
        &self.free
    }

    /// Number of records moved to the cold archive.
    pub fn archived_len(&self) -> usize {
        self.archived.len()
    }

    /// The archived (finished) records, in retirement order.
    pub fn archived(&self) -> &[JobRecord] {
        &self.archived
    }

    /// Whether retired slots are reused (false under
    /// `LINGER_NO_SLOT_REUSE=1` or [`Self::set_slot_reuse`]).
    pub fn slot_reuse(&self) -> bool {
        self.recycle
    }

    /// Resident cost of one live job row across every per-slot lane
    /// (hot lanes plus the cold slab) — the unit the admission queue's
    /// `LINGER_QUEUE_BUDGET` byte budget divides by.
    pub fn job_row_bytes() -> usize {
        use std::mem::size_of;
        size_of::<JobState>()
            + size_of::<u32>()
            + size_of::<SimDuration>()
            + size_of::<u32>()
            + size_of::<SimTime>()
            + size_of::<JobId>()
            + size_of::<StateBreakdown>()
            + size_of::<u32>()
            + size_of::<JobCold>()
    }

    /// Resident bytes of the live job lanes — every per-slot vector the
    /// window sweeps can touch (hot lanes plus the cold slab), excluding
    /// the archive. This is the footprint slot recycling pins at
    /// `O(active jobs)`.
    pub fn live_lane_bytes(&self) -> usize {
        self.state.len() * Self::job_row_bytes()
    }

    /// Override the recycling switch (tests and benches A/B the two
    /// layouts in one process; the environment only sets the default).
    pub fn set_slot_reuse(&mut self, on: bool) {
        self.recycle = on;
    }

    /// Reconstruct the static spec of job `ji`.
    #[inline]
    pub fn spec(&self, ji: usize) -> JobSpec {
        JobSpec {
            id: self.id[ji],
            cpu_demand: self.cold[ji].cpu_demand,
            mem_kb: self.mem_kb[ji],
            arrival: self.arrival[ji],
        }
    }

    /// The node hosting (or receiving) job `ji`, if any.
    #[inline]
    pub fn node(&self, ji: usize) -> Option<NodeId> {
        let ni = self.node[ji];
        (ni != NO_NODE).then_some(NodeId(ni as usize))
    }

    /// Materialize the full record of job `ji`.
    pub fn record(&self, ji: usize) -> JobRecord {
        let cold = &self.cold[ji];
        JobRecord {
            spec: self.spec(ji),
            remaining: self.remaining[ji],
            state: self.state[ji],
            node: self.node(ji),
            episode_start: cold.episode_start,
            migration_until: cold.migration_until,
            migration_bits_left: cold.migration_bits_left,
            pause_deadline: cold.pause_deadline,
            first_start: cold.first_start,
            completed_at: cold.completed_at,
            has_run: cold.has_run,
            breakdown: self.breakdown[ji],
            migrations: cold.migrations,
            migration_attempts: cold.migration_attempts,
            transfer_seq: cold.transfer_seq,
            crashes: cold.crashes,
        }
    }

    /// Materialize every *live* job in slot order. With recycling, slot
    /// order is not id order — population-level consumers want
    /// [`Self::all_records`].
    pub fn records(&self) -> Vec<JobRecord> {
        (0..self.len()).map(|ji| self.record(ji)).collect()
    }

    /// Materialize the full job population — archived and live — in
    /// ascending id order: exactly the vector the append-only layout
    /// produced (ids are minted in push order, so its slot order *was*
    /// id order). Ids are unique, so the order is total.
    pub fn all_records(&self) -> Vec<JobRecord> {
        let mut records = Vec::with_capacity(self.total_jobs());
        records.extend(self.archived.iter().cloned());
        records.extend((0..self.len()).map(|ji| self.record(ji)));
        records.sort_unstable_by_key(|r| r.spec.id.0);
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linger::JobId;

    fn spec() -> JobSpec {
        JobSpec {
            id: JobId(0),
            cpu_demand: SimDuration::from_secs(600),
            mem_kb: 8192,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = StateBreakdown::default();
        b.add(JobState::Queued, SimDuration::from_secs(10));
        b.add(JobState::Running, SimDuration::from_secs(20));
        b.add(JobState::Lingering, SimDuration::from_secs(5));
        b.add(JobState::Done, SimDuration::from_secs(99)); // ignored
        assert_eq!(b.total(), SimDuration::from_secs(35));
        let mut c = StateBreakdown::default();
        c.add(JobState::Migrating, SimDuration::from_secs(1));
        b.merge(&c);
        assert_eq!(b.total(), SimDuration::from_secs(36));
    }

    #[test]
    fn record_times() {
        let mut r = JobRecord::new(spec());
        assert_eq!(r.completion_time(), None);
        assert_eq!(r.execution_time(), None);
        r.first_start = Some(SimTime::from_secs(100));
        r.completed_at = Some(SimTime::from_secs(700));
        assert_eq!(r.completion_time(), Some(SimDuration::from_secs(700)));
        assert_eq!(r.execution_time(), Some(SimDuration::from_secs(600)));
    }

    #[test]
    fn fresh_record_owes_full_demand() {
        let r = JobRecord::new(spec());
        assert_eq!(r.remaining, SimDuration::from_secs(600));
        assert_eq!(r.state, JobState::Queued);
        assert!(!r.has_run);
    }

    #[test]
    fn slabs_materialize_the_record_a_fresh_job_would_have() {
        let slabs = JobSlabs::from_specs(&[spec()]);
        assert_eq!(slabs.len(), 1);
        let got = slabs.record(0);
        let fresh = JobRecord::new(spec());
        assert_eq!(got.spec, fresh.spec);
        assert_eq!(got.remaining, fresh.remaining);
        assert_eq!(got.state, fresh.state);
        assert_eq!(got.node, None);
        assert_eq!(got.breakdown, fresh.breakdown);
        assert!(!got.has_run);
    }

    fn spec_with_id(id: u32) -> JobSpec {
        JobSpec { id: JobId(id), ..spec() }
    }

    #[test]
    fn retire_archives_the_final_record_and_recycles_the_slot() {
        let mut slabs = JobSlabs::from_specs(&[spec_with_id(0), spec_with_id(1)]);
        slabs.set_slot_reuse(true);
        // Finish job 0 with some accumulated state, then retire it.
        slabs.state[0] = JobState::Done;
        slabs.node[0] = NO_NODE;
        slabs.remaining[0] = SimDuration::ZERO;
        slabs.breakdown[0].add(JobState::Running, SimDuration::from_secs(600));
        slabs.cold[0].completed_at = Some(SimTime::from_secs(600));
        slabs.cold[0].has_run = true;
        let final_record = slabs.record(0);
        let ji = slabs.respawn(0, spec_with_id(2), 7);
        assert_eq!(ji, 0, "respawn must reuse the vacated slot");
        assert_eq!(slabs.len(), 2, "live rows stay at the active-job count");
        assert_eq!(slabs.total_jobs(), 3);
        assert_eq!(slabs.archived_len(), 1);
        // The archive holds the finished job verbatim...
        let archived = &slabs.archived()[0];
        assert_eq!(archived.spec, final_record.spec);
        assert_eq!(archived.state, JobState::Done);
        assert_eq!(archived.completed_at, final_record.completed_at);
        assert_eq!(archived.breakdown, final_record.breakdown);
        // ...and the slot is a fresh queued job under the new id.
        let reborn = slabs.record(0);
        assert_eq!(reborn.spec.id, JobId(2));
        assert_eq!(reborn.state, JobState::Queued);
        assert_eq!(reborn.remaining, spec().cpu_demand);
        assert!(!reborn.has_run);
        assert_eq!(slabs.queued_from[0], 7);
    }

    #[test]
    fn respawn_without_reuse_appends_like_the_historical_layout() {
        let mut slabs = JobSlabs::from_specs(&[spec_with_id(0)]);
        slabs.set_slot_reuse(false);
        slabs.state[0] = JobState::Done;
        slabs.node[0] = NO_NODE;
        let ji = slabs.respawn(0, spec_with_id(1), 3);
        assert_eq!(ji, 1, "append-only respawn grows the slabs");
        assert_eq!(slabs.len(), 2);
        // The historical layout keeps the Done row live and archives
        // nothing — `total_jobs` must not double-count the retiree.
        assert_eq!(slabs.total_jobs(), 2);
        assert_eq!(slabs.archived_len(), 0);
        assert_eq!(slabs.record(0).state, JobState::Done);
        assert_eq!(slabs.record(1).spec.id, JobId(1));
        assert_eq!(slabs.queued_from[1], 3);
    }

    #[test]
    fn all_records_reconstructs_the_population_in_id_order() {
        let mut slabs = JobSlabs::from_specs(&[spec_with_id(0), spec_with_id(1)]);
        slabs.set_slot_reuse(true);
        // Retire id 1 first, then id 0 — archive order is retirement
        // order (1, 0), live slots hold ids 3 (slot 1) and 2 (slot 0).
        slabs.state[1] = JobState::Done;
        slabs.node[1] = NO_NODE;
        slabs.respawn(1, spec_with_id(2), 0);
        // Slot 1 was freed and immediately reused, so id 2 landed there;
        // now retire id 0 and respawn id 3 into slot 0.
        assert_eq!(slabs.record(1).spec.id, JobId(2));
        slabs.state[0] = JobState::Done;
        slabs.node[0] = NO_NODE;
        slabs.respawn(0, spec_with_id(3), 0);
        assert_eq!(slabs.record(0).spec.id, JobId(3));
        let ids: Vec<u32> = slabs.all_records().iter().map(|r| r.spec.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let states: Vec<JobState> = slabs.all_records().iter().map(|r| r.state).collect();
        assert_eq!(
            states,
            vec![JobState::Done, JobState::Done, JobState::Queued, JobState::Queued]
        );
    }
}
