//! Runtime state of jobs and nodes in the cluster simulation.

use linger::JobSpec;
use linger_sim_core::{SimDuration, SimTime};
use linger_workload::{CoarseTrace, TwoPoolMemory};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Index of a node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Where a job is in its lifecycle. Mirrors the Fig 8 state breakdown
/// ("queued, running, lingering (running on a non-idle node), paused,
/// migrating").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the central queue with no node.
    Queued,
    /// Executing on an idle (recruited) node.
    Running,
    /// Executing at starvation priority on a non-idle node.
    Lingering,
    /// Suspended in place (Pause-and-Migrate grace period).
    Paused,
    /// In transit between nodes (or re-materializing after eviction).
    Migrating,
    /// Finished.
    Done,
}

/// Cumulative time a job has spent in each state (the Fig 8 bars).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StateBreakdown {
    /// Time in the central queue.
    pub queued: SimDuration,
    /// Time running on idle nodes.
    pub running: SimDuration,
    /// Time lingering on non-idle nodes.
    pub lingering: SimDuration,
    /// Time suspended by Pause-and-Migrate.
    pub paused: SimDuration,
    /// Time in transit.
    pub migrating: SimDuration,
}

impl StateBreakdown {
    /// Record `dt` in the bucket for `state`.
    pub fn add(&mut self, state: JobState, dt: SimDuration) {
        match state {
            JobState::Queued => self.queued += dt,
            JobState::Running => self.running += dt,
            JobState::Lingering => self.lingering += dt,
            JobState::Paused => self.paused += dt,
            JobState::Migrating => self.migrating += dt,
            JobState::Done => {}
        }
    }

    /// Sum over all states.
    pub fn total(&self) -> SimDuration {
        self.queued + self.running + self.lingering + self.paused + self.migrating
    }

    /// Merge another breakdown (for averaging across jobs).
    pub fn merge(&mut self, other: &StateBreakdown) {
        self.queued += other.queued;
        self.running += other.running;
        self.lingering += other.lingering;
        self.paused += other.paused;
        self.migrating += other.migrating;
    }
}

/// A job being tracked by the scheduler.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The static spec.
    pub spec: JobSpec,
    /// CPU time still owed.
    pub remaining: SimDuration,
    /// Current lifecycle state.
    pub state: JobState,
    /// Node currently hosting (or receiving) the job.
    pub node: Option<NodeId>,
    /// When the current non-idle episode began (while lingering/paused).
    pub episode_start: Option<SimTime>,
    /// Migration completes at this time (while migrating; with a shared
    /// network this covers only the fixed processing part).
    pub migration_until: Option<SimTime>,
    /// Bits still to transfer (shared-network mode only).
    pub migration_bits_left: Option<f64>,
    /// PM grace period expires at this time (while paused).
    pub pause_deadline: Option<SimTime>,
    /// First time the job started executing (for the Variation metric).
    pub first_start: Option<SimTime>,
    /// Completion time.
    pub completed_at: Option<SimTime>,
    /// Whether the job has ever run (re-placements pay migration cost).
    pub has_run: bool,
    /// Per-state time accounting.
    pub breakdown: StateBreakdown,
    /// Number of migrations (including evictions) the job suffered.
    pub migrations: u32,
    /// Transfer attempts made for the migration currently in flight
    /// (1 on the first attempt; reset when the job arrives or requeues).
    pub migration_attempts: u32,
    /// Lifetime count of transfer starts — the RNG key for in-transit
    /// failure draws, unique per attempt across the job's whole life.
    pub transfer_seq: u32,
    /// Times a node crash killed this job (hosted or inbound).
    pub crashes: u32,
}

impl JobRecord {
    /// A fresh record for `spec`, queued.
    pub fn new(spec: JobSpec) -> Self {
        JobRecord {
            spec,
            remaining: spec.cpu_demand,
            state: JobState::Queued,
            node: None,
            episode_start: None,
            migration_until: None,
            migration_bits_left: None,
            pause_deadline: None,
            first_start: None,
            completed_at: None,
            has_run: false,
            breakdown: StateBreakdown::default(),
            migrations: 0,
            migration_attempts: 0,
            transfer_seq: 0,
            crashes: 0,
        }
    }

    /// Completion time from submission (the Fig 7 "Avg. Job" metric
    /// includes "waiting time before initially being executed, paused
    /// time, and migration time").
    pub fn completion_time(&self) -> Option<SimDuration> {
        self.completed_at.map(|t| t.saturating_since(self.spec.arrival))
    }

    /// Execution time from first start to completion (the Fig 7
    /// "Variation" metric is its std-dev).
    pub fn execution_time(&self) -> Option<SimDuration> {
        match (self.first_start, self.completed_at) {
            (Some(s), Some(e)) => Some(e.saturating_since(s)),
            _ => None,
        }
    }
}

/// A workstation in the cluster.
pub struct NodeState {
    /// Replayed coarse trace.
    pub trace: Arc<CoarseTrace>,
    /// Start offset into the trace (random per node, Sec 4.2).
    pub offset: usize,
    /// Two-pool memory state.
    pub memory: TwoPoolMemory,
    /// The job currently on (or reserved for) this node.
    pub hosted: Option<usize>, // index into the sim's job table
}

impl NodeState {
    /// Trace sample index for window `w`.
    pub fn sample_index(&self, w: usize) -> usize {
        self.offset + w
    }

    /// Local CPU utilization during window `w`.
    pub fn cpu(&self, w: usize) -> f64 {
        self.trace.sample(self.sample_index(w)).cpu
    }

    /// Recruited (idle) during window `w`?
    pub fn is_idle(&self, w: usize) -> bool {
        self.trace.is_idle(self.sample_index(w))
    }

    /// Local memory demand during window `w` (KB).
    pub fn mem_used(&self, w: usize) -> u32 {
        self.trace.sample(self.sample_index(w)).mem_used_kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linger::JobId;

    fn spec() -> JobSpec {
        JobSpec {
            id: JobId(0),
            cpu_demand: SimDuration::from_secs(600),
            mem_kb: 8192,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = StateBreakdown::default();
        b.add(JobState::Queued, SimDuration::from_secs(10));
        b.add(JobState::Running, SimDuration::from_secs(20));
        b.add(JobState::Lingering, SimDuration::from_secs(5));
        b.add(JobState::Done, SimDuration::from_secs(99)); // ignored
        assert_eq!(b.total(), SimDuration::from_secs(35));
        let mut c = StateBreakdown::default();
        c.add(JobState::Migrating, SimDuration::from_secs(1));
        b.merge(&c);
        assert_eq!(b.total(), SimDuration::from_secs(36));
    }

    #[test]
    fn record_times() {
        let mut r = JobRecord::new(spec());
        assert_eq!(r.completion_time(), None);
        assert_eq!(r.execution_time(), None);
        r.first_start = Some(SimTime::from_secs(100));
        r.completed_at = Some(SimTime::from_secs(700));
        assert_eq!(r.completion_time(), Some(SimDuration::from_secs(700)));
        assert_eq!(r.execution_time(), Some(SimDuration::from_secs(600)));
    }

    #[test]
    fn fresh_record_owes_full_demand() {
        let r = JobRecord::new(spec());
        assert_eq!(r.remaining, SimDuration::from_secs(600));
        assert_eq!(r.state, JobState::Queued);
        assert!(!r.has_run);
    }
}
