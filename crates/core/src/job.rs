//! Foreign (guest) jobs and job families.
//!
//! The paper's primary beneficiaries are "large compute-bound sequential
//! jobs … submitted as a unit" — parameter sweeps whose results are only
//! useful once the whole *family* completes, which is why Fig 7 reports
//! family completion time alongside per-job metrics.

use linger_sim_core::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a foreign job within an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A compute-bound sequential foreign job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Identifier, unique within the family.
    pub id: JobId,
    /// Total CPU time the job needs.
    pub cpu_demand: SimDuration,
    /// Resident-set size of the process image (drives migration cost and
    /// the memory admission check).
    pub mem_kb: u32,
    /// Submission time.
    pub arrival: SimTime,
}

/// A family of jobs submitted as a unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobFamily {
    jobs: Vec<JobSpec>,
}

impl JobFamily {
    /// An empty family: no closed-batch jobs. The starting population
    /// for pure open-arrivals (serving-mode) runs.
    pub fn empty() -> Self {
        JobFamily { jobs: Vec::new() }
    }

    /// A family of `count` identical jobs of `cpu_demand` each, `mem_kb`
    /// resident, all arriving at time zero.
    pub fn uniform(count: u32, cpu_demand: SimDuration, mem_kb: u32) -> Self {
        JobFamily {
            jobs: (0..count)
                .map(|i| JobSpec {
                    id: JobId(i),
                    cpu_demand,
                    mem_kb,
                    arrival: SimTime::ZERO,
                })
                .collect(),
        }
    }

    /// A family whose jobs arrive `interval` apart (job `i` arrives at
    /// `i·interval`) — for open-arrival experiments beyond the paper's
    /// submit-at-once batches.
    pub fn staggered(
        count: u32,
        cpu_demand: SimDuration,
        mem_kb: u32,
        interval: SimDuration,
    ) -> Self {
        JobFamily {
            jobs: (0..count)
                .map(|i| JobSpec {
                    id: JobId(i),
                    cpu_demand,
                    mem_kb,
                    arrival: SimTime::ZERO + interval.mul_f64(i as f64),
                })
                .collect(),
        }
    }

    /// Paper workload-1: "128 foreign jobs each requiring 600 processor
    /// seconds … on average each node had two foreign jobs to execute"
    /// (64-node cluster). All jobs are 8 MB.
    pub fn workload_1() -> Self {
        Self::uniform(128, SimDuration::from_secs(600), 8 * 1024)
    }

    /// Paper workload-2: "16 jobs each requiring 1,800 CPU seconds each
    /// … only ¼ of the nodes are required" (lightly loaded cluster).
    pub fn workload_2() -> Self {
        Self::uniform(16, SimDuration::from_secs(1800), 8 * 1024)
    }

    /// The jobs in submission order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the family is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total CPU demand across the family.
    pub fn total_demand(&self) -> SimDuration {
        self.jobs.iter().map(|j| j.cpu_demand).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_1_matches_paper() {
        let w = JobFamily::workload_1();
        assert_eq!(w.len(), 128);
        assert!(w.jobs().iter().all(|j| j.cpu_demand == SimDuration::from_secs(600)));
        assert!(w.jobs().iter().all(|j| j.mem_kb == 8192));
        assert_eq!(w.total_demand(), SimDuration::from_secs(128 * 600));
    }

    #[test]
    fn workload_2_matches_paper() {
        let w = JobFamily::workload_2();
        assert_eq!(w.len(), 16);
        assert!(w.jobs().iter().all(|j| j.cpu_demand == SimDuration::from_secs(1800)));
        assert_eq!(w.total_demand(), SimDuration::from_secs(16 * 1800));
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let w = JobFamily::workload_1();
        for (i, j) in w.jobs().iter().enumerate() {
            assert_eq!(j.id, JobId(i as u32));
        }
    }

    #[test]
    fn staggered_arrivals_are_spaced() {
        let w = JobFamily::staggered(4, SimDuration::from_secs(60), 1024, SimDuration::from_secs(30));
        let arrivals: Vec<u64> = w.jobs().iter().map(|j| j.arrival.as_nanos() / 1_000_000_000).collect();
        assert_eq!(arrivals, vec![0, 30, 60, 90]);
    }

    #[test]
    fn uniform_empty_family() {
        let w = JobFamily::uniform(0, SimDuration::from_secs(1), 1024);
        assert!(w.is_empty());
        assert_eq!(w.total_demand(), SimDuration::ZERO);
    }
}
