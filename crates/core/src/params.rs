//! Shared scheduling parameters.

use crate::migration::{MigrationCostModel, MigrationRetryPolicy};
use crate::policy::Policy;
use linger_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

/// The effective context-switch cost the paper adopts from Mogul & Borg
/// (Sec 4.1): register save/restore plus cache-reload effects.
pub const DEFAULT_CONTEXT_SWITCH: SimDuration = SimDuration::from_micros(100);

/// Grace period of the Pause-and-Migrate policy. The paper calls it "a
/// fixed time" that "should not be long because the foreign job makes no
/// progress in the suspend state", and reports IE and PM with virtually
/// identical average completion times on both workloads — which pins the
/// suspend time well below the one-minute recruitment threshold (a
/// non-idle episode lasts at least the threshold by construction, so a
/// long pause would always expire and PM would trail IE by the full
/// pause). Ten seconds reproduces the published near-equality.
pub const DEFAULT_PAUSE_TIMEOUT: SimDuration = SimDuration::from_secs(10);

/// Everything a node-level scheduler needs to know about how to treat a
/// lingering foreign job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyParams {
    /// Which of the four policies to run.
    pub policy: Policy,
    /// Effective context-switch cost charged on each preemption edge.
    pub context_switch: SimDuration,
    /// PM grace period (ignored by the other policies).
    pub pause_timeout: SimDuration,
    /// Migration cost model.
    pub migration: MigrationCostModel,
    /// Retry/backoff schedule for migrations that fail in transit.
    /// Only exercised when fault injection enables migration failures;
    /// with failures off, no retry is ever taken.
    pub retry: MigrationRetryPolicy,
}

impl PolicyParams {
    /// Paper defaults for the given policy.
    pub fn paper(policy: Policy) -> Self {
        PolicyParams {
            policy,
            context_switch: DEFAULT_CONTEXT_SWITCH,
            pause_timeout: DEFAULT_PAUSE_TIMEOUT,
            migration: MigrationCostModel::paper_default(),
            retry: MigrationRetryPolicy::paper_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = PolicyParams::paper(Policy::LingerLonger);
        assert_eq!(p.context_switch, SimDuration::from_micros(100));
        assert_eq!(p.pause_timeout, SimDuration::from_secs(10));
        assert_eq!(p.policy, Policy::LingerLonger);
    }
}
