//! The four migration policies compared in the paper.
//!
//! * **Immediate-Eviction (IE)** — the classical social contract (Condor,
//!   NOW): the foreign job is migrated the instant the machine turns
//!   non-idle.
//! * **Pause-and-Migrate (PM)** — the foreign job is suspended for a fixed
//!   grace period first; if the machine becomes idle again within it, the
//!   job resumes in place, otherwise it migrates.
//! * **Linger-Longer (LL)** — the paper's contribution: the job keeps
//!   running at starvation-priority through the non-idle episode, and only
//!   migrates once the episode has lasted longer than the cost model's
//!   linger duration ([`crate::cost`]).
//! * **Linger-Forever (LF)** — lingers indefinitely; maximizes cluster
//!   throughput at the cost of the response time of jobs stuck on busy
//!   nodes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A foreign-job scheduling policy (paper Sec 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Linger, migrating once the cost model says the episode is too long.
    LingerLonger,
    /// Linger and never migrate.
    LingerForever,
    /// Migrate as soon as the node becomes non-idle.
    ImmediateEviction,
    /// Suspend for a grace period, then migrate if still non-idle.
    PauseAndMigrate,
}

impl Policy {
    /// All four policies, in the paper's presentation order (Fig 7).
    pub const ALL: [Policy; 4] = [
        Policy::LingerLonger,
        Policy::LingerForever,
        Policy::ImmediateEviction,
        Policy::PauseAndMigrate,
    ];

    /// The paper's abbreviation (LL, LF, IE, PM).
    pub fn abbrev(self) -> &'static str {
        match self {
            Policy::LingerLonger => "LL",
            Policy::LingerForever => "LF",
            Policy::ImmediateEviction => "IE",
            Policy::PauseAndMigrate => "PM",
        }
    }

    /// Does the foreign job keep computing while the node is non-idle?
    pub fn lingers(self) -> bool {
        matches!(self, Policy::LingerLonger | Policy::LingerForever)
    }

    /// Can the job ever migrate off a non-idle node under this policy?
    pub fn migrates(self) -> bool {
        !matches!(self, Policy::LingerForever)
    }

    /// May the cluster scheduler place a queued job on a *non-idle* node?
    ///
    /// This is the second half of lingering's advantage (Sec 4.2): LL/LF
    /// "run jobs on any semi-available node", while IE/PM must wait for a
    /// recruited machine.
    pub fn places_on_non_idle(self) -> bool {
        self.lingers()
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Policy::LingerLonger => "Linger-Longer",
            Policy::LingerForever => "Linger-Forever",
            Policy::ImmediateEviction => "Immediate-Eviction",
            Policy::PauseAndMigrate => "Pause-and-Migrate",
        };
        f.write_str(name)
    }
}

/// Error from parsing a policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown policy '{}'; expected LL, LF, IE or PM", self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for Policy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "LL" | "LINGER-LONGER" | "LINGERLONGER" => Ok(Policy::LingerLonger),
            "LF" | "LINGER-FOREVER" | "LINGERFOREVER" => Ok(Policy::LingerForever),
            "IE" | "IMMEDIATE-EVICTION" | "IMMEDIATEEVICTION" => Ok(Policy::ImmediateEviction),
            "PM" | "PAUSE-AND-MIGRATE" | "PAUSEANDMIGRATE" => Ok(Policy::PauseAndMigrate),
            other => Err(ParsePolicyError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(Policy::LingerLonger.abbrev(), "LL");
        assert_eq!(Policy::LingerForever.abbrev(), "LF");
        assert_eq!(Policy::ImmediateEviction.abbrev(), "IE");
        assert_eq!(Policy::PauseAndMigrate.abbrev(), "PM");
    }

    #[test]
    fn behavior_flags() {
        assert!(Policy::LingerLonger.lingers());
        assert!(Policy::LingerForever.lingers());
        assert!(!Policy::ImmediateEviction.lingers());
        assert!(!Policy::PauseAndMigrate.lingers());

        assert!(Policy::LingerLonger.migrates());
        assert!(!Policy::LingerForever.migrates());
        assert!(Policy::ImmediateEviction.migrates());
        assert!(Policy::PauseAndMigrate.migrates());

        assert!(Policy::LingerLonger.places_on_non_idle());
        assert!(!Policy::ImmediateEviction.places_on_non_idle());
    }

    #[test]
    fn parse_roundtrip() {
        for p in Policy::ALL {
            assert_eq!(p.abbrev().parse::<Policy>().unwrap(), p);
            assert_eq!(p.to_string().parse::<Policy>().unwrap(), p);
        }
        assert_eq!(" ll ".parse::<Policy>().unwrap(), Policy::LingerLonger);
        assert!("bogus".parse::<Policy>().is_err());
    }

    #[test]
    fn all_lists_each_once() {
        let mut seen = std::collections::HashSet::new();
        for p in Policy::ALL {
            assert!(seen.insert(p));
        }
        assert_eq!(seen.len(), 4);
    }
}
